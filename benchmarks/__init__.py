"""Benchmark harness regenerating every figure and table of Section 5.

Each ``bench_*`` module serves two purposes:

* under ``pytest benchmarks/ --benchmark-only`` it times representative
  points of the corresponding experiment with pytest-benchmark;
* run directly (``python -m benchmarks.bench_fig08_length``) it executes
  the full parameter sweep and prints the same series the paper plots,
  plus the I/O counters the wall-clock claims rest on.

EXPERIMENTS.md records the measured outputs next to the paper's numbers.
"""
