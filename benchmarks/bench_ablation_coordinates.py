"""Ablation: rectangular versus polar coordinates for the feature space.

The paper chose polar coordinates "because vector multiplication for time
series data seemed to be more important than vector addition" (Theorem 3
makes complex stretches safe there).  This bench quantifies the price of
that choice when the transformation *is* expressible in both systems
(identity / reverse / scale): candidate counts and query times per
coordinate system, plus the polar-only capability check.

pytest: timed identity-query comparison.
sweep:  ``python -m benchmarks.bench_ablation_coordinates``
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    get_engine,
    get_walk_relation,
    pick_queries,
    print_series,
    time_per_query,
)
from repro.core.features import NormalFormSpace, UnsafeTransformationError
from repro.core.transforms import moving_average, reverse

LENGTH = 128
COUNT = 2000
EPS = 2.0


def engines():
    rel = get_walk_relation(COUNT, LENGTH)
    rect = get_engine(
        rel, "abl-rect", space_factory=lambda n: NormalFormSpace(n, 2, coord="rect")
    )
    polar = get_engine(
        rel, "abl-polar", space_factory=lambda n: NormalFormSpace(n, 2, coord="polar")
    )
    return rel, rect, polar


@pytest.mark.parametrize("coord", ["rect", "polar"])
def test_ablation_identity_query(benchmark, coord):
    rel, rect, polar = engines()
    engine = rect if coord == "rect" else polar
    queries = pick_queries(rel, 10)
    benchmark(lambda: [engine.range_query(q, EPS) for q in queries])


def test_ablation_polar_supports_mavg_rect_does_not():
    rel, rect, polar = engines()
    t = moving_average(LENGTH, 20)
    q = rel.get(0)
    with pytest.raises(UnsafeTransformationError):
        rect.range_query(q, EPS, transformation=t)
    polar.range_query(q, EPS, transformation=t)  # must not raise


def main() -> None:
    rel, rect, polar = engines()
    queries = pick_queries(rel, 10)
    rows = []
    for label, t in [("identity", None), ("reverse", reverse(LENGTH))]:
        for name, engine in [("rect", rect), ("polar", polar)]:
            engine.stats.reset()
            answers = sum(
                len(engine.range_query(q, EPS, transformation=t)) for q in queries
            )
            candidates = engine.stats.candidate_count
            secs = time_per_query(
                lambda: [engine.range_query(q, EPS, transformation=t) for q in queries]
            )
            rows.append(
                (f"{label}/{name}", 1000 * secs / len(queries), candidates, answers)
            )
    t = moving_average(LENGTH, 20)
    polar.stats.reset()
    answers = sum(
        len(polar.range_query(q, EPS, transformation=t, transform_query=True))
        for q in queries
    )
    secs = time_per_query(
        lambda: [
            polar.range_query(q, EPS, transformation=t, transform_query=True)
            for q in queries
        ]
    )
    rows.append(
        (f"mavg20/polar", 1000 * secs / len(queries), polar.stats.candidate_count, answers)
    )
    rows.append(("mavg20/rect", float("nan"), 0, 0))
    print_series(
        f"Ablation — coordinate systems ({COUNT} walks, length {LENGTH}, eps={EPS})",
        ["transform/coord", "ms/query", "candidates", "answers"],
        rows,
    )
    print(
        "\nmavg20/rect is blank by necessity: complex stretches are unsafe in\n"
        "S_rect (Theorem 2), which is exactly why the paper indexes in S_pol."
    )


if __name__ == "__main__":
    main()
