"""Ablation: index construction policy (R* vs Guttman vs STR packing).

The paper runs on Beckmann's R*-tree.  This bench compares, on the same
feature points: the R*-tree with and without forced reinsertion, Guttman's
quadratic- and linear-split trees, and an STR bulk-packed tree — build
time, node count, and query-time node accesses.

pytest: timed query batch on R* vs Guttman-quadratic.
sweep:  ``python -m benchmarks.bench_ablation_index``
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    default_space,
    get_walk_relation,
    pick_queries,
    print_series,
)
from repro.core.engine import SimilarityEngine
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.rstar import RStarTree

LENGTH = 128
COUNT = 3000
EPS = 2.0

CONFIGS = {
    "rstar+reinsert": dict(index_cls=RStarTree, bulk_load=False),
    "guttman-quad": dict(index_cls=GuttmanRTree, bulk_load=False),
    "str-packed-rstar": dict(index_cls=RStarTree, bulk_load=True),
}

_cache: dict[str, SimilarityEngine] = {}


def engine_for(config: str) -> tuple[SimilarityEngine, float]:
    rel = get_walk_relation(COUNT, LENGTH)
    if config not in _cache:
        t0 = time.perf_counter()
        _cache[config] = SimilarityEngine(
            rel, space=default_space(LENGTH), **CONFIGS[config]
        )
        _cache[config]._build_seconds = time.perf_counter() - t0
    return _cache[config], _cache[config]._build_seconds


@pytest.mark.parametrize("config", ["rstar+reinsert", "guttman-quad"])
def test_ablation_index_query(benchmark, config):
    engine, _ = engine_for(config)
    rel = get_walk_relation(COUNT, LENGTH)
    queries = pick_queries(rel, 10)
    benchmark(lambda: [engine.range_query(q, EPS) for q in queries])


def test_all_variants_answer_identically():
    rel = get_walk_relation(COUNT, LENGTH)
    q = rel.get(0)
    answers = None
    for config in CONFIGS:
        engine, _ = engine_for(config)
        got = sorted(r for r, _ in engine.range_query(q, EPS))
        if answers is None:
            answers = got
        else:
            assert got == answers, config


def main() -> None:
    rel = get_walk_relation(COUNT, LENGTH)
    queries = pick_queries(rel, 10)
    rows = []
    for config in CONFIGS:
        engine, build_s = engine_for(config)
        engine.stats.reset()
        for q in queries:
            engine.range_query(q, EPS)
        reads = engine.stats.node_reads / len(queries)
        rows.append(
            (config, build_s, engine.tree.node_count(), engine.tree.height, reads)
        )
    print_series(
        f"Ablation — index construction ({COUNT} walks, eps={EPS})",
        ["config", "build s", "nodes", "height", "node reads/query"],
        rows,
    )
    print(
        "\nshape: STR packing builds fastest, is most compact, and reads the\n"
        "fewest nodes.  On *uniform point data* the R*-tree beats Guttman's\n"
        "splits (see tests/test_rtree_trees.py and the comparison script in\n"
        "EXPERIMENTS.md); on this feature-space data the queries leave the\n"
        "mean/std dimensions unconstrained, and R*'s margin-driven axis\n"
        "choice tends to partition on exactly those wide, never-filtered\n"
        "axes — a trade-off the paper's setup never had to confront because\n"
        "its queries were posed directly in the 6-d feature space."
    )


if __name__ == "__main__":
    main()
