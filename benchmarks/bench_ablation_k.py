"""Ablation: how many DFT coefficients to keep in the index.

More coefficients mean a sharper filter (fewer false candidates) but a
higher-dimensional index (bigger nodes, worse fanout, more overlap).  The
paper fixes k=2 (plus mean and std); this sweep shows where that sits on
the trade-off curve, including the FRM94 symmetry-weighting refinement as
a "k for free" comparison.

pytest: timed queries at k=1 and k=4.
sweep:  ``python -m benchmarks.bench_ablation_k``
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    get_engine,
    get_walk_relation,
    pick_queries,
    print_series,
    time_per_query,
)
from repro.core.features import NormalFormSpace

LENGTH = 128
COUNT = 3000
EPS = 2.0
KS = [1, 2, 3, 4, 6]


def engine_for(k: int, symmetry: bool = False):
    rel = get_walk_relation(COUNT, LENGTH)
    tag = f"abl-k{k}{'s' if symmetry else ''}"
    return rel, get_engine(
        rel,
        tag,
        space_factory=lambda n: NormalFormSpace(
            n, k, coord="polar", exploit_symmetry=symmetry
        ),
    )


@pytest.mark.parametrize("k", [1, 4])
def test_ablation_k_query_time(benchmark, k):
    rel, engine = engine_for(k)
    queries = pick_queries(rel, 10)
    benchmark(lambda: [engine.range_query(q, EPS) for q in queries])


def test_ablation_more_coefficients_filter_better():
    rel, e1 = engine_for(1)
    rel, e4 = engine_for(4)
    queries = pick_queries(rel, 10)
    e1.stats.reset()
    for q in queries:
        e1.range_query(q, EPS)
    e4.stats.reset()
    for q in queries:
        e4.range_query(q, EPS)
    assert e4.stats.candidate_count <= e1.stats.candidate_count


def main() -> None:
    rel = get_walk_relation(COUNT, LENGTH)
    queries = pick_queries(rel, 10)
    rows = []
    for k in KS:
        for symmetry in (False, True):
            _, engine = engine_for(k, symmetry)
            engine.stats.reset()
            answers = sum(len(engine.range_query(q, EPS)) for q in queries)
            candidates = engine.stats.candidate_count
            secs = time_per_query(
                lambda: [engine.range_query(q, EPS) for q in queries]
            )
            rows.append(
                (
                    f"k={k}{'+sym' if symmetry else '    '}",
                    engine.space.dim,
                    1000 * secs / len(queries),
                    candidates,
                    answers,
                )
            )
    print_series(
        f"Ablation — retained coefficients ({COUNT} walks, eps={EPS})",
        ["config", "index dims", "ms/query", "candidates", "answers"],
        rows,
    )
    print(
        "\nshape: candidates fall as k grows (sharper filter) while per-node\n"
        "costs rise; symmetry weighting tightens the filter at every k with\n"
        "no extra dimensions — the paper's k=2 sits near the knee."
    )


if __name__ == "__main__":
    main()
