"""Throughput of the engine-level batch APIs versus the scalar baseline.

Three headline numbers for the batch execution layer:

* **build speedup** — index construction (batched extraction + ground
  spectra) against the seed's per-row scalar pipeline,
* **queries/sec** — ``range_query_batch`` / ``knn_query_batch`` against a
  loop of scalar-path single queries, and
* **fused-probe speedup** — the plan layer's ``BatchIndexProbe``
  (one multi-query tree descent for the whole batch) against the PR-1
  per-query loop over a shared transformed view.

Run:  ``PYTHONPATH=src python -m benchmarks.bench_batch_throughput``
Quick: add ``--count 2000 --queries 50``.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from benchmarks.common import print_series
from repro.core import queries as q
from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace
from repro.core.transforms import moving_average
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks

LENGTH = 128
RANGE_EPS = 6.0
KNN_K = 10


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10_000)
    parser.add_argument("--queries", type=int, default=200)
    args = parser.parse_args()

    matrix = random_walks(args.count, LENGTH, seed=1997)
    space = NormalFormSpace(LENGTH, k=2, coord="polar")
    space.extract_many_with_spectra(matrix[:64])  # warm the FFT plan cache

    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    space.extract_many_with_spectra(matrix)
    batched_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    np.stack([space.extract(row) for row in matrix])
    np.stack([space.series_spectrum(row) for row in matrix])
    scalar_build = time.perf_counter() - t0
    print_series(
        f"Index build inputs ({args.count} x {LENGTH})",
        ["path", "seconds", "speedup"],
        [
            ("scalar", scalar_build, 1.0),
            ("batched", batched_build, scalar_build / batched_build),
        ],
    )

    # ------------------------------------------------------------------
    rel = SequenceRelation.from_matrix(matrix)
    engine = SimilarityEngine(rel)
    rng = np.random.default_rng(5)
    queries = matrix[rng.choice(args.count, size=args.queries, replace=False)]
    t = moving_average(LENGTH, 20)

    rows = []
    probe_rows = []
    for label, transformation in (("identity", None), ("mavg20", t)):
        t0 = time.perf_counter()
        for series in queries:
            q.range_query(
                engine.tree, engine.space, engine.ground_spectra,
                engine.query_spectrum(series), engine.query_point(series),
                RANGE_EPS, transformation=transformation, batched=False,
            )
        scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.range_query_batch(queries, RANGE_EPS, transformation=transformation)
        batch_s = time.perf_counter() - t0
        rows.append((f"range/{label}", len(queries) / scalar_s,
                     len(queries) / batch_s, scalar_s / batch_s))

        # Fused multi-query descent vs the PR-1 shared-view per-query loop
        # (probe phase only: identical candidate sets, different traversal).
        _, q_points = engine._query_reps_batch(queries, transformation, False)
        view = q._make_view(engine.tree, engine.space, transformation)
        rects = [
            engine.space.search_rect(q_points[i], RANGE_EPS)
            for i in range(q_points.shape[0])
        ]
        t0 = time.perf_counter()
        for rect in rects:
            view.search(rect)
        loop_s = time.perf_counter() - t0
        qlows = np.stack([r.lows for r in rects])
        qhighs = np.stack([r.highs for r in rects])
        t0 = time.perf_counter()
        view.search_many(qlows, qhighs)
        fused_s = time.perf_counter() - t0
        probe_rows.append((f"probe/{label}", loop_s, fused_s, loop_s / fused_s))

        t0 = time.perf_counter()
        for series in queries:
            q.knn_query(
                engine.tree, engine.space, engine.ground_spectra,
                engine.query_spectrum(series), engine.query_point(series),
                KNN_K, transformation=transformation, batched=False,
            )
        scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.knn_query_batch(queries, KNN_K, transformation=transformation)
        batch_s = time.perf_counter() - t0
        rows.append((f"knn/{label}", len(queries) / scalar_s,
                     len(queries) / batch_s, scalar_s / batch_s))

    print_series(
        f"Query throughput ({args.count} series, {args.queries} queries)",
        ["workload", "scalar q/s", "batched q/s", "speedup"],
        rows,
    )
    print_series(
        f"Index probe: per-query loop vs fused descent ({args.queries} queries)",
        ["workload", "loop s", "fused s", "speedup"],
        probe_rows,
    )


if __name__ == "__main__":
    main()
