"""Figure 8: time per range query as sequence length varies (64..1024).

Setup (Section 5): 1000 synthetic random-walk sequences; the identity
transformation ``T_i = (I, 0)`` so that the transformed and plain queries
return identical answers and the comparison isolates the transformation
machinery's overhead.  The paper finds the two curves differ only by a
constant (the CPU cost of the vector multiplication) and that the number
of disk accesses is identical.

pytest: representative lengths 128 and 512.
sweep:  ``python -m benchmarks.bench_fig08_length``
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    default_space,
    get_engine,
    get_walk_relation,
    pick_queries,
    print_series,
    time_per_query,
)
from repro.core.transforms import identity

LENGTHS = [64, 128, 256, 512, 1024]
NUM_SEQUENCES = 1000


def eps_for(length: int) -> float:
    """Threshold scaled with sqrt(length).

    Distances between unit-variance normal forms grow like sqrt(n), so a
    fixed eps would become ever more selective as sequences lengthen;
    scaling keeps the answer-set fraction roughly constant across the
    sweep, which is what lets the figure isolate per-query index cost.
    """
    return 2.0 * (length / 128.0) ** 0.5


def setup(length: int):
    rel = get_walk_relation(NUM_SEQUENCES, length)
    engine = get_engine(rel, "fig08", space_factory=default_space)
    queries = pick_queries(rel, 10)
    return engine, queries


def run_queries(engine, queries, transformation):
    eps = eps_for(engine.space.n)
    total = 0
    for q in queries:
        total += len(engine.range_query(q, eps, transformation=transformation))
    return total


@pytest.mark.parametrize("length", [128, 512])
@pytest.mark.parametrize("with_t", [False, True], ids=["plain", "identity-T"])
def test_fig08_range_query(benchmark, length, with_t):
    engine, queries = setup(length)
    t = identity(length) if with_t else None
    benchmark(run_queries, engine, queries, t)


def test_fig08_same_answers_and_node_reads():
    """The controlled-comparison premise: identical results, identical
    node accesses with and without the identity transformation."""
    engine, queries = setup(128)
    t = identity(128)
    for q in queries:
        engine.stats.reset()
        a = engine.range_query(q, eps_for(128))
        plain_reads = engine.stats.node_reads
        engine.stats.reset()
        b = engine.range_query(q, eps_for(128), transformation=t)
        assert [r for r, _ in a] == [r for r, _ in b]
        assert engine.stats.node_reads == plain_reads


def main() -> None:
    rows = []
    for length in LENGTHS:
        engine, queries = setup(length)
        t = identity(length)
        t_plain = time_per_query(lambda: run_queries(engine, queries, None))
        t_trans = time_per_query(lambda: run_queries(engine, queries, t))
        engine.stats.reset()
        run_queries(engine, queries, None)
        reads_plain = engine.stats.node_reads
        engine.stats.reset()
        run_queries(engine, queries, t)
        reads_trans = engine.stats.node_reads
        rows.append(
            (
                length,
                1000 * t_plain / len(queries),
                1000 * t_trans / len(queries),
                reads_plain,
                reads_trans,
            )
        )
    print_series(
        "Figure 8 — time per range query vs sequence length "
        f"({NUM_SEQUENCES} sequences, identity transformation, eps ~ sqrt(n))",
        ["length", "plain ms/q", "with-T ms/q", "node reads", "node reads(T)"],
        rows,
    )
    print(
        "\npaper shape: the two curves differ by a small constant (CPU cost\n"
        "of the vector multiplication); disk accesses identical."
    )


if __name__ == "__main__":
    main()
