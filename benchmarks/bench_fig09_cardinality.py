"""Figure 9: time per range query as the number of sequences varies.

Setup (Section 5): sequence length fixed at 128, relation size swept from
500 to 12,000, identity transformation for a controlled comparison.  The
paper finds the with/without-transformation curves coincide up to a small
constant — "the index traversal for similarity queries does not
deteriorate the performance of the index".

pytest: representative sizes 1000 and 8000.
sweep:  ``python -m benchmarks.bench_fig09_cardinality``
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    default_space,
    get_engine,
    get_walk_relation,
    pick_queries,
    print_series,
    time_per_query,
)
from repro.core.transforms import identity

COUNTS = [500, 1000, 2000, 4000, 8000, 12000]
LENGTH = 128
EPS = 2.0


def setup(count: int):
    rel = get_walk_relation(count, LENGTH)
    engine = get_engine(rel, "fig09", space_factory=default_space)
    queries = pick_queries(rel, 10)
    return engine, queries


def run_queries(engine, queries, transformation):
    total = 0
    for q in queries:
        total += len(engine.range_query(q, EPS, transformation=transformation))
    return total


@pytest.mark.parametrize("count", [1000, 8000])
@pytest.mark.parametrize("with_t", [False, True], ids=["plain", "identity-T"])
def test_fig09_range_query(benchmark, count, with_t):
    engine, queries = setup(count)
    t = identity(LENGTH) if with_t else None
    benchmark(run_queries, engine, queries, t)


def main() -> None:
    rows = []
    for count in COUNTS:
        engine, queries = setup(count)
        t = identity(LENGTH)
        t_plain = time_per_query(lambda: run_queries(engine, queries, None))
        t_trans = time_per_query(lambda: run_queries(engine, queries, t))
        engine.stats.reset()
        run_queries(engine, queries, t)
        rows.append(
            (
                count,
                1000 * t_plain / len(queries),
                1000 * t_trans / len(queries),
                engine.stats.node_reads,
            )
        )
    print_series(
        "Figure 9 — time per range query vs number of sequences "
        f"(length {LENGTH}, identity transformation, eps={EPS})",
        ["sequences", "plain ms/q", "with-T ms/q", "node reads(T)"],
        rows,
    )
    print(
        "\npaper shape: transformation adds only a constant; growth with\n"
        "relation size driven by the index, not by the transformation."
    )


if __name__ == "__main__":
    main()
