"""Figure 10: index versus sequential scan as sequence length varies.

Setup (Section 5): 1000 random walks, range queries *with* a (moving
average) transformation, racing Algorithm 2 over the transformed index
against the paper's tuned sequential scan — frequency-domain relation,
early-abandoning distance.  The paper finds the index wins at every
length, with the gap widening as sequences grow.

pytest: representative lengths 128 and 512.
sweep:  ``python -m benchmarks.bench_fig10_vs_scan_length``
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    default_space,
    get_engine,
    get_walk_relation,
    pick_queries,
    print_series,
    time_per_query,
)
from repro.core.transforms import moving_average
from repro.scan import scan_range

LENGTHS = [64, 128, 256, 512, 1024]
NUM_SEQUENCES = 1000


def eps_for(length: int) -> float:
    """Threshold scaled with sqrt(length) to hold selectivity constant
    across the sweep (normal-form distances grow like sqrt(n))."""
    return 2.0 * (length / 128.0) ** 0.5


def setup(length: int):
    rel = get_walk_relation(NUM_SEQUENCES, length)
    engine = get_engine(rel, "fig10", space_factory=default_space)
    queries = pick_queries(rel, 5)
    t = moving_average(length, 20)
    return engine, queries, t


def run_index(engine, queries, t):
    eps = eps_for(engine.space.n)
    return sum(
        len(engine.range_query(q, eps, transformation=t, transform_query=True))
        for q in queries
    )


def run_scan(engine, queries, t):
    eps = eps_for(engine.space.n)
    total = 0
    for q in queries:
        total += len(
            scan_range(
                engine.ground_spectra,
                t.apply_spectrum(engine.query_spectrum(q)),
                eps,
                transformation=t,
                early_abandon=True,
            )
        )
    return total


@pytest.mark.parametrize("length", [128, 512])
def test_fig10_index(benchmark, length):
    engine, queries, t = setup(length)
    benchmark(run_index, engine, queries, t)


@pytest.mark.parametrize("length", [128, 512])
def test_fig10_scan(benchmark, length):
    engine, queries, t = setup(length)
    benchmark(run_scan, engine, queries, t)


def test_fig10_identical_answers():
    engine, queries, t = setup(128)
    for q in queries:
        a = engine.range_query(q, eps_for(128), transformation=t, transform_query=True)
        b = scan_range(
            engine.ground_spectra,
            t.apply_spectrum(engine.query_spectrum(q)),
            eps_for(128),
            transformation=t,
        )
        assert [(r, round(d, 8)) for r, d in a] == [(r, round(d, 8)) for r, d in b]


def main() -> None:
    rows = []
    for length in LENGTHS:
        engine, queries, t = setup(length)
        t_idx = time_per_query(lambda: run_index(engine, queries, t))
        t_scan = time_per_query(lambda: run_scan(engine, queries, t))
        rows.append(
            (
                length,
                1000 * t_idx / len(queries),
                1000 * t_scan / len(queries),
                t_scan / t_idx,
            )
        )
    print_series(
        "Figure 10 — index vs sequential scan, varying sequence length "
        f"({NUM_SEQUENCES} sequences, mavg20, eps ~ sqrt(n))",
        ["length", "index ms/q", "scan ms/q", "speedup"],
        rows,
    )
    print("\npaper shape: index wins at every length; gap grows with length.")


if __name__ == "__main__":
    main()
