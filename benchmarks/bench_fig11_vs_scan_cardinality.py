"""Figure 11: index versus sequential scan as the relation grows.

Setup (Section 5): length 128, relation size 500..12,000, range queries
with a moving-average transformation.  The paper finds the index's
advantage grows with the number of sequences.

pytest: representative sizes 1000 and 8000.
sweep:  ``python -m benchmarks.bench_fig11_vs_scan_cardinality``
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    default_space,
    get_engine,
    get_walk_relation,
    pick_queries,
    print_series,
    time_per_query,
)
from repro.core.transforms import moving_average
from repro.scan import scan_range

COUNTS = [500, 1000, 2000, 4000, 8000, 12000]
LENGTH = 128
EPS = 2.0


def setup(count: int):
    rel = get_walk_relation(count, LENGTH)
    engine = get_engine(rel, "fig11", space_factory=default_space)
    queries = pick_queries(rel, 5)
    t = moving_average(LENGTH, 20)
    return engine, queries, t


def run_index(engine, queries, t):
    return sum(
        len(engine.range_query(q, EPS, transformation=t, transform_query=True))
        for q in queries
    )


def run_scan(engine, queries, t):
    total = 0
    for q in queries:
        total += len(
            scan_range(
                engine.ground_spectra,
                t.apply_spectrum(engine.query_spectrum(q)),
                EPS,
                transformation=t,
                early_abandon=True,
            )
        )
    return total


@pytest.mark.parametrize("count", [1000, 8000])
def test_fig11_index(benchmark, count):
    engine, queries, t = setup(count)
    benchmark(run_index, engine, queries, t)


@pytest.mark.parametrize("count", [1000, 8000])
def test_fig11_scan(benchmark, count):
    engine, queries, t = setup(count)
    benchmark(run_scan, engine, queries, t)


def main() -> None:
    rows = []
    for count in COUNTS:
        engine, queries, t = setup(count)
        t_idx = time_per_query(lambda: run_index(engine, queries, t))
        t_scan = time_per_query(lambda: run_scan(engine, queries, t))
        rows.append(
            (
                count,
                1000 * t_idx / len(queries),
                1000 * t_scan / len(queries),
                t_scan / t_idx,
            )
        )
    print_series(
        "Figure 11 — index vs sequential scan, varying relation size "
        f"(length {LENGTH}, mavg20, eps={EPS})",
        ["sequences", "index ms/q", "scan ms/q", "speedup"],
        rows,
    )
    print("\npaper shape: speedup grows with the number of sequences.")


if __name__ == "__main__":
    main()
