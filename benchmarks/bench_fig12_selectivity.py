"""Figure 12: index versus scan as the answer-set size grows.

Setup (Section 5): the real-data experiment — 1067 stock series of length
128 (here: the synthetic universe, see DESIGN.md), threshold swept so the
answer set ranges from a handful to several hundred.  The paper finds the
index faster until the answer set exceeds roughly 300 sequences — about a
third of the relation — after which the scan wins: with that much of the
data qualifying, filtering can no longer save work.

pytest: small-answer and large-answer representative thresholds.
sweep:  ``python -m benchmarks.bench_fig12_selectivity``
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    default_space,
    get_engine,
    get_stock_relation,
    print_series,
    time_per_query,
)
from repro.core.transforms import moving_average
from repro.scan import scan_range

LENGTH = 128
#: answer-set sizes to target, like the paper's x-axis (up to ~1/2 the data)
TARGET_ANSWERS = [1, 10, 25, 50, 100, 200, 300, 400, 533]


def setup():
    rel = get_stock_relation()
    engine = get_engine(rel, "fig12", space_factory=default_space)
    query = rel.get(42)
    t = moving_average(LENGTH, 20)
    return engine, query, t


def eps_for_answers(engine, query, t):
    """Thresholds that produce each target answer-set size.

    The paper "varied the threshold so that the query gave us different
    numbers of time series in the answer set"; this computes the exact
    distance of every record to the query once and reads the thresholds
    off the order statistics.
    """
    import numpy as np

    q_spec = t.apply_spectrum(engine.query_spectrum(query))
    dists = np.sort(
        [
            engine.space.ground_distance(engine.ground_spectra[rid], q_spec, t)
            for rid in range(len(engine.relation))
        ]
    )
    return [(size, float(dists[size - 1]) + 1e-9) for size in TARGET_ANSWERS]


@pytest.mark.parametrize("target", [10, 400], ids=["small-answer", "large-answer"])
def test_fig12_index(benchmark, target):
    engine, query, t = setup()
    eps = dict(eps_for_answers(engine, query, t))[target]
    benchmark(lambda: engine.range_query(query, eps, transformation=t, transform_query=True))


@pytest.mark.parametrize("target", [10, 400], ids=["small-answer", "large-answer"])
def test_fig12_scan(benchmark, target):
    engine, query, t = setup()
    eps = dict(eps_for_answers(engine, query, t))[target]
    benchmark(
        lambda: scan_range(
            engine.ground_spectra,
            t.apply_spectrum(engine.query_spectrum(query)),
            eps,
            transformation=t,
        )
    )


def main() -> None:
    engine, query, t = setup()
    rows = []
    crossover = None
    for target, eps in eps_for_answers(engine, query, t):
        answers = engine.range_query(query, eps, transformation=t, transform_query=True)
        assert len(answers) == target, (len(answers), target)
        t_idx = time_per_query(
            lambda: engine.range_query(query, eps, transformation=t, transform_query=True)
        )
        t_scan = time_per_query(
            lambda: scan_range(
                engine.ground_spectra,
                t.apply_spectrum(engine.query_spectrum(query)),
                eps,
                transformation=t,
            )
        )
        if crossover is None and t_idx > t_scan:
            crossover = len(answers)
        rows.append(
            (eps, len(answers), 1000 * t_idx, 1000 * t_scan, t_scan / t_idx)
        )
    print_series(
        "Figure 12 — time per query vs answer-set size "
        "(1067 stocks, length 128, mavg20)",
        ["eps", "answers", "index ms", "scan ms", "speedup"],
        rows,
    )
    if crossover is not None:
        print(
            f"\ncrossover: index loses once the answer set reaches ~{crossover} "
            f"of {len(engine.relation)} sequences"
        )
    print(
        "paper shape: index wins for selective queries; the scan catches up\n"
        "around answer sets of ~300 (one third of the relation)."
    )


if __name__ == "__main__":
    main()
