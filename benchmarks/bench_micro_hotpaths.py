"""Micro-benchmarks of the batch execution layer's hot paths.

Times every scalar-vs-batched pair the batch layer replaces — index build
(extraction + ground spectra), range-query verification, end-to-end range
and k-NN latency, and the all-pairs join — and emits a machine-readable
``BENCH_hotpaths.json`` at the repository root so future PRs can track the
performance trajectory.

Default configuration is the acceptance workload: 10,000 random walks of
length 128 with the paper's six-dimensional polar normal-form space.

Run:  ``PYTHONPATH=src python -m benchmarks.bench_micro_hotpaths``
Quick: add ``--count 2000 --pairs 400`` for a fast smoke pass.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_series
from repro.core import queries as q
from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks

LENGTH = 128
#: ~8% of the relation becomes a range candidate at this eps (1.5% answers).
RANGE_EPS = 6.0
JOIN_EPS = 3.0
KNN_K = 10


def _timed(fn, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_build(matrix: np.ndarray, space: NormalFormSpace) -> dict:
    """Index-build inputs: extract_many + ground-spectra, scalar vs batched."""
    space.extract_many_with_spectra(matrix[:64])  # warm the FFT plan cache

    def scalar() -> None:
        np.stack([space.extract(row) for row in matrix])
        np.stack([space.series_spectrum(row) for row in matrix])

    batched_s = _timed(lambda: space.extract_many_with_spectra(matrix), repeats=3)
    scalar_s = _timed(scalar, repeats=2)
    return {"scalar_s": scalar_s, "batched_s": batched_s,
            "speedup": scalar_s / batched_s}


def bench_range_verification(
    engine: SimilarityEngine, queries: np.ndarray, eps: float
) -> dict:
    """Post-processing (Algorithm 2 step 3) only: candidate verification."""
    space, spectra = engine.space, engine.ground_spectra
    view = q._make_view(engine.tree, space, None)
    prepared = []
    for series in queries:
        spec = engine.query_spectrum(series)
        qrect = space.search_rect(engine.query_point(series), eps)
        cands = np.fromiter(
            (e.child for e in view.search(qrect)), dtype=np.intp
        )
        prepared.append((spec, cands))
    candidates = int(sum(len(c) for _, c in prepared))

    def scalar() -> None:
        for spec, cands in prepared:
            for c in cands:
                space.ground_distance_within(spectra[c], spec, eps)

    def batched() -> None:
        for spec, cands in prepared:
            space.ground_distances_within_many(spectra[cands], spec, eps)

    batched_s = _timed(batched, repeats=3)
    scalar_s = _timed(scalar, repeats=2)
    return {
        "candidates": candidates,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def bench_query_latency(engine: SimilarityEngine, queries: np.ndarray) -> dict:
    """End-to-end range and k-NN latency, scalar vs batched paths."""
    space, spectra = engine.space, engine.ground_spectra

    def run_range(batched: bool) -> None:
        for series in queries:
            q.range_query(
                engine.tree, space, spectra,
                engine.query_spectrum(series), engine.query_point(series),
                RANGE_EPS, batched=batched,
            )

    def run_knn(batched: bool) -> None:
        for series in queries:
            q.knn_query(
                engine.tree, space, spectra,
                engine.query_spectrum(series), engine.query_point(series),
                KNN_K, batched=batched,
            )

    out = {}
    for name, fn in (("range", run_range), ("knn", run_knn)):
        # Best-of-N on both sides: the speedup ratios feed the CI
        # regression gate, so single-shot timing noise matters.
        batched_s = _timed(lambda: fn(True), repeats=2)
        scalar_s = _timed(lambda: fn(False), repeats=2)
        out[name] = {
            "queries": len(queries),
            "scalar_ms_per_query": 1000 * scalar_s / len(queries),
            "batched_ms_per_query": 1000 * batched_s / len(queries),
            "speedup": scalar_s / batched_s,
        }
    return out


def bench_knn_batch(engine: SimilarityEngine, queries: np.ndarray, k: int) -> dict:
    """Fused kernel k-NN frontier vs the per-query loop it replaces.

    The baseline is exactly what ``knn_query_batch`` did before the
    columnar kernel: one :func:`repro.core.queries.knn_query` traversal per
    query over a shared (kernel-less) view — per-node vectorised bounds,
    one heap item and one ground distance per examined entry.
    """
    space, spectra = engine.space, engine.ground_spectra
    q_specs, q_points = engine._query_reps_batch(queries, None, False)

    loop_view = q._make_view(engine.tree, space, None)
    loop_view.kernel = None

    def per_query_loop() -> None:
        for i in range(queries.shape[0]):
            q.knn_query(
                engine.tree, space, spectra, q_specs[i], q_points[i], k,
                view=loop_view,
            )

    def fused() -> None:
        q.knn_query_fused(
            engine.tree, space, spectra, q_specs, q_points, k
        )

    fused_s = _timed(fused, repeats=3)
    loop_s = _timed(per_query_loop, repeats=2)
    return {
        "queries": int(queries.shape[0]),
        "k": k,
        "per_query_loop_s": loop_s,
        "fused_kernel_s": fused_s,
        "speedup": loop_s / fused_s,
    }


def bench_all_pairs(matrix: np.ndarray, eps: float) -> dict:
    """All-pairs wall time: scan-abandon, and recursive-vs-kernel index join."""
    rel = SequenceRelation.from_matrix(matrix)
    engine = SimilarityEngine(rel)
    spectra = engine.ground_spectra
    out = {"count": matrix.shape[0]}
    batched_s = _timed(
        lambda: q.all_pairs_scan(spectra, eps, early_abandon=True, batched=True)
    )
    scalar_s = _timed(
        lambda: q.all_pairs_scan(spectra, eps, early_abandon=True, batched=False),
        repeats=2,
    )
    out["scan_abandon"] = {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }

    # Index nested-loop join: the pre-kernel path posed one recursive range
    # query per outer record; the kernel path runs one frontier-pair
    # traversal for the whole outer relation.
    from repro.rtree.geometry import Rect
    from repro.rtree.join import index_nested_loop_join

    def recursive_join() -> None:
        view = q._make_view(engine.tree, engine.space, None)
        view.kernel = None
        pair_iter = index_nested_loop_join(
            ((i, Rect.from_point(engine.points[i]))
             for i in range(engine.points.shape[0])),
            view,
            make_search_rect=lambda pr: engine.space.search_rect(pr.lows, eps),
            self_join=True,
        )
        q._verify_pairs(spectra, pair_iter, eps)

    kernel_s = _timed(
        lambda: q.all_pairs_index(
            engine.tree, engine.space, spectra, engine.points, eps
        ),
        repeats=2,
    )
    recursive_s = _timed(recursive_join, repeats=2)
    out["index_join"] = {
        "recursive_s": recursive_s,
        "kernel_s": kernel_s,
        "speedup": recursive_s / kernel_s,
    }
    out["index_join_s"] = kernel_s
    return out


def bench_parallel(
    engine: SimilarityEngine, queries: np.ndarray, pairs_engine: SimilarityEngine
) -> dict:
    """Sharded kernel execution vs the serial kernel on identical batches.

    Times the three executor-dispatched paths — fused range batch, fused
    k-NN batch and the index join — once with a single-worker executor
    (the serial kernel, no thread pool) and once with ``workers="auto"``
    (one worker per CPU).  ``speedup`` is serial / auto; on a single-core
    host auto resolves to one worker and the ratio sits at ~1.0, which is
    exactly what the regression gate should then hold it to.
    """
    from repro.rtree.parallel import KernelExecutor

    serial = KernelExecutor(workers=1)
    auto = KernelExecutor(workers="auto")

    def with_executor(eng: SimilarityEngine, executor, fn):
        prev = eng.executor
        eng._executor = executor
        try:
            return fn()
        finally:
            eng._executor = prev

    # Returned as three top-level report families so the regression
    # gate's ``--require parallel_range`` prefix checks see them.
    out: dict = {}
    paths = {
        "parallel_range": (
            engine, lambda: engine.range_query_batch(queries, RANGE_EPS)
        ),
        "parallel_knn_batch": (
            engine, lambda: engine.knn_query_batch(queries, KNN_K)
        ),
        "parallel_join": (
            pairs_engine, lambda: pairs_engine.all_pairs(JOIN_EPS, method="index")
        ),
    }
    for name, (eng, fn) in paths.items():
        timed = lambda fn=fn: _timed(fn, repeats=2)  # noqa: E731 — rebind per family
        # Untimed warm-up: the serial side is measured first, and on a
        # cold path (page cache, allocator, FFT plans) it would otherwise
        # eat the warm-up cost and inflate the committed ratio.
        with_executor(eng, serial, fn)
        serial_s = with_executor(eng, serial, timed)
        auto_s = with_executor(eng, auto, timed)
        out[name] = {
            "workers": auto.workers,
            "serial_s": serial_s,
            "auto_s": auto_s,
            "speedup": serial_s / auto_s,
        }
    auto.shutdown()
    return out


def bench_persist(engine: SimilarityEngine) -> tuple[dict, dict]:
    """Validated (manifest + crc32) persistence vs the plain image write.

    Here ``speedup`` is the ratio plain / validated: ~1.0 means the
    checksums and atomic-replace protocol are nearly free, and the CI
    gate fails if validation overhead ever grows past the tolerance.
    """
    import shutil
    import tempfile

    from repro import persist

    root = Path(tempfile.mkdtemp(prefix="bench_persist_"))
    try:
        plain_dir = str(root / "plain")
        valid_dir = str(root / "validated")
        save_plain = _timed(
            lambda: persist.save_engine(engine, plain_dir, manifest=False),
            repeats=2,
        )
        save_valid = _timed(
            lambda: persist.save_engine(engine, valid_dir, manifest=True),
            repeats=2,
        )
        load_plain = _timed(lambda: persist.load_engine(plain_dir), repeats=2)
        load_valid = _timed(lambda: persist.load_engine(valid_dir), repeats=2)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    save = {
        "plain_s": save_plain,
        "validated_s": save_valid,
        "speedup": save_plain / save_valid,
    }
    load = {
        "plain_s": load_plain,
        "validated_s": load_valid,
        "speedup": load_plain / load_valid,
    }
    return save, load


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10_000,
                        help="relation cardinality (default 10000)")
    parser.add_argument("--pairs", type=int, default=1_000,
                        help="cardinality for the all-pairs timing")
    parser.add_argument("--queries", type=int, default=50,
                        help="number of query series (default 50)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root BENCH_hotpaths.json)")
    args = parser.parse_args()

    matrix = random_walks(args.count, LENGTH, seed=1997)
    space = NormalFormSpace(LENGTH, k=2, coord="polar")
    report: dict = {
        "workload": {
            "count": args.count,
            "length": LENGTH,
            "space": "NormalFormSpace(k=2, polar)",
            "range_eps": RANGE_EPS,
            "knn_k": KNN_K,
            "python": platform.python_version(),
            "numpy": np.__version__,
        }
    }

    report["build"] = bench_build(matrix, space)
    print_series(
        f"Index build inputs ({args.count} x {LENGTH})",
        ["path", "seconds", "speedup"],
        [
            ("scalar", report["build"]["scalar_s"], 1.0),
            ("batched", report["build"]["batched_s"], report["build"]["speedup"]),
        ],
    )

    rel = SequenceRelation.from_matrix(matrix)
    engine = SimilarityEngine(rel)
    rng = np.random.default_rng(5)
    queries = matrix[rng.choice(args.count, size=args.queries, replace=False)]

    report["range_verification"] = bench_range_verification(
        engine, queries, RANGE_EPS
    )
    rv = report["range_verification"]
    print_series(
        f"Range verification (eps={RANGE_EPS}, {rv['candidates']} candidates)",
        ["path", "seconds", "speedup"],
        [
            ("scalar", rv["scalar_s"], 1.0),
            ("batched", rv["batched_s"], rv["speedup"]),
        ],
    )

    report["latency"] = bench_query_latency(engine, queries)
    print_series(
        "End-to-end latency (ms/query)",
        ["query", "scalar", "batched", "speedup"],
        [
            (name, row["scalar_ms_per_query"], row["batched_ms_per_query"],
             row["speedup"])
            for name, row in report["latency"].items()
        ],
    )

    report["knn_batch"] = bench_knn_batch(engine, queries, KNN_K)
    kb = report["knn_batch"]
    print_series(
        f"Batched k-NN ({kb['queries']} queries, k={KNN_K})",
        ["path", "seconds", "speedup"],
        [
            ("per-query loop", kb["per_query_loop_s"], 1.0),
            ("fused kernel frontier", kb["fused_kernel_s"], kb["speedup"]),
        ],
    )

    report["all_pairs"] = bench_all_pairs(matrix[: args.pairs], JOIN_EPS)
    ap = report["all_pairs"]
    print_series(
        f"All-pairs ({ap['count']} series, eps={JOIN_EPS})",
        ["method", "seconds", "speedup"],
        [
            ("scan-abandon scalar", ap["scan_abandon"]["scalar_s"], 1.0),
            ("scan-abandon batched", ap["scan_abandon"]["batched_s"],
             ap["scan_abandon"]["speedup"]),
            ("index join recursive", ap["index_join"]["recursive_s"],
             ap["scan_abandon"]["scalar_s"] / ap["index_join"]["recursive_s"]),
            ("index join kernel", ap["index_join"]["kernel_s"],
             ap["scan_abandon"]["scalar_s"] / ap["index_join"]["kernel_s"]),
        ],
    )

    pairs_engine = SimilarityEngine(
        SequenceRelation.from_matrix(matrix[: args.pairs])
    )
    report.update(bench_parallel(engine, queries, pairs_engine))
    print_series(
        f"Sharded kernel execution (auto = "
        f"{report['parallel_range']['workers']} worker(s))",
        ["path", "serial", "auto", "speedup"],
        [
            (name.removeprefix("parallel_"), report[name]["serial_s"],
             report[name]["auto_s"], report[name]["speedup"])
            for name in ("parallel_range", "parallel_knn_batch", "parallel_join")
        ],
    )

    report["persist_save"], report["persist_load"] = bench_persist(engine)
    print_series(
        f"Validated persistence ({args.count} x {LENGTH})",
        ["operation", "plain", "validated", "plain/validated"],
        [
            ("save", report["persist_save"]["plain_s"],
             report["persist_save"]["validated_s"],
             report["persist_save"]["speedup"]),
            ("load", report["persist_load"]["plain_s"],
             report["persist_load"]["validated_s"],
             report["persist_load"]["speedup"]),
        ],
    )

    out_path = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
