"""Extension bench: the columnar ST-index pipeline, phase by phase.

Not a paper figure — the paper's experiments stop at whole-sequence
queries — but [FRM94] is the companion method the paper's machinery
descends from, so the reproduction carries its performance story too:
filter-and-refine over sub-trail MBRs versus checking every offset, and
(since the subsequence pipeline was routed through the frozen kernel)
the columnar fast path versus the recursive/scalar reference at every
phase:

* **build** — STR bulk load + freeze versus one R* insert per sub-trail,
* **probe** — fused ``range_ids_many`` + array expansion versus the
  recursive per-piece ``tree.search`` + Python-set expansion,
* **refine** — one ``batch_euclidean_within`` matrix pass per candidate
  series versus one scalar early-abandon call per candidate,
* **range_query** — the two paths end-to-end (the gated headline), plus
  the fused ``range_query_batch`` throughput.

Since PR 5 the bench also carries the subsequence **k-NN** workload
("the k closest windows"): ``subseq_knn_build`` (bulk vs insert at the
k-NN scale), ``subseq_knn_probe`` (the kernel's multi-step best-first
search over sub-trail boxes vs a full window scan) and
``subseq_knn_refine`` (the matrix early-abandon verify at the k-th
neighbour radius vs one scalar call per window).

``main`` emits ``subseq_build`` / ``subseq_probe`` / ``subseq_refine`` /
``subseq_range_query`` / ``subseq_knn_*`` entries; with ``--merge-into``
they are folded into an existing ``bench_micro_hotpaths`` report (CI
merges them into the freshly generated record so
``check_hotpath_regression`` gates the subsequence speedups alongside
the PR 1–3 ones).

pytest: window-length queries, both groupings, plus the brute-force bar.
sweep:  ``python -m benchmarks.bench_subseq_stindex``
gate:   ``python -m benchmarks.bench_subseq_stindex --merge-into /tmp/bench.json``
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.common import print_series, time_per_query
from repro.data import make_stock_universe
from repro.subseq import STIndex

WINDOW = 32
EPS = 0.5
#: workload: enough series that traversal/expansion/refine dominate the
#: per-query fixed costs on both paths.
COUNT = 200
LENGTH = 1024
NUM_QUERIES = 10

_cache: dict[str, STIndex] = {}


def index_for(grouping: str, count: int = COUNT, length: int = LENGTH) -> STIndex:
    key = f"{grouping}:{count}x{length}"
    if key not in _cache:
        rel = make_stock_universe(count=count, length=length, seed=31)
        idx = STIndex(window=WINDOW, k=3, grouping=grouping, chunk=16)
        for rid in range(len(rel)):
            idx.add_series(rel.get(rid))
        idx.kernel  # seal + bulk load + freeze outside the query timings
        _cache[key] = idx
    return _cache[key]


def make_queries(idx: STIndex, count: int = NUM_QUERIES) -> list[np.ndarray]:
    rng = np.random.default_rng(9)
    out = []
    for _ in range(count):
        sid = int(rng.integers(0, idx.num_series))
        src = idx.series(sid)
        start = int(rng.integers(0, len(src) - WINDOW))
        out.append(src[start : start + WINDOW] + rng.normal(0, 0.01, WINDOW))
    return out


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small smoke workload)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
def test_stindex_query(benchmark, grouping):
    idx = index_for(grouping, count=40, length=512)
    queries = make_queries(idx, count=5)
    benchmark(lambda: [idx.range_query(q, EPS) for q in queries])


def test_stindex_brute(benchmark):
    idx = index_for("adaptive", count=40, length=512)
    queries = make_queries(idx, count=5)
    benchmark.pedantic(
        lambda: [idx.brute_force(q, EPS) for q in queries], rounds=2, iterations=1
    )


def test_answers_identical_across_methods():
    fixed = index_for("fixed", count=40, length=512)
    adaptive = index_for("adaptive", count=40, length=512)
    for q in make_queries(adaptive, count=5):
        want = [(m.series_id, m.offset) for m in adaptive.brute_force(q, EPS)]
        assert [(m.series_id, m.offset) for m in adaptive.range_query(q, EPS)] == want
        assert [(m.series_id, m.offset) for m in fixed.range_query(q, EPS)] == want


# ----------------------------------------------------------------------
# phase benchmarks (the gated entries)
# ----------------------------------------------------------------------
def bench_build() -> dict:
    """STR bulk load + freeze vs one R* insert per sub-trail.

    Runs on a reduced workload: the insert reference costs one R*
    insertion (with forced reinserts) per sub-trail and would dominate
    the whole bench at full size.
    """
    rel = make_stock_universe(count=60, length=512, seed=31)
    series = [rel.get(rid) for rid in range(len(rel))]

    def bulk() -> None:
        idx = STIndex(window=WINDOW, k=3, grouping="adaptive", chunk=16)
        idx.add_series_many(series)
        idx.kernel

    def insert() -> None:
        idx = STIndex(
            window=WINDOW, k=3, grouping="adaptive", chunk=16, build="insert"
        )
        idx.add_series_many(series)

    bulk_s = time_per_query(bulk, repeats=3)
    insert_s = time_per_query(insert, repeats=1)
    return {
        "series": len(series),
        "bulk_s": bulk_s,
        "insert_s": insert_s,
        "speedup": insert_s / bulk_s,
    }


def bench_probe(idx: STIndex, queries: list[np.ndarray]) -> dict:
    """Candidate generation only: fused kernel probe vs recursive search."""
    kernel_s = time_per_query(
        lambda: [idx.candidate_offsets(q, EPS) for q in queries]
    )
    reference_s = time_per_query(
        lambda: [
            idx._multipiece_candidates(np.asarray(q, dtype=np.float64), EPS)
            for q in queries
        ]
    )
    candidates = int(
        sum(idx.candidate_offsets(q, EPS)[0].shape[0] for q in queries)
    )
    return {
        "candidates": candidates,
        "reference_s": reference_s,
        "kernel_s": kernel_s,
        "speedup": reference_s / kernel_s,
    }


def bench_refine(idx: STIndex, queries: list[np.ndarray]) -> dict:
    """Verification only, over the same candidate sets."""
    prepared = []
    for q in queries:
        qa = np.asarray(q, dtype=np.float64)
        series, aligned = idx.candidate_offsets(qa, EPS)
        prepared.append((qa, series, aligned))

    def batched() -> None:
        for qa, series, aligned in prepared:
            idx._refine_arrays(qa, EPS, series, aligned)

    def scalar() -> None:
        for qa, series, aligned in prepared:
            idx._refine(qa, EPS, set(zip(series.tolist(), aligned.tolist())))

    batched_s = time_per_query(batched)
    scalar_s = time_per_query(scalar)
    return {
        "candidates": int(sum(p[1].shape[0] for p in prepared)),
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def bench_range_query(idx: STIndex, queries: list[np.ndarray]) -> dict:
    """End-to-end: columnar fast path vs recursive/scalar reference."""
    fast_s = time_per_query(lambda: [idx.range_query(q, EPS) for q in queries])
    reference_s = time_per_query(
        lambda: [idx.range_query_reference(q, EPS) for q in queries]
    )
    batch_s = time_per_query(lambda: idx.range_query_batch(queries, EPS))
    return {
        "queries": len(queries),
        "reference_ms_per_query": 1000 * reference_s / len(queries),
        "fast_ms_per_query": 1000 * fast_s / len(queries),
        "batch_ms_per_query": 1000 * batch_s / len(queries),
        "speedup": reference_s / fast_s,
    }


K_NN = 10


def bench_knn_build() -> dict:
    """Index build for the k-NN workload: STR bulk + freeze vs R* inserts.

    Same comparison as :func:`bench_build` at the k-NN bench's reduced
    scale — kept as its own gated entry so the ``subseq_knn_*`` family
    stands alone in the regression record.
    """
    rel = make_stock_universe(count=60, length=512, seed=47)
    series = [rel.get(rid) for rid in range(len(rel))]

    def bulk() -> None:
        idx = STIndex(window=WINDOW, k=3, grouping="adaptive", chunk=16)
        idx.add_series_many(series)
        idx.kernel

    def insert() -> None:
        idx = STIndex(
            window=WINDOW, k=3, grouping="adaptive", chunk=16, build="insert"
        )
        idx.add_series_many(series)

    bulk_s = time_per_query(bulk, repeats=3)
    insert_s = time_per_query(insert, repeats=1)
    return {
        "series": len(series),
        "bulk_s": bulk_s,
        "insert_s": insert_s,
        "speedup": insert_s / bulk_s,
    }


def bench_knn_probe(idx: STIndex, queries: list[np.ndarray]) -> dict:
    """k closest windows: kernel-guided multi-step search vs full scan."""
    kernel_s = time_per_query(lambda: idx.knn_query_batch(queries, K_NN))
    brute_s = time_per_query(
        lambda: [idx.brute_force_knn(q, K_NN) for q in queries], repeats=2
    )
    return {
        "queries": len(queries),
        "k": K_NN,
        "brute_s": brute_s,
        "kernel_s": kernel_s,
        "speedup": brute_s / kernel_s,
    }


def bench_knn_refine(idx: STIndex, queries: list[np.ndarray]) -> dict:
    """Window verification at the k-NN radius: matrix pass vs scalar loop.

    Replays the verify phase over every alignable window of a fixed
    subset of series, bounded by each query's true k-th neighbour
    distance — the batched early-abandon matrix against one scalar
    early-abandon call per window.
    """
    from repro.core.similarity import batch_euclidean_within, euclidean_early_abandon

    sample_sids = range(0, idx.num_series, idx.num_series // 8)
    prepared = []
    for q in queries:
        qa = np.asarray(q, dtype=np.float64)
        radius = idx.knn_query(qa, K_NN)[-1].distance
        mats = [
            np.lib.stride_tricks.sliding_window_view(
                idx.series(sid), qa.shape[0]
            )
            for sid in sample_sids
        ]
        prepared.append((qa, radius, mats))

    def batched() -> None:
        for qa, radius, mats in prepared:
            for mat in mats:
                batch_euclidean_within(mat, qa, radius)

    def scalar() -> None:
        for qa, radius, mats in prepared:
            for mat in mats:
                for row in mat:
                    euclidean_early_abandon(row, qa, radius)

    batched_s = time_per_query(batched)
    scalar_s = time_per_query(scalar, repeats=2)
    windows = sum(m.shape[0] for _, _, ms in prepared for m in ms)
    return {
        "windows": windows,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--merge-into", default=None,
        help="existing bench JSON report to fold the subseq_* entries into "
             "(e.g. BENCH_hotpaths.json or a freshly generated record)",
    )
    # tolerate foreign flags (run_all's --quick) when invoked via main()
    args, _ = parser.parse_known_args()

    idx = index_for("adaptive")
    queries = make_queries(idx)
    report = {
        "workload": {
            "count": COUNT,
            "length": LENGTH,
            "window": WINDOW,
            "eps": EPS,
            "subtrails": idx.num_subtrails,
        },
        "subseq_build": bench_build(),
        "subseq_probe": bench_probe(idx, queries),
        "subseq_refine": bench_refine(idx, queries),
        "subseq_range_query": bench_range_query(idx, queries),
        "subseq_knn_build": bench_knn_build(),
        "subseq_knn_probe": bench_knn_probe(idx, queries),
        "subseq_knn_refine": bench_knn_refine(idx, queries),
    }

    build, probe = report["subseq_build"], report["subseq_probe"]
    refine, e2e = report["subseq_refine"], report["subseq_range_query"]
    print_series(
        f"Columnar ST-index pipeline ({COUNT} series x {LENGTH}, window "
        f"{WINDOW}, eps {EPS}, {idx.num_subtrails} sub-trail MBRs)",
        ["phase", "reference_s", "columnar_s", "speedup"],
        [
            ("build (bulk vs insert)", build["insert_s"], build["bulk_s"],
             build["speedup"]),
            (f"probe ({probe['candidates']} candidates)",
             probe["reference_s"], probe["kernel_s"], probe["speedup"]),
            ("refine", refine["scalar_s"], refine["batched_s"],
             refine["speedup"]),
            ("range_query (end-to-end)",
             e2e["reference_ms_per_query"] / 1000 * e2e["queries"],
             e2e["fast_ms_per_query"] / 1000 * e2e["queries"],
             e2e["speedup"]),
        ],
    )
    print(
        f"\nrange_query_batch: {e2e['batch_ms_per_query']:.3f} ms/query "
        f"(per-query fast path: {e2e['fast_ms_per_query']:.3f} ms/query)"
    )

    kb = report["subseq_knn_build"]
    kp = report["subseq_knn_probe"]
    kr = report["subseq_knn_refine"]
    print_series(
        f"Subsequence k-NN (k={K_NN}, {len(queries)} queries)",
        ["phase", "reference_s", "columnar_s", "speedup"],
        [
            ("build (bulk vs insert)", kb["insert_s"], kb["bulk_s"],
             kb["speedup"]),
            ("probe (kernel vs window scan)", kp["brute_s"], kp["kernel_s"],
             kp["speedup"]),
            (f"refine ({kr['windows']} windows)", kr["scalar_s"],
             kr["batched_s"], kr["speedup"]),
        ],
    )

    # Grouping comparison on the small workload (informational).
    for grouping in ("fixed", "adaptive"):
        small = index_for(grouping, count=40, length=512)
        qs = make_queries(small, count=5)
        secs = time_per_query(lambda: [small.range_query(q, EPS) for q in qs])
        print(
            f"st-index/{grouping} (40 x 512): {small.num_subtrails} MBRs, "
            f"{1000 * secs / len(qs):.3f} ms/query"
        )

    if args.merge_into:
        path = Path(args.merge_into)
        merged = json.loads(path.read_text()) if path.exists() else {}
        for key in (
            "subseq_build", "subseq_probe", "subseq_refine",
            "subseq_range_query",
            "subseq_knn_build", "subseq_knn_probe", "subseq_knn_refine",
        ):
            merged[key] = report[key]
        path.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"\nmerged subseq_* entries into {path}")


if __name__ == "__main__":
    main()
