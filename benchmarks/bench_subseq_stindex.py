"""Extension bench: the ST-index versus exhaustive subsequence scanning.

Not a paper figure — the paper's experiments stop at whole-sequence
queries — but [FRM94] is the companion method the paper's machinery
descends from, so the reproduction carries its performance story too:
filter-and-refine over sub-trail MBRs versus checking every offset, for
both grouping policies.

pytest: window-length queries, both groupings, plus the brute-force bar.
sweep:  ``python -m benchmarks.bench_subseq_stindex``
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import print_series, time_per_query
from repro.data import make_stock_universe
from repro.subseq import STIndex

WINDOW = 32
EPS = 0.5

_cache: dict[str, STIndex] = {}


def index_for(grouping: str) -> STIndex:
    if grouping not in _cache:
        rel = make_stock_universe(count=40, length=512, seed=31)
        idx = STIndex(window=WINDOW, k=3, grouping=grouping, chunk=16)
        for rid in range(len(rel)):
            idx.add_series(rel.get(rid))
        _cache[grouping] = idx
    return _cache[grouping]


def make_queries(idx: STIndex, count: int = 5) -> list[np.ndarray]:
    rng = np.random.default_rng(9)
    out = []
    for _ in range(count):
        sid = int(rng.integers(0, idx.num_series))
        src = idx.series(sid)
        start = int(rng.integers(0, len(src) - WINDOW))
        out.append(src[start : start + WINDOW] + rng.normal(0, 0.01, WINDOW))
    return out


@pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
def test_stindex_query(benchmark, grouping):
    idx = index_for(grouping)
    queries = make_queries(idx)
    benchmark(lambda: [idx.range_query(q, EPS) for q in queries])


def test_stindex_brute(benchmark):
    idx = index_for("adaptive")
    queries = make_queries(idx)
    benchmark.pedantic(
        lambda: [idx.brute_force(q, EPS) for q in queries], rounds=2, iterations=1
    )


def test_answers_identical_across_methods():
    fixed = index_for("fixed")
    adaptive = index_for("adaptive")
    for q in make_queries(adaptive):
        want = [(m.series_id, m.offset) for m in adaptive.brute_force(q, EPS)]
        assert [(m.series_id, m.offset) for m in adaptive.range_query(q, EPS)] == want
        assert [(m.series_id, m.offset) for m in fixed.range_query(q, EPS)] == want


def main() -> None:
    rows = []
    for grouping in ("fixed", "adaptive"):
        idx = index_for(grouping)
        queries = make_queries(idx)
        secs = time_per_query(lambda: [idx.range_query(q, EPS) for q in queries])
        rows.append(
            (
                f"st-index/{grouping}",
                idx.num_subtrails,
                1000 * secs / len(queries),
            )
        )
    idx = index_for("adaptive")
    queries = make_queries(idx)
    brute_secs = time_per_query(
        lambda: [idx.brute_force(q, EPS) for q in queries], repeats=1
    )
    rows.append(("brute force", 0, 1000 * brute_secs / len(queries)))
    print_series(
        f"ST-index vs exhaustive subsequence scan "
        f"({idx.num_series} series x 512, window {WINDOW}, eps {EPS})",
        ["method", "sub-trail MBRs", "ms/query"],
        rows,
    )


if __name__ == "__main__":
    main()
