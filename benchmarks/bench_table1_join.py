"""Table 1: the spatial self-join under ``T_mavg20``.

Setup (Section 5): 1067 stock series of length 128 (synthetic universe
here); find all pairs whose 20-day-moving-averaged normal forms are within
``eps``.  Four methods, as in the paper:

====== ==============================================================
 a      sequential scan over all pairs, full distance computation
 b      as *a*, but abandon each distance once it exceeds eps
 c      index nested-loop join **without** the transformation
 d      as *c*, with ``T_mavg20`` applied to index and search rectangles
====== ==============================================================

Paper result: ``a`` 20:36 min, ``b`` 2:31 min, ``c`` 10.1 s, ``d`` 17.7 s;
answer sizes 12, 12, 3x2, 12x2.  (*c* answers a different query — without
the transformation — which is why its answer set is smaller; the paper
also counts each unordered pair twice for *c*/*d*, this harness reports
unordered pairs once.)

The shape to reproduce: ``a`` slowest by an order of magnitude, ``b``
~10x faster than ``a``, the index methods fastest, ``d`` slightly slower
than ``c`` per candidate, and the transformed join finding strictly more
pairs than the plain one.

pytest: a 300-stock subset keeps the scan methods inside benchmark time.
sweep:  ``python -m benchmarks.bench_table1_join`` (full 1067 stocks).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    default_space,
    get_engine,
    get_stock_relation,
    print_series,
)
from repro.core.transforms import moving_average

LENGTH = 128
EPS = 0.3  # tuned on the synthetic universe: 11 pairs, like the paper's 12


def setup(count: int):
    rel = get_stock_relation(count=count)
    engine = get_engine(rel, f"table1-{count}", space_factory=default_space)
    t = moving_average(LENGTH, 20)
    return engine, t


@pytest.mark.parametrize(
    "method", ["scan", "scan-abandon", "index", "tree-join"],
    ids=["a-scan", "b-abandon", "d-index", "treejoin"],
)
def test_table1_methods_with_transform(benchmark, method):
    engine, t = setup(300)
    benchmark.pedantic(
        lambda: engine.all_pairs(EPS, transformation=t, method=method),
        rounds=2,
        iterations=1,
    )


def test_table1_method_c_plain_index(benchmark):
    engine, _ = setup(300)
    benchmark.pedantic(
        lambda: engine.all_pairs(EPS, transformation=None, method="index"),
        rounds=2,
        iterations=1,
    )


def test_table1_answer_consistency():
    engine, t = setup(300)
    a = engine.all_pairs(EPS, t, "scan")
    b = engine.all_pairs(EPS, t, "scan-abandon")
    d = engine.all_pairs(EPS, t, "index")
    assert sorted((i, j) for i, j, _ in a) == sorted((i, j) for i, j, _ in b)
    assert sorted((i, j) for i, j, _ in a) == sorted((i, j) for i, j, _ in d)
    c = engine.all_pairs(EPS, None, "index")
    assert len(c) <= len(d)  # the plain join answers a narrower question


def main() -> None:
    engine, t = setup(1067)
    rows = []
    for label, transformation, method in [
        ("a: scan, full distance", t, "scan"),
        ("b: scan, early abandon", t, "scan-abandon"),
        ("c: index, no transform", None, "index"),
        ("d: index + Tmavg20", t, "index"),
        ("  (extra) tree join + T", t, "tree-join"),
    ]:
        t0 = time.perf_counter()
        result = engine.all_pairs(EPS, transformation=transformation, method=method)
        elapsed = time.perf_counter() - t0
        mins, secs = divmod(elapsed, 60.0)
        rows.append((label, f"{int(mins)}:{secs:06.3f}", len(result)))
    print_series(
        f"Table 1 — spatial self-join, 1067 stocks, eps={EPS}, Tmavg20",
        ["method", "time (m:s)", "pairs"],
        rows,
    )
    print(
        "\npaper shape: a >> b >> (c, d); d a bit slower than c; the\n"
        "transformed join (d) finds more pairs than the plain one (c).\n"
        "(pairs counted unordered once; the paper counted c/d twice)"
    )


if __name__ == "__main__":
    main()
