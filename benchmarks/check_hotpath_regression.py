"""CI gate: fail when a committed hot-path speedup regresses by > 1.25x.

Compares two ``bench_micro_hotpaths`` reports — the committed baseline
(``BENCH_hotpaths.json``) and a freshly generated run — on their
*dimensionless* numbers (every ``speedup`` ratio, anywhere in the JSON
tree).  Ratios are used rather than raw seconds so the check is portable
across machines; the tolerance factor absorbs normal CI noise on top.

A hot-path number "regresses" when::

    current_speedup < baseline_speedup / tolerance

``--require PREFIX`` (repeatable) additionally fails the gate when no
speedup key in the *current* report starts with the prefix — a guard
against a bench family (e.g. the ``subseq_knn_*`` entries) being
silently dropped from the merged record, which the ratio comparison
alone would only catch while the baseline still carries them.

Run:  ``python -m benchmarks.check_hotpath_regression \\
          --baseline BENCH_hotpaths.json --current /tmp/bench.json \\
          --require subseq_knn``
"""

from __future__ import annotations

import argparse
import json
import sys


def collect_speedups(node, path: str = "") -> dict[str, float]:
    """Every ``speedup`` value in the report, keyed by its JSON path."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            if key == "speedup" and isinstance(value, (int, float)):
                out[sub] = float(value)
            else:
                out.update(collect_speedups(value, sub))
    return out


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Human-readable regression lines (empty when the gate passes)."""
    base = collect_speedups(baseline)
    cur = collect_speedups(current)
    failures = []
    for key, want in sorted(base.items()):
        got = cur.get(key)
        if got is None:
            failures.append(f"{key}: missing from current report (baseline {want:.2f}x)")
        elif got < want / tolerance:
            failures.append(
                f"{key}: {got:.2f}x < committed {want:.2f}x / {tolerance} "
                f"(floor {want / tolerance:.2f}x)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_hotpaths.json",
                        help="committed baseline report")
    parser.add_argument("--current", required=True,
                        help="freshly generated report to check")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="allowed regression factor (default 1.25)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless some current speedup key starts "
                             "with PREFIX (repeatable)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = compare(baseline, current, args.tolerance)
    current_keys = collect_speedups(current)
    for prefix in args.require:
        if not any(key.startswith(prefix) for key in current_keys):
            failures.append(
                f"required bench family {prefix!r}: no speedup entry in the "
                f"current report"
            )
    checked = len(collect_speedups(baseline))
    if failures:
        print(f"hot-path regression gate FAILED ({len(failures)}/{checked}):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"hot-path regression gate passed: {checked} speedups within "
          f"{args.tolerance}x of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
