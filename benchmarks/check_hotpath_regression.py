"""CI gate: fail when a committed hot-path speedup regresses by > 1.25x.

Compares two ``bench_micro_hotpaths`` reports — the committed baseline
(``BENCH_hotpaths.json``) and a freshly generated run — on their
*dimensionless* numbers (every ``speedup`` ratio, anywhere in the JSON
tree).  Ratios are used rather than raw seconds so the check is portable
across machines; the tolerance factor absorbs normal CI noise on top.

A hot-path number "regresses" purely in *ratio space*, relative to
whatever the committed baseline says — never against an assumed floor of
1.0::

    current_speedup / baseline_speedup < 1 / tolerance

Some families ship intentionally below 1.0 (``persist_save`` is ~0.41:
the fsync durability protocol costs real time, and the gate's job is to
keep that overhead from *growing*).  For those, the committed sub-1.0
value is the reference like any other; a current run matching it passes,
and one falling a tolerance-factor below it fails.  Baselines that are
zero, negative or non-finite are configuration errors and fail loudly —
a corrupt entry must not silently turn its family's floor into "anything
passes".

``--require PREFIX`` (repeatable) additionally fails the gate when no
speedup key in the *current* report starts with the prefix — a guard
against a bench family (e.g. the ``subseq_knn_*`` entries) being
silently dropped from the merged record, which the ratio comparison
alone would only catch while the baseline still carries them.

Run:  ``python -m benchmarks.check_hotpath_regression \\
          --baseline BENCH_hotpaths.json --current /tmp/bench.json \\
          --require subseq_knn``
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def collect_speedups(node, path: str = "") -> dict[str, float]:
    """Every ``speedup`` value in the report, keyed by its JSON path."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            if key == "speedup" and isinstance(value, (int, float)):
                out[sub] = float(value)
            else:
                out.update(collect_speedups(value, sub))
    return out


def _usable(value: float) -> bool:
    """A speedup ratio the gate can reason about: finite and positive."""
    return math.isfinite(value) and value > 0.0


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Human-readable regression lines (empty when the gate passes).

    The comparison is ratio-vs-committed-ratio, so families whose
    committed speedup is below 1.0 (deliberate overhead, e.g.
    ``persist_save``) are gated exactly like the >1.0 ones.  A baseline
    entry that is zero, negative or non-finite would make the floor
    ``want / tolerance`` vacuous and let any regression through — those
    entries fail the gate outright instead of masking it.
    """
    base = collect_speedups(baseline)
    cur = collect_speedups(current)
    failures = []
    for key, want in sorted(base.items()):
        got = cur.get(key)
        if not _usable(want):
            failures.append(
                f"{key}: committed baseline {want!r} is not a positive finite "
                f"ratio — fix BENCH_hotpaths.json, this entry gates nothing"
            )
        elif got is None:
            failures.append(f"{key}: missing from current report (baseline {want:.2f}x)")
        elif not _usable(got):
            failures.append(
                f"{key}: current value {got!r} is not a positive finite ratio "
                f"(baseline {want:.2f}x)"
            )
        elif got < want / tolerance:
            failures.append(
                f"{key}: {got:.2f}x < committed {want:.2f}x / {tolerance} "
                f"(floor {want / tolerance:.2f}x)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_hotpaths.json",
                        help="committed baseline report")
    parser.add_argument("--current", required=True,
                        help="freshly generated report to check")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="allowed regression factor (default 1.25)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless some current speedup key starts "
                             "with PREFIX (repeatable)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = compare(baseline, current, args.tolerance)
    current_keys = collect_speedups(current)
    for prefix in args.require:
        if not any(key.startswith(prefix) for key in current_keys):
            failures.append(
                f"required bench family {prefix!r}: no speedup entry in the "
                f"current report"
            )
    checked = len(collect_speedups(baseline))
    if failures:
        print(f"hot-path regression gate FAILED ({len(failures)}/{checked}):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"hot-path regression gate passed: {checked} speedups within "
          f"{args.tolerance}x of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
