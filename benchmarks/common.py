"""Shared machinery for the benchmark modules.

Engines are expensive to build (index construction over thousands of
series), so :func:`get_engine` memoises them per configuration for the
lifetime of the process — both the pytest-benchmark run and the manual
sweeps reuse them.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace
from repro.data import SequenceRelation, make_stock_universe
from repro.data.synthetic import random_walks

_ENGINES: dict[tuple, SimilarityEngine] = {}
_RELATIONS: dict[tuple, SequenceRelation] = {}


def get_walk_relation(count: int, length: int, seed: int = 1997) -> SequenceRelation:
    """Memoised paper-style random-walk relation."""
    key = ("walks", count, length, seed)
    if key not in _RELATIONS:
        _RELATIONS[key] = SequenceRelation.from_matrix(
            random_walks(count, length, seed=seed)
        )
    return _RELATIONS[key]


def get_stock_relation(count: int = 1067, length: int = 128) -> SequenceRelation:
    """Memoised synthetic stock universe (paper: 1067 series of 128 days)."""
    key = ("stocks", count, length)
    if key not in _RELATIONS:
        _RELATIONS[key] = make_stock_universe(count=count, length=length)
    return _RELATIONS[key]


def get_engine(
    relation: SequenceRelation,
    tag: str,
    space_factory: Optional[Callable[[int], object]] = None,
    **kwargs,
) -> SimilarityEngine:
    """Memoised engine over ``relation`` (keyed by ``tag`` + relation id)."""
    key = (id(relation), tag)
    if key not in _ENGINES:
        space = space_factory(relation.length) if space_factory else None
        _ENGINES[key] = SimilarityEngine(relation, space=space, **kwargs)
    return _ENGINES[key]


def default_space(length: int) -> NormalFormSpace:
    """The paper's Section 5 feature space."""
    return NormalFormSpace(length, k=2, coord="polar")


def pick_queries(
    relation: SequenceRelation, how_many: int, seed: int = 5
) -> list[np.ndarray]:
    """A reproducible sample of query series drawn from the relation."""
    rng = np.random.default_rng(seed)
    ids = rng.choice(len(relation), size=min(how_many, len(relation)), replace=False)
    return [relation.get(int(i)) for i in ids]


def time_per_query(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def print_series(title: str, columns: list[str], rows: list[tuple]) -> None:
    """Print one figure's series as an aligned table."""
    print(f"\n{title}")
    print("-" * max(len(title), 8))
    widths = [max(len(c), 12) for c in columns]
    print("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.4f}".rjust(w))
            else:
                cells.append(str(value).rjust(w))
        print("  ".join(cells))
