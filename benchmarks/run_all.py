"""Run every figure/table sweep in sequence.

``python -m benchmarks.run_all`` regenerates all the series recorded in
EXPERIMENTS.md in one go (expect ~10-20 minutes: Table 1's method *a*
alone scans half a million pairs, and Figures 9/11 build indexes up to
12,000 sequences).  Pass ``--quick`` to skip the two slowest sweeps.
"""

from __future__ import annotations

import argparse
import importlib
import time

SWEEPS = [
    ("benchmarks.bench_fig08_length", False),
    ("benchmarks.bench_fig09_cardinality", True),
    ("benchmarks.bench_fig10_vs_scan_length", False),
    ("benchmarks.bench_fig11_vs_scan_cardinality", True),
    ("benchmarks.bench_fig12_selectivity", False),
    ("benchmarks.bench_table1_join", True),
    ("benchmarks.bench_ablation_coordinates", False),
    ("benchmarks.bench_ablation_k", False),
    ("benchmarks.bench_ablation_index", False),
    ("benchmarks.bench_subseq_stindex", False),
    ("benchmarks.bench_batch_throughput", True),
    ("benchmarks.bench_micro_hotpaths", True),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="skip the slowest sweeps"
    )
    args = parser.parse_args()
    started = time.perf_counter()
    for module_name, slow in SWEEPS:
        if args.quick and slow:
            print(f"\n[skipped {module_name} (--quick)]")
            continue
        t0 = time.perf_counter()
        module = importlib.import_module(module_name)
        module.main()
        print(f"[{module_name}: {time.perf_counter() - t0:.1f}s]")
    print(f"\nall sweeps done in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
