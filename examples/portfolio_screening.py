#!/usr/bin/env python3
"""Portfolio screening: constrained similarity, hedges, and persistence.

A workflow a stock analyst could actually run on top of the library:

1. build an engine over the market, **save it to disk**, and reopen it —
   subsequent sessions answer queries straight from the saved index pages;
2. find *substitutes* for a holding — same smoothed shape AND comparable
   price level / volatility (GK95-style constrained query, using the
   mean/std index dimensions the paper's Section 5 layout provides);
3. find *hedges* — instruments whose smoothed trend is the reverse of the
   holding's (the paper's Example 2.2 machinery, `reverse THEN mavg`).

Run:  python examples/portfolio_screening.py
"""

import tempfile

import numpy as np

from repro import SimilarityEngine, moving_average, reverse
from repro.core.gk import gk_similar
from repro.data import make_stock_universe
from repro.persist import load_engine, save_engine


def main() -> None:
    rel = make_stock_universe(count=600, length=128, seed=77)
    engine = SimilarityEngine(rel)

    # --- 1. persist and reopen -----------------------------------------
    workdir = tempfile.mkdtemp(prefix="repro-engine-")
    save_engine(engine, workdir)
    engine = load_engine(workdir)
    print(f"engine saved to and reloaded from {workdir}")
    print(f"  {len(engine.relation)} series; index height {engine.tree.height}; "
          f"answers now come from the saved pages\n")

    holding_id = 123
    holding = engine.relation.get(holding_id)
    t20 = moving_average(128, 20)
    print(f"holding: {rel.name(holding_id)}  "
          f"(level {np.mean(holding):.2f}, vol {np.std(holding):.2f}, "
          f"sector {rel.attrs(holding_id)['sector']})\n")

    # --- 2. substitutes: same shape, similar level and volatility ------
    subs = gk_similar(
        engine,
        holding,
        eps=4.0,
        shift_tolerance=10.0,          # price level within +/- $10
        scale_range=(0.5, 2.0),        # volatility between half and double
        transformation=t20,
        transform_query=True,
    )
    print("substitutes (smoothed shape match + level/vol windows):")
    for rid, dist in subs[:6]:
        if rid == holding_id:
            continue
        s = engine.relation.get(rid)
        print(f"  {rel.name(rid):>8}  D={dist:.2f}  "
              f"level {np.mean(s):6.2f}  vol {np.std(s):5.2f}  "
              f"sector {rel.attrs(rid)['sector']}")
    print()

    # --- 3. hedges: reversed smoothed trend -----------------------------
    t_hedge = reverse(128).then(t20)
    hedges = engine.knn_query(holding, k=5, transformation=t_hedge,
                              transform_query=False)
    print("hedge candidates (reverse THEN mavg20 nearest neighbours):")
    for rid, dist in hedges:
        beta = rel.attrs(rid)["beta"]
        print(f"  {rel.name(rid):>8}  D={dist:.2f}  beta {beta:+.2f}")
    negative = [rid for rid, _ in hedges if rel.attrs(rid)["beta"] < 0]
    print(f"\n{len(negative)} of 5 hedge candidates are genuine inverse "
          f"instruments (negative market beta).")


if __name__ == "__main__":
    main()
