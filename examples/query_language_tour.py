#!/usr/bin/env python3
"""Tour of the declarative query language (the JMM95-style front end).

Binds a synthetic stock relation and a couple of query sequences into a
session, then runs every verb the language supports: RANGE, KNN, JOIN and
DIST, with transformation chains in USING clauses.

Run:  python examples/query_language_tour.py
"""

from repro.core.language import QuerySession
from repro.core.transforms import moving_average
from repro.data import make_stock_universe


def main() -> None:
    rel = make_stock_universe(count=400, length=128, seed=2024)
    session = QuerySession()
    session.bind_relation("stocks", rel)
    session.bind_sequence("acme", rel.get(10))
    session.bind_sequence("zenith", rel.get(250))
    # User-defined transformation: end-weighted 10-day average for trend
    # prediction (Section 3.2 mentions trend-weighted windows).
    trend = moving_average(
        128, 10, weights=[0.02, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15, 0.17, 0.18]
    )
    session.bind_transformation("trend10", trend)

    queries = [
        "RANGE acme IN stocks EPS 4.0 USING mavg(20)",
        "RANGE acme IN stocks EPS 4.0 USING trend10",
        "KNN acme IN stocks K 5 USING mavg(20)",
        "KNN zenith IN stocks K 5 USING reverse THEN mavg(20)",
        "JOIN stocks EPS 1.2 USING mavg(20) METHOD index",
        "DIST acme, zenith",
        "DIST acme, zenith USING mavg(20)",
    ]
    for text in queries:
        print(f">>> {text}")
        result = session.execute(text)
        if isinstance(result, float):
            print(f"    {result:.3f}")
        elif result and len(result[0]) == 3:
            print(f"    {len(result)} pairs; first 3:")
            for i, j, d in result[:3]:
                print(f"      ({rel.name(i)}, {rel.name(j)})  D={d:.3f}")
        else:
            print(f"    {len(result)} matches; first 5:")
            for rid, d in result[:5]:
                print(f"      {rel.name(rid):>8}  D={d:.3f}")
        print()

    # Errors are first-class: unknown names and bad arguments raise
    # QueryError with a message, they never crash the engine.
    from repro.core.language import QueryError

    for bad in [
        "RANGE ghost IN stocks EPS 1",
        "KNN acme IN stocks K 0",
        "RANGE acme IN stocks EPS 1 USING mavg(9999)",
    ]:
        try:
            session.execute(bad)
        except QueryError as exc:
            print(f">>> {bad}\n    QueryError: {exc}\n")


if __name__ == "__main__":
    main()
