#!/usr/bin/env python3
"""Quickstart: index a relation of time series and run similarity queries.

Reproduces the paper's Example 1.1 end to end — two stock price series
that look different day-to-day (Euclidean distance 11.92) but nearly
identical once smoothed by a 3-day moving average (distance 0.47) — then
shows the three query types over a small synthetic relation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SequenceRelation,
    SimilarityEngine,
    euclidean,
    moving_average,
    reverse,
)
from repro.data import EX11_S1, EX11_S2, random_walks


def example_1_1() -> None:
    print("=" * 64)
    print("Example 1.1 — moving average as a similarity transformation")
    print("=" * 64)
    print(f"s1 = {EX11_S1.astype(int).tolist()}")
    print(f"s2 = {EX11_S2.astype(int).tolist()}")
    print(f"Euclidean distance D(s1, s2)          = {euclidean(EX11_S1, EX11_S2):.2f}")

    t = moving_average(len(EX11_S1), 3)
    d = euclidean(t.apply_series(EX11_S1), t.apply_series(EX11_S2))
    print(f"After 3-day moving average (T_mavg3)  = {d:.2f}")
    print("(paper: 11.92 and 0.47)\n")


def engine_tour() -> None:
    print("=" * 64)
    print("Engine tour — range, k-NN and all-pairs queries")
    print("=" * 64)
    n, length = 500, 128
    rel = SequenceRelation.from_matrix(
        random_walks(n, length, seed=1), names=[f"w{i}" for i in range(n)]
    )
    engine = SimilarityEngine(rel)  # paper defaults: polar normal-form, k=2
    print(f"engine: {engine}\n")

    query = rel.get(0)
    t20 = moving_average(length, 20)

    hits = engine.range_query(query, eps=3.0, transformation=t20)
    print(f"RANGE eps=3.0 USING mavg(20): {len(hits)} matches")
    for rid, dist in hits[:5]:
        print(f"  {rel.name(rid):>6}  distance {dist:.3f}")

    knn = engine.knn_query(query, k=5, transformation=t20)
    print(f"\nKNN k=5 USING mavg(20):")
    for rid, dist in knn:
        print(f"  {rel.name(rid):>6}  distance {dist:.3f}")

    trev = reverse(length)
    opposite = engine.knn_query(query, k=3, transformation=trev)
    print(f"\nKNN k=3 USING reverse (hedging candidates):")
    for rid, dist in opposite:
        print(f"  {rel.name(rid):>6}  distance {dist:.3f}")

    pairs = engine.all_pairs(eps=1.5, transformation=t20, method="index")
    print(f"\nALL-PAIRS eps=1.5 USING mavg(20): {len(pairs)} similar pairs")
    for i, j, dist in pairs[:5]:
        print(f"  ({rel.name(i)}, {rel.name(j)})  distance {dist:.3f}")

    # One index serves every transformation: no second structure was built.
    print(f"\nindex nodes: {engine.tree.node_count()}, "
          f"height: {engine.tree.height}, "
          f"one R*-tree answered all of the above.")


def main() -> None:
    example_1_1()
    engine_tour()


if __name__ == "__main__":
    main()
