#!/usr/bin/env python3
"""Section 2 walk-through: transformations in stock data analysis.

Reproduces the *shape* of the paper's Examples 2.1-2.3 on the synthetic
market (the original 1995 FTP stock archive no longer exists; see
DESIGN.md for the substitution):

* 2.1 — a pair of correlated stocks: shifting, normalising and 20-day
  smoothing bring the distance down step by step;
* 2.2 — an inverse (negative-beta) instrument: reversing one side makes
  the pair similar;
* 2.3 — genuinely unrelated trends resist repeated smoothing.

Run:  python examples/stock_analysis.py
"""

import numpy as np

from repro import SimilarityEngine, euclidean, moving_average, normal_form, reverse
from repro.data import make_stock_universe
from repro.data.stocks import paired_stocks


def example_2_1() -> None:
    print("=" * 64)
    print("Example 2.1 — shift, scale, then smooth a correlated pair")
    print("=" * 64)
    base, corr, _ = paired_stocks(length=128, seed=42)
    t20 = moving_average(128, 20)
    d_orig = euclidean(base, corr)
    d_shift = euclidean(base - base.mean(), corr - corr.mean())
    nb, nc = normal_form(base), normal_form(corr)
    d_norm = euclidean(nb, nc)
    d_smooth = euclidean(t20.apply_series(nb), t20.apply_series(nc))
    print(f"original        D = {d_orig:8.2f}   (paper BBA/ZTR: 16.16)")
    print(f"shifted         D = {d_shift:8.2f}   (paper: 12.78)")
    print(f"normal form     D = {d_norm:8.2f}   (paper: 11.10)")
    print(f"20-day MV       D = {d_smooth:8.2f}   (paper: 2.75)\n")


def example_2_2() -> None:
    print("=" * 64)
    print("Example 2.2 — finding opposite movers with T_rev")
    print("=" * 64)
    base, _, inverse = paired_stocks(length=128, seed=42)
    t20 = moving_average(128, 20)
    trev = reverse(128)
    nb, ni = normal_form(base), normal_form(inverse)
    d_orig = euclidean(base, inverse)
    d_norm = euclidean(nb, ni)
    d_rev = euclidean(nb, trev.apply_series(ni))
    d_final = euclidean(t20.apply_series(nb), t20.apply_series(trev.apply_series(ni)))
    print(f"original        D = {d_orig:8.2f}   (paper CC/VAR: 119.59)")
    print(f"normal form     D = {d_norm:8.2f}   (paper: 21.81)")
    print(f"reversed        D = {d_rev:8.2f}   (paper: 5.68)")
    print(f"+ 20-day MV     D = {d_final:8.2f}   (paper: 3.81)\n")


def example_2_3() -> None:
    print("=" * 64)
    print("Example 2.3 — dissimilar trends resist repeated smoothing")
    print("=" * 64)
    rng = np.random.default_rng(11)
    a = normal_form(np.cumsum(rng.normal(0.3, 1.0, 128)))
    b = normal_form(np.cumsum(rng.normal(-0.3, 1.0, 128)))
    t20 = moving_average(128, 20)
    xa, xb = a, b
    print(f"normal form     D = {euclidean(xa, xb):8.2f}   (paper DMIC/MXF: 11.06)")
    for i in range(1, 11):
        xa, xb = t20.apply_series(xa), t20.apply_series(xb)
        if i in (1, 2, 3, 10):
            label = {1: "10.09", 2: "9.63", 3: "9.22", 10: "6.57"}[i]
            print(f"{i:>2} x 20-day MV  D = {euclidean(xa, xb):8.2f}   (paper: {label})")
    print()


def market_screening() -> None:
    """Index 1067 synthetic stocks and screen for hedges and twins."""
    print("=" * 64)
    print("Screening the full synthetic market (1067 stocks, length 128)")
    print("=" * 64)
    rel = make_stock_universe()  # paper-sized universe
    engine = SimilarityEngine(rel)
    t20 = moving_average(128, 20)
    trev = reverse(128)

    target = rel.get(200)
    print(f"target stock: {rel.name(200)} (sector {rel.attrs(200)['sector']})")

    twins = engine.knn_query(target, k=6, transformation=t20)
    print("\nsmoothed twins (mavg20):")
    for rid, dist in twins:
        if rid == 200:
            continue
        print(f"  {rel.name(rid):>8}  sector {rel.attrs(rid)['sector']:>4}  D={dist:.2f}")

    hedges = engine.knn_query(target, k=5, transformation=trev.then(t20))
    print("\nhedging candidates (reverse THEN mavg20):")
    for rid, dist in hedges:
        beta = rel.attrs(rid)["beta"]
        print(f"  {rel.name(rid):>8}  beta {beta:+.2f}  D={dist:.2f}")


def main() -> None:
    example_2_1()
    example_2_2()
    example_2_3()
    market_screening()


if __name__ == "__main__":
    main()
