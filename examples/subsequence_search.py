#!/usr/bin/env python3
"""Subsequence matching with the ST-index (the [FRM94] companion method).

Indexes sliding windows of a collection of long stock series, then

1. finds every occurrence of a short query pattern (a "double dip"
   shape) anywhere inside any series, at any offset;
2. runs a long query through the multipiece reduction;
3. shows the filter at work: candidate counts versus the brute-force
   offset space.

Run:  python examples/subsequence_search.py
"""

import numpy as np

from repro.data import make_stock_universe
from repro.subseq import STIndex


def main() -> None:
    rng = np.random.default_rng(7)
    rel = make_stock_universe(count=60, length=512, seed=31)

    window = 32
    idx = STIndex(window=window, k=3, grouping="adaptive", chunk=16)
    for rid in range(len(rel)):
        idx.add_series(rel.get(rid))
    offsets = sum(len(idx.series(s)) - window + 1 for s in range(idx.num_series))
    print(
        f"indexed {idx.num_series} series, {offsets} window offsets, "
        f"{idx.num_subtrails} sub-trail MBRs "
        f"({offsets / idx.num_subtrails:.1f} offsets per MBR)"
    )

    # 1. Plant a pattern: take a window from one series, perturb it, and
    #    search for look-alikes everywhere.
    source = idx.series(17)
    pattern = source[100 : 100 + window] + rng.normal(0, 0.01, size=window)
    eps = 0.5
    matches = idx.range_query(pattern, eps)
    print(f"\nwindow query (len {window}, eps {eps}): {len(matches)} matches")
    for m in matches[:5]:
        print(f"  series {m.series_id:>3} offset {m.offset:>4}  D={m.distance:.3f}")
    assert any(m.series_id == 17 and abs(m.offset - 100) <= 1 for m in matches)

    # 2. Long query: three windows' worth of a series, multipiece search.
    long_q = idx.series(5)[200 : 200 + 3 * window].copy()
    long_q += rng.normal(0, 0.01, size=long_q.shape)
    matches = idx.range_query(long_q, 1.0)
    print(f"\nlong query (len {3 * window}): {len(matches)} matches")
    for m in matches[:5]:
        print(f"  series {m.series_id:>3} offset {m.offset:>4}  D={m.distance:.3f}")

    # 3. Filter quality: compare against the exhaustive scan.
    series_ids, cand_offsets = idx.candidate_offsets(pattern, eps)
    brute = idx.brute_force(pattern, eps)
    assert [(m.series_id, m.offset) for m in idx.range_query(pattern, eps)] == [
        (m.series_id, m.offset) for m in brute
    ]
    print(
        f"\nexhaustive scan checks {offsets} offsets; the filter kept "
        f"{cand_offsets.shape[0]} candidates "
        f"({100 * cand_offsets.shape[0] / offsets:.2f}%) and the ST-index "
        f"returned the identical answer set."
    )

    # 4. A whole batch of patterns shares one fused index probe: every
    #    piece of every query descends the frozen kernel together.
    patterns = [
        idx.series(s)[o : o + window] + rng.normal(0, 0.01, size=window)
        for s, o in [(3, 40), (11, 250), (29, 400)]
    ]
    batch = idx.range_query_batch(patterns, eps)
    print(f"\nbatched query ({len(patterns)} patterns, one probe):")
    for qi, matches in enumerate(batch):
        best = f"D={matches[0].distance:.3f}" if matches else "-"
        print(f"  pattern {qi}: {len(matches)} matches, best {best}")


if __name__ == "__main__":
    main()
