#!/usr/bin/env python3
"""Appendix A in action: querying across sampling rates with time warping.

The paper's Example 1.2: a stock sampled daily and another sampled every
other day cannot be compared directly, but the transformation of Eq. 19
maps the spectrum of the short series onto the spectrum of its stretched
version — so one index over the short series answers queries posed against
the long ones, without materialising any warped data.

This example builds a relation of *hourly-pattern* series and finds which
ones, when stretched 2x, match a given two-hour-scale query pattern.

Run:  python examples/time_warping.py
"""

import numpy as np

from repro import (
    PlainDFTSpace,
    SequenceRelation,
    SimilarityEngine,
    euclidean,
    time_warp,
    warp_series,
)
from repro.data import EX12_P, EX12_S
from repro.dft import dft


def example_1_2() -> None:
    print("=" * 64)
    print("Example 1.2 — the literal paper sequences")
    print("=" * 64)
    print(f"s (daily)       = {EX12_S.astype(int).tolist()}")
    print(f"p (every 2nd)   = {EX12_P.astype(int).tolist()}")
    best_window = min(
        euclidean(EX12_S[i : i + 4], EX12_P) for i in range(len(EX12_S) - 3)
    )
    print(f"best direct window distance = {best_window:.2f}  (paper: > 1.41)")
    stretched = warp_series(EX12_P, 2)
    print(f"2x-warped p     = {stretched.astype(int).tolist()}")
    print(f"D(warp(p), s)   = {euclidean(stretched, EX12_S):.2f}  (identical)\n")

    # Eq. 19: the warp is a pure spectrum multiplication.
    t = time_warp(4, 2)
    lhs = t.apply_spectrum(dft(EX12_P))
    rhs = np.fft.fft(EX12_S) / np.sqrt(4)
    print("Eq. 19 check: a_f * S_f == S'_f (paper normalisation):",
          bool(np.allclose(lhs, rhs[:4])))
    print()


def cross_rate_search() -> None:
    print("=" * 64)
    print("Searching a relation of short series with 2x-stretched queries")
    print("=" * 64)
    rng = np.random.default_rng(8)
    n, length, m = 400, 64, 2
    short = np.cumsum(rng.uniform(-2, 2, size=(n, length)), axis=1) + 50.0
    rel = SequenceRelation.from_matrix(short, names=[f"s{i}" for i in range(n)])

    # Index the SHORT series with a plain polar DFT space (warp needs
    # complex stretches, hence Theorem 3 / polar coordinates).
    space = PlainDFTSpace(length, k=4, coord="polar")
    engine = SimilarityEngine(rel, space=space)
    t_warp = time_warp(length, m)

    # The query arrives at the long rate: pick a short series, stretch it,
    # jitter it, and pretend we only ever saw the stretched version.
    target = 123
    long_query = warp_series(short[target], m)
    long_query = long_query + rng.normal(0, 0.05, size=long_query.shape)

    # Its first `length` spectrum coefficients (paper normalisation) are
    # directly comparable to T_warp applied to the indexed spectra.
    q_spec_long = np.fft.fft(long_query)[:length] / np.sqrt(length)

    # Pose the range query manually through the core machinery: candidates
    # from the warped view of the index, verification against Eq. 19 spectra.
    from repro.core.queries import _make_view

    view = _make_view(engine.tree, space, t_warp)
    q_point = space.point_from_spectrum(q_spec_long)
    eps = 1.0
    rect = space.search_rect(q_point, eps)
    candidates = view.search(rect)
    print(f"candidates from the warped index view: {len(candidates)} / {n}")

    answers = []
    for entry in candidates:
        warped_spec = t_warp.apply_spectrum(engine.ground_spectra[entry.child])
        d = float(np.linalg.norm(warped_spec - q_spec_long))
        if d <= eps:
            answers.append((entry.child, d))
    answers.sort(key=lambda t: t[1])
    print(f"verified answers (distance on first {length} coefficients):")
    for rid, d in answers[:5]:
        marker = "  <-- the stretched source" if rid == target else ""
        print(f"  {rel.name(rid):>6}  D={d:.3f}{marker}")
    if not answers:
        print("  (none)")

    assert any(rid == target for rid, _ in answers), "source series must match"
    print("\nThe index over short series answered a query posed at 2x the "
          "sampling rate,\nwithout building any warped series or second index.")


def main() -> None:
    example_1_2()
    cross_rate_search()


if __name__ == "__main__":
    main()
