"""Setup shim kept for legacy editable installs.

All project metadata and tool configuration live in ``pyproject.toml``;
``pip install -e .`` uses it directly.  This shim exists only for
environments without the ``wheel`` package, where PEP 660 editable
installs cannot build and ``python setup.py develop`` installs the same
editable package through the legacy path.
"""

from setuptools import setup

setup()
