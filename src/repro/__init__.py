"""repro — a reproduction of Rafiei & Mendelzon (SIGMOD 1997),
"Similarity-Based Queries for Time Series Data".

The package implements the paper's transformation framework for similarity
queries over time-series data together with every substrate it stands on:
a unitary DFT toolkit, the Goldin-Kanellakis normal form, ``S_rect``/
``S_pol`` feature spaces, an R*-tree (plus Guttman baseline) over a paged
storage engine, Algorithm 1's on-the-fly transformed index views,
Algorithm 2's query processing, tuned sequential-scan baselines, and the
synthetic data generators the experiments run on.

Quickstart::

    import numpy as np
    from repro import SimilarityEngine, SequenceRelation, moving_average

    rel = SequenceRelation.from_matrix(np.random.rand(100, 128))
    engine = SimilarityEngine(rel)
    T = moving_average(128, 20)
    matches = engine.range_query(rel.get(0), eps=1.0, transformation=T)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.core import (
    NormalFormSpace,
    PlainDFTSpace,
    SimilarityEngine,
    Transformation,
    TransformationClosureDistance,
    UnsafeTransformationError,
    denormalize,
    difference,
    euclidean,
    euclidean_early_abandon,
    exponential_smoothing,
    identity,
    moving_average,
    normal_form,
    reverse,
    scale,
    shift,
    time_warp,
    warp_series,
)
from repro.core.gk import gk_bounds, gk_similar
from repro.core.planner import QueryPlanner
from repro.data import SequenceRelation, make_stock_universe, random_walks
from repro.persist import load_engine, save_engine
from repro.rtree import GuttmanRTree, RStarTree
from repro.subseq import STIndex

__version__ = "1.0.0"

__all__ = [
    "GuttmanRTree",
    "NormalFormSpace",
    "PlainDFTSpace",
    "QueryPlanner",
    "RStarTree",
    "STIndex",
    "SequenceRelation",
    "SimilarityEngine",
    "Transformation",
    "TransformationClosureDistance",
    "UnsafeTransformationError",
    "__version__",
    "denormalize",
    "difference",
    "euclidean",
    "euclidean_early_abandon",
    "exponential_smoothing",
    "gk_bounds",
    "gk_similar",
    "identity",
    "load_engine",
    "make_stock_universe",
    "moving_average",
    "normal_form",
    "random_walks",
    "reverse",
    "save_engine",
    "scale",
    "shift",
    "time_warp",
    "warp_series",
]
