"""repro-lint: static certification of the project's kernel contracts.

The engine (:mod:`repro.analysis.engine`) parses each module once and
runs the registered contract rules (:mod:`repro.analysis.rules`,
REP001-REP006) over the AST; scoping data lives in
:mod:`repro.analysis.contracts`.  Run it as::

    python -m repro.analysis src benchmarks

Importing the rules module here is what populates the registry — the
engine is generic and knows nothing about the project's contracts.
"""

from __future__ import annotations

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.engine import (
    FileReport,
    LintEngine,
    Report,
    Rule,
    Violation,
    all_rules,
)

__all__ = [
    "FileReport",
    "LintEngine",
    "Report",
    "Rule",
    "Violation",
    "all_rules",
]
