"""``python -m repro.analysis <paths>`` — run the contract checker.

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage error
(unknown rule id, no such path).  ``--format json`` emits one machine-
readable report object; the default human format prints one
``path:line:col: REPnnn message`` line per violation, the shape editors
and CI annotations already understand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import LintEngine, all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check project contracts (REP001-REP006) statically.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to check (directories recurse)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="REPnnn[,REPnnn...]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (and not --list-rules)", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    selected = None
    if args.rules is not None:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        engine = LintEngine(rules=selected)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = engine.run(args.paths)

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for violation in report.violations:
            print(violation.render())
        count = len(report.violations)
        checked = len(report.files)
        status = "clean" if report.ok else f"{count} violation(s)"
        print(f"repro-lint: {checked} file(s) checked, {status}")
    return 0 if report.ok else 1
