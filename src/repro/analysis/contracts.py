"""Project contract scopes: which modules each rule applies to.

Six PRs of review-enforced invariants ("hot paths are vectorized",
"frozen kernels are immutable", "storage raises typed errors") live here
as data, so :mod:`repro.analysis` can check them mechanically.

A module is in a scope when its (posix-normalised) path ends with one of
the registered suffixes, **or** when the file declares the scope itself
with a marker comment near the top::

    # repro: module-contract(hot-path, kernel)

The marker exists so the rule fixtures under ``tests/analysis_fixtures``
(and any future out-of-tree kernel module) can opt into a contract
without being listed here.
"""

from __future__ import annotations

import re
from typing import Iterable

#: Scope names accepted by ``module-contract(...)`` markers.
SCOPES = ("hot-path", "backend", "kernel", "storage", "serial", "parallel")

#: REP001 — modules whose loops must be vectorized (reference modules,
#: e.g. ``rtree/search.py`` and ``dft/reference.py``, are deliberately
#: absent: scalar code is their whole point).
HOT_PATH_SUFFIXES: tuple[str, ...] = (
    "repro/rtree/kernel.py",
    "repro/core/ops.py",
    "repro/subseq/window.py",
    "repro/subseq/stindex.py",
)

#: REP003 — modules that must import the array API through
#: :mod:`repro.rtree.backend` (the ``xp`` seam).  The whole numeric
#: layer: the hot-path set plus geometry, bulk loading and the feature
#: spaces.
BACKEND_SUFFIXES: tuple[str, ...] = HOT_PATH_SUFFIXES + (
    "repro/rtree/geometry.py",
    "repro/rtree/bulk.py",
    "repro/rtree/parallel.py",
    "repro/core/features.py",
)

#: The one module allowed to import numpy for the numeric layer.
BACKEND_SHIM_SUFFIX = "repro/rtree/backend.py"

#: REP007 — the one module allowed to name threading primitives
#: (``threading`` / ``concurrent.futures`` / ``multiprocessing``).  All
#: concurrency lives behind this seam; everything else stays
#: schedule-free so the kernel's determinism arguments hold.
PARALLEL_SEAM_SUFFIX = "repro/rtree/parallel.py"

#: Package fragment REP007 covers: every engine module is serial by
#: default (fixtures opt in with a ``serial`` marker instead).
SERIAL_PACKAGE_FRAGMENT = "repro/"

#: REP008 — the functions allowed to interact with pool futures directly
#: (``Future.result()``, blocking waits).  Everything else in the
#: parallel seam must route through them, so worker failures always meet
#: the supervisor's watchdog/retry/circuit-breaker machinery instead of
#: surfacing as bare result loops or silently dropped futures.
SUPERVISOR_FUNCTIONS: frozenset[str] = frozenset({"KernelExecutor._run"})

#: REP004 + REP005 (frontier half) — kernel modules: no recursion, and
#: every frontier loop checks its ResourceBudget.
KERNEL_SUFFIXES: tuple[str, ...] = BACKEND_SUFFIXES

#: REP006 — storage/persistence paths: no bare or swallowed broad
#: excepts (PR-6 typed-error discipline).
STORAGE_SUFFIXES: tuple[str, ...] = (
    "repro/persist.py",
    "repro/storage/pager.py",
    "repro/storage/buffer.py",
    "repro/storage/manifest.py",
    "repro/storage/serialization.py",
    "repro/storage/faults.py",
)

#: REP005 (validation half) — public query entry points that must
#: validate NaN/inf before touching the index.  Keyed by module suffix;
#: values are dotted qualnames (``Class.method`` or plain functions).
#: ``compile_spec`` is the engine's single admission seam (every
#: range/knn/join entry compiles through it); the ST-index methods are
#: their own entries because they can be called without a plan.
QUERY_ENTRY_POINTS: dict[str, frozenset[str]] = {
    "repro/core/plan.py": frozenset(
        {"compile_spec", "compile_subseq_spec"}
    ),
    "repro/subseq/stindex.py": frozenset(
        {
            "STIndex.range_query",
            "STIndex.range_query_batch",
            "STIndex.knn_query",
            "STIndex.knn_query_batch",
            "STIndex.candidate_offsets",
            "STIndex.choose_probe",
        }
    ),
}

#: Calls that count as NaN/inf validation for REP005.  ``isfinite``
#: covers direct ``xp.isfinite`` checks; the underscore names are the
#: shared validation helpers.
VALIDATOR_NAMES: frozenset[str] = frozenset(
    {"require_finite", "isfinite", "_check_query", "_as_queries"}
)

#: REP002 — classes whose instances are immutable after construction.
FROZEN_CLASSES: frozenset[str] = frozenset({"FrozenRTree"})

#: Methods of a frozen class allowed to assign attributes (construction).
FROZEN_CONSTRUCTORS: frozenset[str] = frozenset(
    {"__init__", "__new__", "freeze", "from_arrays"}
)

#: Calls whose result is a frozen instance (for flow-insensitive
#: tracking of local names bound to frozen objects).
FROZEN_PRODUCERS: frozenset[str] = frozenset(
    {"freeze", "from_arrays", "frozen_kernel", "cached_kernel"}
)

#: REP005 — names that mark a ``while`` loop as a traversal frontier.
FRONTIER_NAMES: frozenset[str] = frozenset(
    {"frontier", "fnodes", "fquery", "active", "heap", "heaps"}
)

#: The linter's own package.  Exempt from checking: its docstrings and
#: diagnostic messages are full of pragma/marker examples that would
#: read as malformed suppressions.
ANALYSIS_PACKAGE_FRAGMENT = "repro/analysis/"

_MARKER_RE = re.compile(
    r"#\s*repro:\s*module-contract\(([a-z\-,\s]+)\)"
)
#: Marker registering the *next* ``def`` as a query entry point
#: (fixture support for REP005's validation half).
_ENTRY_MARKER_RE = re.compile(r"#\s*repro:\s*query-entry\b")

#: Marker registering the *next* ``def`` as a pool supervisor (fixture
#: support for REP008; the in-tree supervisor is listed in
#: :data:`SUPERVISOR_FUNCTIONS`).
_SUPERVISOR_MARKER_RE = re.compile(r"#\s*repro:\s*supervisor\b")


def _norm(path: str) -> str:
    return path.replace("\\", "/")


def is_linter_source(path: str) -> bool:
    """True for the linter's own modules (never self-checked)."""
    return ANALYSIS_PACKAGE_FRAGMENT in _norm(path)


def declared_scopes(source: str) -> frozenset[str]:
    """Scopes declared by ``module-contract`` markers in the source."""
    found: set[str] = set()
    for match in _MARKER_RE.finditer(source):
        for raw in match.group(1).split(","):
            name = raw.strip()
            if name in SCOPES:
                found.add(name)
    return frozenset(found)


def _in_scope(
    path: str, source: str, suffixes: Iterable[str], scope: str
) -> bool:
    norm = _norm(path)
    if any(norm.endswith(suffix) for suffix in suffixes):
        return True
    return scope in declared_scopes(source)


def is_hot_path(path: str, source: str) -> bool:
    """REP001 scope: vectorization-mandatory modules."""
    return _in_scope(path, source, HOT_PATH_SUFFIXES, "hot-path")


def is_backend_scoped(path: str, source: str) -> bool:
    """REP003 scope: modules that must use the ``xp`` seam."""
    if _norm(path).endswith(BACKEND_SHIM_SUFFIX):
        return False
    return _in_scope(path, source, BACKEND_SUFFIXES, "backend")


def is_kernel(path: str, source: str) -> bool:
    """REP004/REP005 scope: kernel modules."""
    return _in_scope(path, source, KERNEL_SUFFIXES, "kernel")


def is_parallel_seam(path: str) -> bool:
    """True for the one module allowed to import threading machinery."""
    return _norm(path).endswith(PARALLEL_SEAM_SUFFIX)


def is_parallel_scoped(path: str, source: str) -> bool:
    """REP008 scope: modules whose pool interactions must be supervised.

    The parallel seam itself, plus any module (the rule fixtures) opting
    in with a ``# repro: module-contract(parallel)`` marker.
    """
    return is_parallel_seam(path) or "parallel" in declared_scopes(source)


def is_serial_scoped(path: str, source: str) -> bool:
    """REP007 scope: modules that must stay free of threading primitives.

    Everything in the engine package except the parallel seam itself;
    out-of-tree modules (and the rule fixtures) opt in with a
    ``# repro: module-contract(serial)`` marker.
    """
    if is_parallel_seam(path):
        return False
    norm = _norm(path)
    if SERIAL_PACKAGE_FRAGMENT in norm and not is_linter_source(path):
        return True
    return "serial" in declared_scopes(source)


def is_storage(path: str, source: str) -> bool:
    """REP006 scope: storage / persistence modules."""
    return _in_scope(path, source, STORAGE_SUFFIXES, "storage")


def entry_points_for(path: str, source: str) -> frozenset[str]:
    """Qualnames in this module that must validate their queries.

    The registered set for known modules, plus any function whose
    ``def`` is immediately preceded by a ``# repro: query-entry`` marker
    (resolved by line in :mod:`repro.analysis.rules`, so this returns
    only the registry half).
    """
    norm = _norm(path)
    for suffix, names in QUERY_ENTRY_POINTS.items():
        if norm.endswith(suffix):
            return names
    return frozenset()


def entry_marker_lines(source: str) -> frozenset[int]:
    """1-based line numbers carrying a ``query-entry`` marker."""
    out: set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _ENTRY_MARKER_RE.search(line):
            out.add(lineno)
    return frozenset(out)


def supervisor_marker_lines(source: str) -> frozenset[int]:
    """1-based line numbers carrying a ``supervisor`` marker (REP008)."""
    out: set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _SUPERVISOR_MARKER_RE.search(line):
            out.add(lineno)
    return frozenset(out)
