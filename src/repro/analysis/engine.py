"""The lint engine: files → AST → rules → violations, minus pragmas.

One :class:`LintEngine` run parses each file once, hands the tree to
every registered rule (:mod:`repro.analysis.rules`), and filters the
raw findings through the pragma layer:

* ``# repro: allow(REP001): <reason>`` on the flagged line or the line
  directly above suppresses that rule there;
* the same comment on a ``def``/``class`` line (or its decorators)
  suppresses the rule for the whole body — how scalar *reference*
  implementations living inside hot-path modules are exempted;
* a pragma without a reason, or naming an unknown rule, is itself a
  violation (``REP000``) — suppressions must say why.

Rules register themselves via :func:`register`; the registry is what
the CLI's ``--list-rules`` and the README's rule table are generated
from.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

#: Rule id of pragma-layer problems (malformed / unknown suppressions).
META_RULE = "REP000"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[A-Za-z0-9_,\s]+?)\s*\)"
    r"(?::\s*(?P<reason>\S.*))?$"
)

_RULE_ID_RE = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Violation:
    """One contract violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A named contract with a checker callable.

    The checker receives ``(tree, source, path)`` and yields raw
    violations; scoping (which modules the contract covers) lives inside
    the checker via :mod:`repro.analysis.contracts`.
    """

    rule_id: str
    summary: str
    check: Callable[[ast.Module, str, str], Iterable[Violation]]


_REGISTRY: dict[str, Rule] = {}


def register(rule_id: str, summary: str) -> Callable[
    [Callable[[ast.Module, str, str], Iterable[Violation]]],
    Callable[[ast.Module, str, str], Iterable[Violation]],
]:
    """Decorator registering a checker under ``rule_id``."""

    def wrap(
        fn: Callable[[ast.Module, str, str], Iterable[Violation]]
    ) -> Callable[[ast.Module, str, str], Iterable[Violation]]:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = Rule(rule_id, summary, fn)
        return fn

    return wrap


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


@dataclass(frozen=True)
class Pragma:
    """A parsed ``# repro: allow(...)`` suppression."""

    line: int
    rules: frozenset[str]
    reason: str


@dataclass
class PragmaIndex:
    """Suppression lookup for one file.

    ``spans`` maps a pragma-carrying line to the ``(start, end)`` line
    range it governs: the line itself and the one below for statement
    pragmas, the whole body for pragmas sitting on a ``def``/``class``
    or one of its decorators.
    """

    pragmas: list[Pragma] = field(default_factory=list)
    spans: dict[int, tuple[int, int]] = field(default_factory=dict)
    problems: list[Violation] = field(default_factory=list)

    def suppressed(self, rule_id: str, line: int) -> bool:
        for pragma in self.pragmas:
            if rule_id not in pragma.rules:
                continue
            start, end = self.spans.get(
                pragma.line, (pragma.line, pragma.line + 1)
            )
            if start <= line <= end:
                return True
        return False


def _def_spans(tree: ast.Module) -> dict[int, tuple[int, int]]:
    """Map every def/class line (and decorator line) to the body span."""
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            end = node.end_lineno or node.lineno
            anchors = [node.lineno]
            anchors.extend(d.lineno for d in node.decorator_list)
            for anchor in anchors:
                spans[anchor] = (anchor, end)
    return spans


def parse_pragmas(tree: ast.Module, source: str, path: str) -> PragmaIndex:
    """Collect suppressions (and pragma-layer violations) for one file."""
    index = PragmaIndex()
    spans = _def_spans(tree)
    known = set(_REGISTRY) | {META_RULE}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            if "repro: allow" in text:
                index.problems.append(
                    Violation(
                        META_RULE, path, lineno, 0,
                        "malformed suppression pragma; expected "
                        "'# repro: allow(REPnnn): <reason>'",
                    )
                )
            continue
        reason = (match.group("reason") or "").strip()
        rules = frozenset(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        ok = True
        if not reason:
            index.problems.append(
                Violation(
                    META_RULE, path, lineno, 0,
                    "suppression pragma without a reason; every "
                    "'# repro: allow(...)' must say why",
                )
            )
            ok = False
        bad = sorted(r for r in rules if not _RULE_ID_RE.match(r) or r not in known)
        if bad:
            index.problems.append(
                Violation(
                    META_RULE, path, lineno, 0,
                    f"suppression pragma names unknown rule(s): {', '.join(bad)}",
                )
            )
            ok = False
        if ok:
            index.pragmas.append(Pragma(lineno, rules, reason))
            # Statement scope by default; def/class scope when anchored
            # on a definition (or decorator) line.
            if lineno in spans:
                index.spans[lineno] = spans[lineno]
            else:
                index.spans[lineno] = (lineno, lineno + 1)
    return index


@dataclass
class FileReport:
    """Result of checking one file."""

    path: str
    violations: list[Violation]
    parse_error: Optional[str] = None


@dataclass
class Report:
    """Result of one engine run over a set of paths."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def violations(self) -> list[Violation]:
        out: list[Violation] = []
        for f in self.files:
            out.extend(f.violations)
        out.sort(key=lambda v: (v.path, v.line, v.rule))
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        return {
            "files_checked": len(self.files),
            "violation_count": len(self.violations),
            "ok": self.ok,
            "rules": {r.rule_id: r.summary for r in all_rules()},
            "violations": [v.as_dict() for v in self.violations],
        }


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` file paths."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if c not in seen:
                seen.add(c)
                yield c


class LintEngine:
    """Run registered rules over files, applying pragma suppressions."""

    def __init__(self, rules: Optional[Iterable[str]] = None) -> None:
        selected = set(rules) if rules is not None else None
        self.rules = [
            r for r in all_rules() if selected is None or r.rule_id in selected
        ]
        if selected is not None:
            missing = selected - {r.rule_id for r in self.rules}
            if missing:
                raise ValueError(
                    f"unknown rule id(s): {', '.join(sorted(missing))}"
                )

    def check_source(self, source: str, path: str) -> FileReport:
        """Check one in-memory module (the unit the fixture tests use)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return FileReport(
                path,
                [
                    Violation(
                        META_RULE, path, exc.lineno or 0, exc.offset or 0,
                        f"file does not parse: {exc.msg}",
                    )
                ],
                parse_error=str(exc),
            )
        pragmas = parse_pragmas(tree, source, path)
        found: list[Violation] = list(pragmas.problems)
        for rule in self.rules:
            for violation in rule.check(tree, source, path):
                if not pragmas.suppressed(violation.rule, violation.line):
                    found.append(violation)
        found.sort(key=lambda v: (v.line, v.rule))
        return FileReport(path, found)

    def check_file(self, path: Path) -> FileReport:
        source = path.read_text(encoding="utf-8")
        return self.check_source(source, str(path))

    def run(self, paths: Iterable[str]) -> Report:
        # The linter never checks its own package: rule messages and
        # docstring examples would read as malformed pragmas.
        from repro.analysis import contracts

        report = Report()
        for file_path in iter_python_files(paths):
            if contracts.is_linter_source(str(file_path)):
                continue
            report.files.append(self.check_file(file_path))
        return report
