"""The project's contract rules, REP001–REP008.

Each rule is a function from ``(tree, source, path)`` to violations,
registered with the engine; module scoping comes from
:mod:`repro.analysis.contracts`.  The rules are deliberately
*syntactic* — they check what can be certified from the AST alone, and
anything legitimately outside the contract carries an inline
``# repro: allow(REPnnn): <reason>`` pragma, so exceptions are explicit
and reviewed rather than social.

========  ==============================================================
REP001    no scalar Python loops over array rows in hot-path modules
REP002    no mutation of frozen kernels outside construction
REP003    hot-path modules import the array API only via
          ``repro.rtree.backend`` (the ``xp`` seam)
REP004    no recursion in kernel modules (frontier loops are iterative)
REP005    kernel frontier loops check their ResourceBudget; public query
          entries validate NaN/inf
REP006    no bare/swallowed broad ``except`` in storage paths
REP007    threading primitives (``threading`` / ``concurrent.futures`` /
          ``multiprocessing``) live only behind the parallel seam
          (``rtree/parallel.py``)
REP008    pool interactions in the parallel seam route through the
          execution supervisor — no bare ``Future.result()`` outside
          it, no fire-and-forget ``submit`` whose exceptions are lost
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis import contracts
from repro.analysis.engine import Violation, register

AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------


def _call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``a.b.f(...)`` -> ``f``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _functions(tree: ast.Module) -> Iterator[tuple[str, AnyFunc]]:
    """All function defs with dotted qualnames (``Class.method``)."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, AnyFunc]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


# ----------------------------------------------------------------------
# REP001 — no scalar loops over array rows on hot paths
# ----------------------------------------------------------------------
_ROWWISE_CALLS = frozenset({"len", "enumerate", "zip"})
_ROWWISE_ATTRS = frozenset({"shape", "flat"})
_ROWWISE_METHODS = frozenset({"tolist", "ravel", "flatten", "item"})


def _rowwise_trigger(iter_expr: ast.expr) -> Optional[str]:
    """Why this iterable looks like row-at-a-time array iteration."""
    for node in ast.walk(iter_expr):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if isinstance(node.func, ast.Name) and name in _ROWWISE_CALLS:
                return f"iterates {name}(...)"
            if isinstance(node.func, ast.Attribute) and name in _ROWWISE_METHODS:
                return f"iterates .{name}()"
        elif isinstance(node, ast.Attribute) and node.attr in _ROWWISE_ATTRS:
            return f"iteration count comes from .{node.attr}"
    return None


@register(
    "REP001",
    "no scalar Python loops over array rows in hot-path modules "
    "(vectorize, or pragma a reviewed exception)",
)
def rep001_no_scalar_loops(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    if not contracts.is_hot_path(path, source):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.For):
            continue
        trigger = _rowwise_trigger(node.iter)
        if trigger is None:
            continue
        yield Violation(
            "REP001", path, node.lineno, node.col_offset,
            f"scalar for-loop over array rows in a hot-path module "
            f"({trigger}); vectorize it or justify with "
            f"'# repro: allow(REP001): <reason>'",
        )


# ----------------------------------------------------------------------
# REP002 — frozen kernels are immutable outside construction
# ----------------------------------------------------------------------
def _is_store_on(
    stmt: ast.stmt, owner_names: frozenset[str]
) -> Optional[tuple[int, int, str]]:
    """Location and description of an attribute/subscript store on any
    of ``owner_names``, or ``None``."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        base = target
        # x.attr[...] = ... / x.attr[...][...] = ...
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            if base.value.id in owner_names:
                return (
                    target.lineno,
                    target.col_offset,
                    f"{base.value.id}.{base.attr}",
                )
    return None


def _frozen_locals(fn: AnyFunc) -> frozenset[str]:
    """Local names statically known to hold a frozen instance."""
    names: set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        if arg.annotation is None:
            continue
        rendered = ast.unparse(arg.annotation)
        if any(cls in rendered for cls in contracts.FROZEN_CLASSES):
            names.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _call_name(node.value)
            if callee in contracts.FROZEN_PRODUCERS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return frozenset(names)


@register(
    "REP002",
    "no in-place mutation of frozen kernels (FrozenRTree) outside "
    "construction",
)
def rep002_frozen_immutability(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    # Half 1: inside a frozen class, only constructors assign to self.
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name not in contracts.FROZEN_CLASSES:
            continue
        for qualname, fn in _functions(ast.Module(body=node.body, type_ignores=[])):
            if fn.name in contracts.FROZEN_CONSTRUCTORS:
                continue
            for stmt in ast.walk(fn):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                hit = _is_store_on(stmt, frozenset({"self"}))
                if hit is not None:
                    line, col, desc = hit
                    yield Violation(
                        "REP002", path, line, col,
                        f"assignment to {desc} in {node.name}.{fn.name}: "
                        f"frozen instances are immutable outside "
                        f"construction ({sorted(contracts.FROZEN_CONSTRUCTORS)})",
                    )
    # Half 2: anywhere, stores through names bound to frozen instances.
    for qualname, fn in _functions(tree):
        owners = _frozen_locals(fn)
        if not owners:
            continue
        enclosing_class = qualname.rsplit(".", 1)[0] if "." in qualname else ""
        if (
            enclosing_class in contracts.FROZEN_CLASSES
            and fn.name in contracts.FROZEN_CONSTRUCTORS
        ):
            continue
        for stmt in ast.walk(fn):
            if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            hit = _is_store_on(stmt, owners)
            if hit is not None:
                line, col, desc = hit
                yield Violation(
                    "REP002", path, line, col,
                    f"store into {desc}, which holds a frozen kernel; "
                    f"frozen arrays must never be mutated after freeze()",
                )


# ----------------------------------------------------------------------
# REP003 — the array API comes from the backend shim
# ----------------------------------------------------------------------
@register(
    "REP003",
    "hot-path modules import the array API only via repro.rtree.backend "
    "(xp), never numpy directly",
)
def rep003_backend_shim(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    if not contracts.is_backend_scoped(path, source):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "numpy":
                    yield Violation(
                        "REP003", path, node.lineno, node.col_offset,
                        f"direct 'import {alias.name}' in a backend-scoped "
                        f"module; use 'from repro.rtree.backend import xp' "
                        f"so the kernel stays array-backend agnostic",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "numpy" or module.startswith("numpy."):
                yield Violation(
                    "REP003", path, node.lineno, node.col_offset,
                    f"direct 'from {module} import ...' in a backend-scoped "
                    f"module; use 'from repro.rtree.backend import xp'",
                )


# ----------------------------------------------------------------------
# REP004 — kernel modules are iterative, never recursive
# ----------------------------------------------------------------------
def _call_edges(
    qualname: str, fn: AnyFunc, module_funcs: frozenset[str]
) -> Iterator[str]:
    """Resolvable intra-module callees of ``fn`` (by qualname)."""
    enclosing_class = qualname.rsplit(".", 1)[0] if "." in qualname else ""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in module_funcs:
            yield func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and enclosing_class
            and f"{enclosing_class}.{func.attr}" in module_funcs
        ):
            yield f"{enclosing_class}.{func.attr}"


@register(
    "REP004",
    "no recursion (direct or mutual) in kernel modules — traversals are "
    "iterative frontier loops",
)
def rep004_no_recursion(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    if not contracts.is_kernel(path, source):
        return
    funcs = dict(_functions(tree))
    names = frozenset(funcs)
    edges = {
        qualname: sorted(set(_call_edges(qualname, fn, names)))
        for qualname, fn in funcs.items()
    }
    # Iterative three-color DFS per root: report each function that can
    # reach itself through intra-module calls.
    for root in sorted(edges):
        stack = list(edges[root])
        seen: set[str] = set()
        recursive = False
        while stack:
            current = stack.pop()
            if current == root:
                recursive = True
                break
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, []))
        if recursive:
            fn = funcs[root]
            yield Violation(
                "REP004", path, fn.lineno, fn.col_offset,
                f"{root} is recursive (reaches itself through "
                f"intra-module calls); kernel traversals must be "
                f"iterative frontier loops",
            )


# ----------------------------------------------------------------------
# REP005 — budgets in frontier loops, finite queries at the door
# ----------------------------------------------------------------------
_BUDGET_METHODS = frozenset(
    {"check", "exceeded", "charge_candidates", "consume", "start"}
)


def _is_frontier_condition(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name):
            if node.id in contracts.FRONTIER_NAMES or node.id.endswith(
                "frontier"
            ):
                return True
    return False


def _checks_budget(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _BUDGET_METHODS:
                continue
            base = node.value
            if isinstance(base, ast.Name) and "budget" in base.id:
                return True
            if isinstance(base, ast.Attribute) and "budget" in base.attr:
                return True
    return False


def _validates_finite(fn: AnyFunc) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in contracts.VALIDATOR_NAMES:
                return True
    return False


@register(
    "REP005",
    "kernel frontier loops check their ResourceBudget; public query "
    "entries validate NaN/inf",
)
def rep005_budget_and_validation(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    # Half 1: frontier while-loops in kernel modules carry budget checks.
    if contracts.is_kernel(path, source):
        for node in ast.walk(tree):
            if not isinstance(node, ast.While):
                continue
            if not _is_frontier_condition(node.test):
                continue
            if not _checks_budget(node.body):
                yield Violation(
                    "REP005", path, node.lineno, node.col_offset,
                    "frontier loop without a ResourceBudget check; call "
                    "budget.check()/budget.exceeded() once per "
                    "round so deadlines and frontier caps hold inside "
                    "the tight loop",
                )
    # Half 2: registered public query entries validate their input.
    entry_names = contracts.entry_points_for(path, source)
    marker_lines = contracts.entry_marker_lines(source)
    for qualname, fn in _functions(tree):
        is_entry = qualname in entry_names or (fn.lineno - 1) in marker_lines
        if not is_entry:
            continue
        if not _validates_finite(fn):
            yield Violation(
                "REP005", path, fn.lineno, fn.col_offset,
                f"public query entry {qualname} never validates NaN/inf; "
                f"a NaN query silently empties probe rectangles — call "
                f"require_finite()/isfinite() before touching the index",
            )


# ----------------------------------------------------------------------
# REP006 — typed errors in storage paths
# ----------------------------------------------------------------------
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _exception_names(expr: ast.expr) -> Iterator[str]:
    nodes: list[ast.expr] = (
        list(expr.elts) if isinstance(expr, ast.Tuple) else [expr]
    )
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


@register(
    "REP006",
    "no bare or swallowed broad 'except' in storage/persist paths — "
    "wrap-and-raise typed errors only",
)
def rep006_typed_storage_errors(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    if not contracts.is_storage(path, source):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Violation(
                "REP006", path, node.lineno, node.col_offset,
                "bare 'except:' in a storage path; catch a typed error, "
                "or wrap-and-raise a PersistError/CorruptIndexError",
            )
            continue
        broad = sorted(
            set(_exception_names(node.type)) & _BROAD_EXCEPTIONS
        )
        if not broad:
            continue
        # The PR-6 discipline allows catching Exception only to *wrap*
        # it: the handler must end by raising (a typed error).
        if node.body and isinstance(node.body[-1], ast.Raise):
            continue
        yield Violation(
            "REP006", path, node.lineno, node.col_offset,
            f"broad 'except {', '.join(broad)}' swallows errors in a "
            f"storage path; either catch a typed error or end the "
            f"handler by raising one",
        )


# ----------------------------------------------------------------------
# REP007 — concurrency lives only behind the parallel seam
# ----------------------------------------------------------------------
#: Top-level modules whose import marks a file as threading-aware.
_THREADING_MODULES = frozenset(
    {"threading", "_thread", "concurrent", "multiprocessing"}
)


@register(
    "REP007",
    "threading primitives (threading/concurrent.futures/multiprocessing) "
    "only behind the parallel seam (rtree/parallel.py)",
)
def rep007_parallel_seam(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    if not contracts.is_serial_scoped(path, source):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _THREADING_MODULES:
                    yield Violation(
                        "REP007", path, node.lineno, node.col_offset,
                        f"'import {alias.name}' outside the parallel seam; "
                        f"route concurrency through "
                        f"repro.rtree.parallel.KernelExecutor (or justify "
                        f"with '# repro: allow(REP007): <reason>')",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            root = module.split(".")[0]
            if root in _THREADING_MODULES:
                yield Violation(
                    "REP007", path, node.lineno, node.col_offset,
                    f"'from {module} import ...' outside the parallel seam; "
                    f"route concurrency through "
                    f"repro.rtree.parallel.KernelExecutor (or justify "
                    f"with '# repro: allow(REP007): <reason>')",
                )


# ----------------------------------------------------------------------
# REP008 — pool interactions route through the execution supervisor
# ----------------------------------------------------------------------
def _rep008_check(
    node: ast.AST, supervised: bool, path: str, marker_lines: frozenset[int]
) -> Iterator[Violation]:
    """Recursive body check; supervision is inherited by nested defs."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_supervised = supervised or (child.lineno - 1) in marker_lines
            yield from _rep008_check(
                child, child_supervised, path, marker_lines
            )
            continue
        if (
            isinstance(child, ast.Expr)
            and isinstance(child.value, ast.Call)
            and isinstance(child.value.func, ast.Attribute)
            and child.value.func.attr == "submit"
        ):
            yield Violation(
                "REP008", path, child.lineno, child.col_offset,
                "fire-and-forget pool submit: the Future (and any worker "
                "exception it carries) is dropped on the floor; keep the "
                "future and settle it through the supervisor "
                "(KernelExecutor._run)",
            )
        elif (
            not supervised
            and isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "result"
        ):
            yield Violation(
                "REP008", path, child.lineno, child.col_offset,
                "bare Future.result() outside the execution supervisor; "
                "route pool waits through KernelExecutor._run so worker "
                "failures meet the watchdog/retry/circuit-breaker "
                "machinery (or mark a reviewed supervisor with "
                "'# repro: supervisor')",
            )
        yield from _rep008_check(child, supervised, path, marker_lines)


@register(
    "REP008",
    "pool interactions in the parallel seam route through the execution "
    "supervisor — no bare Future.result(), no fire-and-forget submits",
)
def rep008_supervised_pool(
    tree: ast.Module, source: str, path: str
) -> Iterator[Violation]:
    if not contracts.is_parallel_scoped(path, source):
        return
    marker_lines = contracts.supervisor_marker_lines(source)

    def walk_functions(
        node: ast.AST, prefix: str
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                supervised = (
                    qualname in contracts.SUPERVISOR_FUNCTIONS
                    or (child.lineno - 1) in marker_lines
                )
                yield from _rep008_check(
                    child, supervised, path, marker_lines
                )
            elif isinstance(child, ast.ClassDef):
                yield from walk_functions(child, f"{prefix}{child.name}.")
            else:
                # Module-level statements are never supervised
                # (_rep008_check recurses, so no second walk here).
                yield from _rep008_check(
                    child, False, path, marker_lines
                )

    yield from walk_functions(tree, "")
