"""Command-line interface: generate data, build an index, run queries.

Usage (``python -m repro.cli <command> ...``):

* ``generate`` — write a relation of synthetic series to a CSV file::

      python -m repro.cli generate --kind stocks --count 200 --length 128 out.csv

* ``query`` — load a CSV relation and run one query-language statement
  against it (the relation is bound as ``r``, and every row ``i`` is
  bound as sequence ``s<i>``)::

      python -m repro.cli query data.csv "RANGE s0 IN r EPS 2.0 USING mavg(20)"
      python -m repro.cli query data.csv "EXPLAIN RANGE s0 IN r EPS 9 PLAN auto"
      python -m repro.cli query data.csv "EXPLAIN ANALYZE KNN s0 IN r K 5"
      python -m repro.cli query data.csv "KNN SUBSEQ s0 IN r K 5 WINDOW 32"
      python -m repro.cli query data.csv \
          "EXPLAIN RANGE SUBSEQ s0 IN r EPS 2 WINDOW 16 PROBE auto"
      python -m repro.cli query data.csv "RANGE s0 IN r EPS 2 BUDGET 100"
      python -m repro.cli query data.csv "HEALTH r"

  Statements run through the engine's plan API, so ``EXPLAIN`` prints the
  compiled plan (access path, selectivity estimate, operator tree) as
  JSON, ``EXPLAIN ANALYZE`` additionally executes it and reports the
  per-operator IO deltas plus the columnar kernel's frontier stats
  (``nodes_expanded``, ``entries_scanned``, ``frontier_peak``), and
  ``PLAN auto|index|scan`` hints the access path.  The ``SUBSEQ``
  variants answer subsequence queries over an ST-index of the relation's
  rows; ``EXPLAIN`` on a ``RANGE SUBSEQ`` shows the planner's
  multipiece-vs-prefix probe choice, and subsequence rows print as
  ``series,offset,distance``.  ``BUDGET ms`` caps a query's wall-clock
  time (range-style queries report a query error past the deadline,
  k-NN returns the exact partial results), and ``HEALTH r`` prints the
  engine's component health report — relation, node index, columnar
  kernel, persistence — as JSON.  EXPLAIN output carries
  ``degraded_from`` (the access path the planner had to abandon, if
  any) and ``budget`` fields.

* ``info`` — summarise a CSV relation (count, length, index geometry).

The CSV format is one series per row, comma-separated floats, optional
``# name`` comment per line ignored.  This is deliberately minimal glue —
all real functionality lives in the library; the CLI exists so the
reproduction can be poked at without writing Python.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

import numpy as np

from repro.core.language import QueryError, QuerySession
from repro.data import SequenceRelation, make_stock_universe
from repro.data.synthetic import random_walks
from repro.subseq.stindex import SubseqMatch


def load_relation(path: str) -> SequenceRelation:
    """Read a one-series-per-row CSV file into a relation."""
    rows: list[np.ndarray] = []
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                rows.append(np.array([float(v) for v in line.split(",")]))
            except ValueError as exc:
                raise SystemExit(f"{path}:{line_no}: bad row: {exc}") from None
    if not rows:
        raise SystemExit(f"{path}: no series found")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise SystemExit(f"{path}: inconsistent series lengths {sorted(lengths)}")
    return SequenceRelation.from_matrix(np.stack(rows))


def save_relation(relation: SequenceRelation, path: str) -> None:
    """Write a relation in the CLI's CSV format."""
    with open(path, "w") as f:
        for rid, series in relation:
            f.write(",".join(f"{v:.6g}" for v in series))
            f.write(f"  # {relation.name(rid)}\n")


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "stocks":
        rel = make_stock_universe(count=args.count, length=args.length, seed=args.seed)
    else:
        rel = SequenceRelation.from_matrix(
            random_walks(args.count, args.length, seed=args.seed)
        )
    save_relation(rel, args.output)
    print(f"wrote {len(rel)} series of length {rel.length} to {args.output}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    rel = load_relation(args.input)
    from repro.core.engine import SimilarityEngine

    engine = SimilarityEngine(rel)
    print(f"relation: {len(rel)} series of length {rel.length}")
    print(f"feature space: {type(engine.space).__name__}, dim {engine.space.dim}")
    print(
        f"index: {type(engine.tree).__name__}, height {engine.tree.height}, "
        f"{engine.tree.node_count()} nodes, fanout <= {engine.tree.max_entries}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    rel = load_relation(args.input)
    session = QuerySession()
    session.bind_relation("r", rel)
    for rid in range(len(rel)):
        session.bind_sequence(f"s{rid}", rel.get(rid))
    try:
        result = session.execute(args.statement)
    except QueryError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 1
    if isinstance(result, dict):  # EXPLAIN output
        print(json.dumps(result, indent=2, sort_keys=True))
    elif isinstance(result, float):
        print(f"{result:.6g}")
    elif result and isinstance(result[0], SubseqMatch):
        for m in result[: args.limit]:
            print(f"{m.series_id},{m.offset},{m.distance:.6g}")
        if len(result) > args.limit:
            print(f"... {len(result) - args.limit} more", file=sys.stderr)
    elif result and len(result[0]) == 3:
        for i, j, d in result[: args.limit]:
            print(f"{i},{j},{d:.6g}")
        if len(result) > args.limit:
            print(f"... {len(result) - args.limit} more", file=sys.stderr)
    else:
        for rid, d in result[: args.limit]:
            print(f"{rid},{d:.6g}")
        if len(result) > args.limit:
            print(f"... {len(result) - args.limit} more", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity queries for time series (Rafiei & Mendelzon, SIGMOD 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic relation CSV")
    gen.add_argument("output", help="output CSV path")
    gen.add_argument("--kind", choices=["walks", "stocks"], default="walks")
    gen.add_argument("--count", type=int, default=1000)
    gen.add_argument("--length", type=int, default=128)
    gen.add_argument("--seed", type=int, default=1997)
    gen.set_defaults(func=cmd_generate)

    info = sub.add_parser("info", help="summarise a relation CSV")
    info.add_argument("input", help="input CSV path")
    info.set_defaults(func=cmd_info)

    qry = sub.add_parser("query", help="run one query-language statement")
    qry.add_argument("input", help="input CSV path")
    qry.add_argument("statement", help='e.g. "RANGE s0 IN r EPS 2 USING mavg(20)"')
    qry.add_argument("--limit", type=int, default=20, help="max rows printed")
    qry.set_defaults(func=cmd_query)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
