"""Core library: the paper's transformation framework and query engine.

Modules:

* :mod:`repro.core.transforms` — the transformation class ``T = (a, b)``
  over DFT spectra, safety checks (Theorems 1-3), and constructors for
  every transformation the paper formulates (identity, shift, scale,
  reverse, moving average, time warping).
* :mod:`repro.core.normal_form` — the Goldin-Kanellakis normal form.
* :mod:`repro.core.features` — the ``S_rect`` and ``S_pol`` feature spaces,
  search-rectangle construction (Fig. 7) and transformation-to-affine-map
  lowering.
* :mod:`repro.core.similarity` — distances, early-abandoning distance, and
  the cost-bounded transformation-closure dissimilarity of Eq. 10.
* :mod:`repro.core.queries` — Algorithm 2 (range), multi-step k-NN, and the
  four all-pairs strategies of Table 1.
* :mod:`repro.core.plan` — the unified query-plan API:
  :class:`~repro.core.plan.QuerySpec` compiles (through the Figure-12
  access-path selection of :mod:`repro.core.planner`) into an explainable
  :class:`~repro.core.plan.PhysicalPlan` over the operators of
  :mod:`repro.core.ops`.
* :mod:`repro.core.engine` — :class:`~repro.core.engine.SimilarityEngine`,
  the user-facing façade tying relation, feature space, index and plans
  together.
* :mod:`repro.core.language` — a small declarative query language in the
  spirit of Jagadish-Mendelzon-Milo (1995), whose similarity predicates
  compile onto the engine's plan API (including ``EXPLAIN`` and ``PLAN``
  hints).
"""

from repro.core.engine import SimilarityEngine
from repro.core.plan import PhysicalPlan, QuerySpec
from repro.core.planner import QueryPlanner, SelectivityEstimator
from repro.core.features import (
    FeatureSpace,
    NormalFormSpace,
    PlainDFTSpace,
    UnsafeTransformationError,
)
from repro.core.normal_form import denormalize, normal_form
from repro.core.similarity import (
    TransformationClosureDistance,
    euclidean,
    euclidean_early_abandon,
)
from repro.core.transforms import (
    Transformation,
    difference,
    exponential_smoothing,
    identity,
    moving_average,
    reverse,
    scale,
    shift,
    time_warp,
    warp_series,
)

__all__ = [
    "FeatureSpace",
    "NormalFormSpace",
    "PhysicalPlan",
    "PlainDFTSpace",
    "QueryPlanner",
    "QuerySpec",
    "SelectivityEstimator",
    "SimilarityEngine",
    "Transformation",
    "TransformationClosureDistance",
    "UnsafeTransformationError",
    "denormalize",
    "difference",
    "euclidean",
    "euclidean_early_abandon",
    "exponential_smoothing",
    "identity",
    "moving_average",
    "normal_form",
    "reverse",
    "scale",
    "shift",
    "time_warp",
    "warp_series",
]
