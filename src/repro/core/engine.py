"""The user-facing façade: relation + feature space + index + queries.

:class:`SimilarityEngine` wires the pieces of the reproduction together
exactly the way the paper's Section 5 describes its experimental system:

* every series of the relation is (optionally) normalised, its first ``k``
  DFT coefficients extracted, and the resulting feature point inserted
  into an R*-tree (the mean and standard deviation occupying the first two
  dimensions in the normal-form layout);
* similarity queries are answered through Algorithm 2 over a transformed
  view of that one index — no transformation ever builds a second index.

Every query flows through the unified plan API: :meth:`SimilarityEngine.plan`
compiles a :class:`~repro.core.plan.QuerySpec` into a tree of physical
operators (access-path selection included, per Figure 12), and the classic
``range_query``/``knn_query``/``all_pairs`` methods are thin builders over
it, kept with their original signatures and exact behaviour (they pin
``method="index"`` so existing callers see the same plans as before the
redesign; pass ``method="auto"`` or build a spec for planner routing).

The engine is deliberately small: all real work lives in
:mod:`repro.core.plan`, :mod:`repro.core.ops`, :mod:`repro.core.queries`,
:mod:`repro.core.features` and :mod:`repro.rtree`; this class only owns
the wiring, the record/spectra caches and the statistics counters.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core import queries as q
from repro.core.features import FeatureSpace, NormalFormSpace
from repro.core.health import ComponentHealth, HealthReport
from repro.core.plan import PhysicalPlan, QuerySpec, compile_spec
from repro.core.planner import SelectivityEstimator
from repro.core.transforms import Transformation
from repro.data.relation import SequenceRelation
from repro.rtree.base import RTreeBase
from repro.rtree.bulk import str_pack
from repro.rtree.kernel import FrozenRTree, frozen_kernel
from repro.rtree.node import MemoryNodeStore, PagedNodeStore
from repro.rtree.rstar import RStarTree
from repro.rtree.transformed import TransformedIndexView
from repro.storage.stats import IOStats

ArrayLike = Union[Sequence[float], np.ndarray]


def _as_executor(spec) -> "Optional[KernelExecutor]":
    """Coerce the ``executor=`` knob: instance, worker-count spec, or None."""
    from repro.rtree.parallel import KernelExecutor

    if spec is None or isinstance(spec, KernelExecutor):
        return spec
    return KernelExecutor(workers=spec)


class SimilarityEngine:
    """Index a relation of time sequences and answer similarity queries.

    Args:
        relation: the sequences to index.
        space: feature space; defaults to the paper's configuration — a
            polar-coordinate normal-form space retaining 2 coefficients
            (six index dimensions: mean, std, |X_1|, arg X_1, |X_2|,
            arg X_2).
        index_cls: R-tree variant (R*-tree by default, like the paper).
        paged: back the index with the paged storage engine so traversals
            count disk accesses; in-memory nodes otherwise.
        max_entries: node fanout.
        bulk_load: build the index by STR packing (fast) instead of
            one-by-one insertion (the paper's method; set ``False`` to
            replicate it).
        buffer_capacity: buffer-pool pages when ``paged``.
        executor: a :class:`repro.rtree.parallel.KernelExecutor` (or a
            worker-count spec — ``int``, ``"auto"``, ``0``) that shards
            fused kernel batches across threads.  ``None`` reads
            ``REPRO_KERNEL_THREADS`` lazily on first use; the default of
            ``1`` keeps every query on today's serial path.
    """

    def __init__(
        self,
        relation: SequenceRelation,
        space: Optional[FeatureSpace] = None,
        index_cls: type[RTreeBase] = RStarTree,
        paged: bool = False,
        max_entries: int = 32,
        bulk_load: bool = True,
        buffer_capacity: int = 128,
        executor=None,
    ) -> None:
        self.relation = relation
        self.space = (
            space
            if space is not None
            else NormalFormSpace(relation.length, k=2, coord="polar")
        )
        if self.space.n != relation.length:
            raise ValueError(
                f"space length {self.space.n} != relation length {relation.length}"
            )
        self.stats = IOStats()
        if paged:
            store = PagedNodeStore(
                self.space.dim, buffer_capacity=buffer_capacity, stats=self.stats
            )
        else:
            store = MemoryNodeStore(stats=self.stats)

        # Index points plus full spectra of the ground objects (normal
        # forms for the normal-form space — what post-processing verifies
        # against), from one shared batched pipeline; both come out as
        # (0, ...) for an empty relation.
        self.points, self.ground_spectra = self.space.extract_many_with_spectra(
            relation.matrix
        )

        if bulk_load and len(relation) > 0:
            self.tree = str_pack(
                self.points,
                store=store,
                max_entries=max_entries,
                tree_cls=index_cls,
            )
        else:
            self.tree = index_cls(self.space.dim, store=store, max_entries=max_entries)
            for rid in range(len(relation)):
                self.tree.insert_point(self.points[rid], rid)
        # Freeze the columnar kernel eagerly: queries route through it, and
        # freezing at build time keeps its one-off node reads out of
        # query-time statistics.  It refreezes lazily after any mutation.
        frozen_kernel(self.tree)
        self._estimator: Optional[SelectivityEstimator] = None
        self._executor = _as_executor(executor)

    # ------------------------------------------------------------------
    # the unified plan API
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> SelectivityEstimator:
        """The engine's default selectivity estimator (built lazily).

        ``getattr`` rather than a plain attribute read because persistence
        reassembles engines via ``__new__`` without running ``__init__``.
        """
        if getattr(self, "_estimator", None) is None:
            self._estimator = SelectivityEstimator(self.points)
        return self._estimator

    @property
    def executor(self) -> "KernelExecutor":
        """The engine's kernel executor (built lazily; never ``None``).

        Constructed on first use so ``REPRO_KERNEL_THREADS`` is read at
        query time rather than import time, and ``getattr`` because
        persistence reassembles engines via ``__new__`` without running
        ``__init__``.  With the default worker count of 1 the executor
        delegates straight to the serial kernel — same code path, same
        results.
        """
        from repro.rtree.parallel import KernelExecutor

        if getattr(self, "_executor", None) is None:
            self._executor = KernelExecutor()
        return self._executor

    @property
    def kernel(self) -> FrozenRTree:
        """The index's frozen columnar kernel (refrozen after mutations).

        This is the struct-of-arrays image the frontier engine traverses;
        ``EXPLAIN`` reports its per-operator ``nodes_expanded`` /
        ``entries_scanned`` / ``frontier_peak`` counters after a run.

        Raises:
            CorruptIndexError: the kernel is disabled because its
                persisted image failed validation (degraded engines
                answer queries through the reference path instead).
        """
        return frozen_kernel(self.tree)

    def health(self) -> HealthReport:
        """Trust state of the engine's components (see :mod:`repro.core.health`).

        A built engine is all-ok; a loaded one carries whatever the
        persistence layer's validation found — a failed index (queries
        degrade to the sequential scan), a failed kernel image (queries
        run the node-object reference path), or a legacy image with no
        manifest to verify.  The ``kernel_executor`` component reports
        the parallel layer's circuit breaker: ``degraded`` once the
        execution supervisor has tripped it and batches run serially
        (``executor.reset_breaker()`` restores sharding).  ``getattr``
        defaults throughout because persistence reassembles engines via
        ``__new__`` — and the executor is inspected without constructing
        it, so ``health()`` stays side-effect free.
        """
        index_failed = getattr(self, "_index_failed", None)
        kernel_disabled = getattr(self.tree, "_kernel_disabled", False)
        kernel_detail = getattr(self, "_kernel_detail", "")
        persist_status, persist_detail = getattr(
            self, "_persist_health", ("ok", "built in memory (not loaded)")
        )
        if index_failed:
            index = ComponentHealth("index", "failed", index_failed)
            kernel = ComponentHealth(
                "kernel", "failed",
                kernel_detail or "unavailable: the node index failed validation",
            )
        elif kernel_disabled:
            index = ComponentHealth("index", "ok", "node pages verified")
            kernel = ComponentHealth(
                "kernel", "degraded",
                kernel_detail
                or "columnar image failed validation; reference path in use",
            )
        else:
            index = ComponentHealth("index", "ok", "")
            kernel = ComponentHealth("kernel", "ok", "")
        executor = getattr(self, "_executor", None)
        if executor is None:
            kernel_executor = ComponentHealth(
                "kernel_executor", "ok", "not yet constructed (serial default)"
            )
        elif executor.tripped:
            kernel_executor = ComponentHealth(
                "kernel_executor", "degraded",
                f"circuit breaker open, batches run serially "
                f"({executor.breaker_reason}); reset_breaker() to restore "
                f"sharding",
            )
        else:
            kernel_executor = ComponentHealth(
                "kernel_executor", "ok",
                f"{executor.workers} worker(s), {executor.retries} supervised "
                f"retries",
            )
        return HealthReport(
            [
                ComponentHealth(
                    "relation", "ok", f"{len(self.relation)} records"
                ),
                index,
                kernel,
                kernel_executor,
                ComponentHealth("persistence", persist_status, persist_detail),
            ]
        )

    def plan(
        self, spec: QuerySpec, estimator: Optional[SelectivityEstimator] = None
    ) -> PhysicalPlan:
        """Compile a :class:`~repro.core.plan.QuerySpec` into a physical plan.

        The single seam every entry point shares: preprocessing, access-path
        selection (for ``method="auto"``) and operator construction happen
        here; ``.execute()`` runs the plan and ``.explain()`` describes it.

        Args:
            spec: the declarative query description.
            estimator: selectivity estimator override (the engine's default
                sampling estimator otherwise).
        """
        return compile_spec(self, spec, estimator=estimator)

    def explain(
        self, spec: QuerySpec, estimator: Optional[SelectivityEstimator] = None
    ) -> dict:
        """``EXPLAIN`` for a spec: compile only, describe the plan."""
        return self.plan(spec, estimator=estimator).explain()

    def subseq_index(
        self,
        window: int,
        k: int = 3,
        grouping: str = "adaptive",
        chunk: int = 16,
        max_entries: int = 32,
        build: str = "bulk",
        executor=None,
    ):
        """An ST-index over this engine's relation (every row a series).

        The subsequence companion of the whole-sequence index: the
        returned :class:`~repro.subseq.stindex.STIndex` answers
        ``subseq_range`` / ``subseq_knn`` specs through its own
        :meth:`~repro.subseq.stindex.STIndex.plan` — the same plan API,
        compiled against sub-trail MBRs instead of feature points.  A new
        index is built per call (the query language's
        :class:`~repro.core.language.QuerySession` caches per window).
        """
        from repro.subseq.stindex import STIndex

        idx = STIndex(
            window, k=k, grouping=grouping, chunk=chunk,
            max_entries=max_entries, build=build,
            executor=executor if executor is not None else self.executor,
        )
        idx.add_series_many(self.relation.matrix)
        return idx

    # ------------------------------------------------------------------
    # object-level helpers
    # ------------------------------------------------------------------
    def query_spectrum(self, series: ArrayLike) -> np.ndarray:
        """Full ground spectrum of an ad-hoc query series."""
        return self.space.series_spectrum(np.asarray(series, dtype=np.float64))

    def query_point(self, series: ArrayLike) -> np.ndarray:
        """Feature point of an ad-hoc query series."""
        return self.space.extract(np.asarray(series, dtype=np.float64))

    def view(self, transformation: Optional[Transformation] = None) -> TransformedIndexView:
        """Algorithm 1's transformed view of the engine's index."""
        return q._make_view(self.tree, self.space, transformation)

    def distance(
        self,
        record_id: int,
        series: ArrayLike,
        transformation: Optional[Transformation] = None,
    ) -> float:
        """Exact ``D(T(record), series)`` in the engine's ground metric."""
        return self.space.ground_distance(
            self.ground_spectra[record_id],
            self.query_spectrum(series),
            transformation,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _query_reps(
        self,
        series: ArrayLike,
        transformation: Optional[Transformation],
        transform_query: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Spectrum and feature point of the query object.

        With ``transform_query`` the transformation is applied to the query
        side too, turning the predicate into ``D(T(record), T(query))`` —
        the symmetric semantics of the Section 2 examples and the Table-1
        join ("apply T_mavg20 ... to both the index and the search
        rectangles").  Without it, the predicate is Algorithm 2's literal
        ``D(T(record), query)``.
        """
        q_spec = self.query_spectrum(series)
        q_point = self.query_point(series)
        if transform_query and transformation is not None:
            q_spec = transformation.apply_spectrum(q_spec)
            q_point = self.space.affine_map(transformation).apply_point(q_point)
        return q_spec, q_point

    def range_query(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
        transform_query: bool = False,
        method: str = "index",
    ) -> list[tuple[int, float]]:
        """All records with ``D(T(record), query) <= eps`` (Algorithm 2).

        Deprecated shim over :meth:`plan`; ``method`` defaults to
        ``"index"`` (the pre-plan-API behaviour) — pass ``"auto"`` for
        Figure-12 access-path selection or ``"scan"`` to force the
        sequential scan (answer sets are identical either way).
        """
        return self.plan(
            QuerySpec(
                kind="range",
                series=series,
                eps=eps,
                transformation=transformation,
                transform_query=transform_query,
                aux_bounds=aux_bounds,
                method=method,
            )
        ).execute()

    def knn_query(
        self,
        series: ArrayLike,
        k: int,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
        method: str = "index",
    ) -> list[tuple[int, float]]:
        """The ``k`` records nearest to the query under ``T`` (exact).

        Deprecated shim over :meth:`plan` (see :meth:`range_query`).
        """
        return self.plan(
            QuerySpec(
                kind="knn",
                series=series,
                k=k,
                transformation=transformation,
                transform_query=transform_query,
                method=method,
            )
        ).execute()

    def _query_reps_batch(
        self,
        series_matrix: ArrayLike,
        transformation: Optional[Transformation],
        transform_query: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_query_reps`: one numpy pipeline for all queries."""
        rows = np.asarray(series_matrix, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.space.n:
            raise ValueError(
                f"queries must be (m, {self.space.n}), got {rows.shape}"
            )
        # One shared FFT pipeline for both representations — the spectra
        # computation dominates, so splitting it across series_spectrum_many
        # and extract_many would run it twice.
        q_points, q_specs = self.space.extract_many_with_spectra(rows)
        if transform_query and transformation is not None:
            q_specs = transformation.apply_spectrum(q_specs)
            amap = self.space.affine_map(transformation)
            q_points = q_points * amap.scale + amap.offset
        return q_specs, q_points

    def range_query_batch(
        self,
        series_matrix: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
        transform_query: bool = False,
        method: str = "index",
    ) -> list[list[tuple[int, float]]]:
        """Batched :meth:`range_query` over an ``(m, n)`` matrix of queries.

        Deprecated shim over :meth:`plan`.  Preprocessing is shared across
        the batch and the whole batch probes the index through one fused
        tree descent (:class:`~repro.core.ops.BatchIndexProbe`), so node
        visits are amortised across queries.  Returns one result list per
        query row, in order.
        """
        return self.plan(
            QuerySpec(
                kind="range",
                series=series_matrix,
                eps=eps,
                transformation=transformation,
                transform_query=transform_query,
                aux_bounds=aux_bounds,
                method=method,
            )
        ).execute()

    def knn_query_batch(
        self,
        series_matrix: ArrayLike,
        k: int,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
        method: str = "index",
    ) -> list[list[tuple[int, float]]]:
        """Batched :meth:`knn_query` over an ``(m, n)`` matrix of queries.

        Deprecated shim over :meth:`plan`; preprocessing and the
        transformed view are shared across the batch.
        """
        return self.plan(
            QuerySpec(
                kind="knn",
                series=series_matrix,
                k=k,
                transformation=transformation,
                transform_query=transform_query,
                method=method,
            )
        ).execute()

    def all_pairs(
        self,
        eps: float,
        transformation: Optional[Transformation] = None,
        method: str = "index",
    ) -> list[tuple[int, int, float]]:
        """Self-join: pairs with ``D(T(x), T(y)) <= eps`` (Table 1).

        Deprecated shim over :meth:`plan`.  Methods: ``"scan"`` (Table 1's
        *a*), ``"scan-abandon"`` (*b*), ``"index"`` (*c* when
        ``transformation`` is None, *d* otherwise), ``"tree-join"``
        (synchronized-descent ablation).
        """
        return self.plan(
            QuerySpec(
                kind="join", eps=eps, transformation=transformation, method=method
            )
        ).execute()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"SimilarityEngine(records={len(self.relation)}, "
            f"space={type(self.space).__name__}(dim={self.space.dim}), "
            f"index={type(self.tree).__name__})"
        )
