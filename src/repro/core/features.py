"""Feature spaces: mapping time series to indexable points (Section 3.1).

A time series becomes a point in a low-dimensional *feature space* built
from its first few DFT coefficients.  Complex coefficients need a real
representation, and the paper studies two:

* ``S_rect`` — each coefficient contributes its real and imaginary parts
  (safe for ``T = (a, b)`` with real ``a``, Theorem 2);
* ``S_pol`` — each coefficient contributes its magnitude and phase angle
  (safe for ``T = (a, 0)`` with complex ``a``, Theorem 3 — this is what the
  paper's experiments use, because moving average needs complex stretches).

Two concrete spaces are provided:

* :class:`PlainDFTSpace` — the [AFS93] k-index: coefficients ``0..k-1`` of
  the raw series; distances are distances between raw series.
* :class:`NormalFormSpace` — the paper's Section 5 layout: the series is
  first normalised (Eq. 9), the mean and standard deviation of the
  *original* series occupy index dimensions 0 and 1, and coefficients
  ``1..k`` of the normal form fill the rest (coefficient 0 of a normal
  form is always zero and is dropped).  Distances are distances between
  normal forms.

Every space knows how to

* extract index points (:meth:`FeatureSpace.extract`),
* build the minimum bounding search rectangle of an ``eps``-ball around a
  query point (:meth:`FeatureSpace.search_rect`) — Fig. 7's
  ``asin(eps/m)`` construction in the polar case,
* lower a safe :class:`~repro.core.transforms.Transformation` to the
  per-dimension real affine map of Theorems 2/3
  (:meth:`FeatureSpace.affine_map`), which is what Algorithm 1 applies to
  node MBRs, and
* compute *lower bounds* on the true distance from feature coordinates
  (:meth:`FeatureSpace.point_dist`, :meth:`FeatureSpace.rect_mindist`),
  which drive the multi-step k-NN search.

``exploit_symmetry=True`` additionally doubles the energy contribution of
retained coefficients ``0 < f < n/2`` (their conjugate mirror must match
too when the underlying series are real) — a strictly tighter filter noted
by [FRM94] but not used in the paper; it is benchmarked as an ablation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

from repro.rtree.backend import xp

from repro.core.normal_form import mean_std, mean_std_many, normal_form, normal_form_many
from repro.core.transforms import SAFETY_TOL, Transformation
from repro.dft import dft, dft_many
from repro.rtree.geometry import Rect
from repro.rtree.transformed import AffineMap

ArrayLike = Union[Sequence[float], xp.ndarray]

#: Pseudo-infinite bound for unconstrained auxiliary dimensions.
AUX_RANGE = 1e18

TWO_PI = 2.0 * math.pi


class UnsafeTransformationError(ValueError):
    """Raised when a transformation is not safe for the given space.

    Applying an unsafe transformation to index MBRs would break
    Definition 1 (points inside a rectangle could map outside its image)
    and with it the no-false-dismissal guarantee of Lemma 1, so the
    library refuses instead of silently returning wrong answers.
    """


class FeatureSpace(ABC):
    """Common machinery for both coordinate systems and both layouts.

    Args:
        n: time-series length.
        k: number of retained DFT coefficients.
        coord: ``"rect"`` for ``S_rect`` or ``"polar"`` for ``S_pol``.
        exploit_symmetry: weight mirrored coefficients twice (see module
            docstring); off by default to match the paper.
    """

    #: index of the first coefficient dimension (after aux dims)
    aux_dims: int = 0

    def __init__(
        self, n: int, k: int, coord: str = "polar", exploit_symmetry: bool = False
    ) -> None:
        if coord not in ("rect", "polar"):
            raise ValueError(f"coord must be 'rect' or 'polar', got {coord!r}")
        if n < 2:
            raise ValueError(f"series length must be >= 2, got {n}")
        self.n = n
        self.coord = coord
        self.exploit_symmetry = exploit_symmetry
        self.freqs = self._retained_freqs(k)
        self.k = len(self.freqs)
        if self.k == 0:
            raise ValueError("at least one coefficient must be retained")
        if max(self.freqs) >= n:
            raise ValueError(
                f"retained frequency {max(self.freqs)} out of range for n={n}"
            )
        # Energy weight per retained coefficient (1, or 2 with symmetry).
        self.weights = xp.ones(self.k)
        if exploit_symmetry:
            for i, f in enumerate(self.freqs):
                if 0 < f < n / 2:
                    self.weights[i] = 2.0
        # Cache the wrap-around-dimension mask: it is immutable once the
        # layout is fixed, and views are built once per query.
        if self.coord == "polar":
            mask = xp.zeros(self.dim, dtype=bool)
            mask[self.aux_dims + 1 :: 2] = True
            self._circular_mask: Optional[xp.ndarray] = mask
        else:
            self._circular_mask = None

    # ------------------------------------------------------------------
    # subclass layout hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _retained_freqs(self, k: int) -> list[int]:
        """Frequencies of the retained coefficients."""

    @abstractmethod
    def series_spectrum(self, series: ArrayLike) -> xp.ndarray:
        """Full unitary spectrum the ground-truth distance is taken over."""

    @abstractmethod
    def aux_values(self, series: ArrayLike) -> xp.ndarray:
        """Values of the auxiliary dimensions for this series."""

    def series_spectrum_many(self, matrix: ArrayLike) -> xp.ndarray:
        """Row-wise :meth:`series_spectrum` of an ``(m, n)`` matrix.

        The base implementation loops over rows; both concrete spaces
        override it with a single-FFT-call pipeline.
        """
        rows = xp.asarray(matrix, dtype=xp.float64)
        if rows.shape[0] == 0:
            return xp.empty((0, self.n), dtype=xp.complex128)
        return xp.stack([self.series_spectrum(row) for row in rows])

    def aux_values_many(self, matrix: ArrayLike) -> xp.ndarray:
        """Row-wise :meth:`aux_values` as an ``(m, aux_dims)`` matrix."""
        rows = xp.asarray(matrix, dtype=xp.float64)
        if rows.shape[0] == 0:
            return xp.empty((0, self.aux_dims))
        return xp.stack([self.aux_values(row) for row in rows])

    # ------------------------------------------------------------------
    # derived layout
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Index dimensionality: aux dims plus two per coefficient."""
        return self.aux_dims + 2 * self.k

    @property
    def circular_mask(self) -> Optional[xp.ndarray]:
        """Boolean mask of wrap-around (phase angle) dimensions (cached)."""
        return self._circular_mask

    def coeff_slice(self, point: ArrayLike) -> xp.ndarray:
        """The coefficient-encoding part of an index point."""
        return xp.asarray(point, dtype=xp.float64)[self.aux_dims :]

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def extract(self, series: ArrayLike) -> xp.ndarray:
        """Map a series to its index point."""
        x = xp.asarray(series, dtype=xp.float64)
        if x.shape != (self.n,):
            raise ValueError(f"series must have length {self.n}, got {x.shape}")
        spec = self.series_spectrum(x)
        return xp.concatenate(
            [self.aux_values(x), self.encode_coefficients(spec[self.freqs])]
        )

    def extract_many(self, matrix: ArrayLike) -> xp.ndarray:
        """Vectorised :meth:`extract` over the rows of ``matrix``.

        One numpy pipeline for the whole relation: batched spectra, batched
        aux values, batched coefficient encoding.  An empty ``(0, n)``
        matrix yields ``(0, dim)``.
        """
        return self.extract_many_with_spectra(matrix)[0]

    def extract_many_with_spectra(
        self, matrix: ArrayLike
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Both the index points and the full ground spectra of a relation.

        One shared batched pipeline — the engine needs both at build time,
        and the spectra computation (normal form + FFT) dominates, so
        computing it once roughly halves index-construction cost.
        """
        rows = xp.asarray(matrix, dtype=xp.float64)
        if rows.ndim != 2 or rows.shape[1] != self.n:
            raise ValueError(f"matrix must be (m, {self.n}), got {rows.shape}")
        spec = self.series_spectrum_many(rows)
        points = xp.concatenate(
            [
                self.aux_values_many(rows),
                self.encode_coefficients_many(spec[:, self.freqs]),
            ],
            axis=1,
        )
        return points, spec

    def encode_coefficients(self, coeffs: ArrayLike) -> xp.ndarray:
        """Encode complex coefficients as index coordinates (pairs)."""
        c = xp.asarray(coeffs, dtype=xp.complex128)
        out = xp.empty(2 * c.shape[0])
        if self.coord == "rect":
            out[0::2] = c.real
            out[1::2] = c.imag
        else:
            out[0::2] = xp.abs(c)
            out[1::2] = xp.angle(c)
        return out

    def encode_coefficients_many(self, coeffs: ArrayLike) -> xp.ndarray:
        """Row-wise :meth:`encode_coefficients` of an ``(m, k)`` matrix."""
        c = xp.asarray(coeffs, dtype=xp.complex128)
        out = xp.empty((c.shape[0], 2 * c.shape[1]))
        if self.coord == "rect":
            out[:, 0::2] = c.real
            out[:, 1::2] = c.imag
        else:
            out[:, 0::2] = xp.abs(c)
            out[:, 1::2] = xp.angle(c)
        return out

    def decode_coefficients(self, encoded: ArrayLike) -> xp.ndarray:
        """Inverse of :meth:`encode_coefficients`."""
        e = xp.asarray(encoded, dtype=xp.float64)
        if self.coord == "rect":
            return e[0::2] + 1j * e[1::2]
        return e[0::2] * xp.exp(1j * e[1::2])

    def point_from_spectrum(
        self, spectrum: ArrayLike, aux: Optional[ArrayLike] = None
    ) -> xp.ndarray:
        """Index point from a full spectrum plus optional aux values."""
        spec = xp.asarray(spectrum, dtype=xp.complex128)
        aux_arr = (
            xp.zeros(self.aux_dims)
            if aux is None
            else xp.asarray(aux, dtype=xp.float64)
        )
        if aux_arr.shape != (self.aux_dims,):
            raise ValueError(f"aux must have length {self.aux_dims}")
        return xp.concatenate([aux_arr, self.encode_coefficients(spec[self.freqs])])

    # ------------------------------------------------------------------
    # search rectangles (Algorithm 2 preprocessing; Fig. 7)
    # ------------------------------------------------------------------
    def search_rect(
        self,
        point: ArrayLike,
        eps: float,
        aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
    ) -> Rect:
        """Minimum bounding rectangle of the ``eps``-ball around ``point``.

        Auxiliary dimensions are unconstrained (full range) unless explicit
        ``aux_bounds`` intervals are given — the ground distance is over
        normal forms / raw spectra, so mean and std never shrink the ball;
        bounds on them express [GK95]-style shift/scale restrictions.
        """
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        p = xp.asarray(point, dtype=xp.float64)
        if p.shape != (self.dim,):
            raise ValueError(f"point must have dim {self.dim}, got {p.shape}")
        lows = xp.empty(self.dim)
        highs = xp.empty(self.dim)
        if aux_bounds is None:
            lows[: self.aux_dims] = -AUX_RANGE
            highs[: self.aux_dims] = AUX_RANGE
        else:
            if len(aux_bounds) != self.aux_dims:
                raise ValueError(
                    f"need {self.aux_dims} aux bounds, got {len(aux_bounds)}"
                )
            for i, (lo, hi) in enumerate(aux_bounds):
                lows[i], highs[i] = lo, hi
        for i in range(self.k):
            e = eps / math.sqrt(self.weights[i])
            base = self.aux_dims + 2 * i
            if self.coord == "rect":
                lows[base] = p[base] - e
                highs[base] = p[base] + e
                lows[base + 1] = p[base + 1] - e
                highs[base + 1] = p[base + 1] + e
            else:
                m, alpha = p[base], p[base + 1]
                lows[base] = max(0.0, m - e)
                highs[base] = m + e
                if m > e:
                    half = math.asin(e / m)
                    lows[base + 1] = alpha - half
                    highs[base + 1] = alpha + half
                else:
                    lows[base + 1] = -math.pi
                    highs[base + 1] = math.pi
        return Rect(lows, highs)

    def search_rect_many(
        self,
        points: xp.ndarray,
        eps: float,
        aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Vectorised :meth:`search_rect` over ``(m, dim)`` query points.

        One numpy pipeline builds every query's minimum bounding search
        rectangle (Fig. 7's ``asin(eps/m)`` construction in the polar
        case) — the preprocessing step of the fused batch probes and the
        kernel index join.  Rows agree exactly with per-point
        :meth:`search_rect` calls.

        Returns:
            stacked ``(m, dim)`` lows/highs arrays.
        """
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        p = xp.asarray(points, dtype=xp.float64)
        if p.ndim != 2 or p.shape[1] != self.dim:
            raise ValueError(f"points must be (m, {self.dim}), got {p.shape}")
        m = p.shape[0]
        lows = xp.empty((m, self.dim))
        highs = xp.empty((m, self.dim))
        if aux_bounds is None:
            lows[:, : self.aux_dims] = -AUX_RANGE
            highs[:, : self.aux_dims] = AUX_RANGE
        else:
            if len(aux_bounds) != self.aux_dims:
                raise ValueError(
                    f"need {self.aux_dims} aux bounds, got {len(aux_bounds)}"
                )
            for i, (lo, hi) in enumerate(aux_bounds):
                lows[:, i], highs[:, i] = lo, hi
        for i in range(self.k):
            e = eps / math.sqrt(self.weights[i])
            base = self.aux_dims + 2 * i
            if self.coord == "rect":
                lows[:, base] = p[:, base] - e
                highs[:, base] = p[:, base] + e
                lows[:, base + 1] = p[:, base + 1] - e
                highs[:, base + 1] = p[:, base + 1] + e
            else:
                mag = p[:, base]
                alpha = p[:, base + 1]
                lows[:, base] = xp.maximum(0.0, mag - e)
                highs[:, base] = mag + e
                # Fig. 7: the angular half-width is asin(eps/m) when the
                # magnitude box stays away from the origin; otherwise the
                # whole circle is admissible.
                safe = mag > e
                ratio = xp.minimum(xp.divide(e, xp.where(safe, mag, 1.0)), 1.0)
                half = xp.where(safe, xp.arcsin(ratio), 0.0)
                lows[:, base + 1] = xp.where(safe, alpha - half, -math.pi)
                highs[:, base + 1] = xp.where(safe, alpha + half, math.pi)
        return lows, highs

    def expand_rect(self, rect: Rect, eps: float) -> Rect:
        """Superset expansion of a rectangle by the join radius ``eps``.

        For any point ``x`` inside ``rect``, every point within true
        distance ``eps`` of ``x`` lies inside the expansion.  Used by the
        tree-matching spatial join.
        """
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        lows = rect.lows.copy()
        highs = rect.highs.copy()
        lows[: self.aux_dims] = -AUX_RANGE
        highs[: self.aux_dims] = AUX_RANGE
        for i in range(self.k):
            e = eps / math.sqrt(self.weights[i])
            base = self.aux_dims + 2 * i
            if self.coord == "rect":
                lows[base] -= e
                highs[base] += e
                lows[base + 1] -= e
                highs[base + 1] += e
            else:
                m_lo = lows[base]
                lows[base] = max(0.0, m_lo - e)
                highs[base] += e
                if m_lo > e:
                    half = math.asin(e / m_lo)
                    lows[base + 1] -= half
                    highs[base + 1] += half
                else:
                    lows[base + 1] = -math.pi
                    highs[base + 1] = math.pi
        return Rect(lows, highs)

    def expand_rect_many(
        self, lows: xp.ndarray, highs: xp.ndarray, eps: float
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Vectorised :meth:`expand_rect` over stacked ``(m, dim)`` boxes.

        One numpy pipeline grows every rectangle by the join radius — the
        preprocessing step of the kernel-backed tree-matching join, where
        the whole outer leaf relation expands at once instead of one
        ``Rect`` at a time.  Rows agree with per-rect :meth:`expand_rect`
        calls (to floating-point ulp on the polar ``asin`` construction;
        either way the expansion is a superset test, so candidate
        verification yields identical final answers).

        Returns:
            stacked ``(m, dim)`` expanded lows/highs arrays.
        """
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        lo = xp.array(lows, dtype=xp.float64, copy=True)
        hi = xp.array(highs, dtype=xp.float64, copy=True)
        if lo.ndim != 2 or lo.shape != hi.shape or lo.shape[1] != self.dim:
            raise ValueError(
                f"lows/highs must be matching (m, {self.dim}), got "
                f"{lo.shape} vs {hi.shape}"
            )
        lo[:, : self.aux_dims] = -AUX_RANGE
        hi[:, : self.aux_dims] = AUX_RANGE
        for i in range(self.k):
            e = eps / math.sqrt(self.weights[i])
            base = self.aux_dims + 2 * i
            if self.coord == "rect":
                lo[:, base] -= e
                hi[:, base] += e
                lo[:, base + 1] -= e
                hi[:, base + 1] += e
            else:
                m_lo = lo[:, base].copy()
                lo[:, base] = xp.maximum(0.0, m_lo - e)
                hi[:, base] += e
                safe = m_lo > e
                ratio = xp.minimum(xp.divide(e, xp.where(safe, m_lo, 1.0)), 1.0)
                half = xp.where(safe, xp.arcsin(ratio), 0.0)
                lo[:, base + 1] = xp.where(safe, lo[:, base + 1] - half, -math.pi)
                hi[:, base + 1] = xp.where(safe, hi[:, base + 1] + half, math.pi)
        return lo, hi

    # ------------------------------------------------------------------
    # Theorems 2/3: lowering transformations to index-space affine maps
    # ------------------------------------------------------------------
    def affine_map(self, t: Transformation) -> AffineMap:
        """Per-dimension real affine map realising ``t`` on this space.

        Raises:
            UnsafeTransformationError: when ``t`` violates the space's
                safety theorem (complex stretch in ``S_rect``; nonzero
                translation in ``S_pol``).
        """
        if t.n != self.n:
            raise ValueError(f"transformation length {t.n} != space length {self.n}")
        scale = xp.ones(self.dim)
        offset = xp.zeros(self.dim)
        self._aux_affine(t, scale, offset)
        if self.coord == "rect":
            if not t.is_safe_rect():
                raise UnsafeTransformationError(
                    f"{t.name}: complex stretch vector is unsafe in S_rect "
                    "(Theorem 2 requires real a; see the paper's rotation "
                    "counterexample)"
                )
            for i, f in enumerate(self.freqs):
                base = self.aux_dims + 2 * i
                scale[base] = scale[base + 1] = t.a[f].real
                offset[base] = t.b[f].real
                offset[base + 1] = t.b[f].imag
        else:
            if not t.is_safe_polar():
                raise UnsafeTransformationError(
                    f"{t.name}: nonzero translation vector is unsafe in S_pol "
                    "(Theorem 3 requires b = 0)"
                )
            for i, f in enumerate(self.freqs):
                base = self.aux_dims + 2 * i
                mag = abs(t.a[f])
                scale[base] = mag
                if mag <= SAFETY_TOL:
                    # The coefficient collapses to 0; its phase carries no
                    # information, so pin the angle dimension to 0 as well.
                    scale[base + 1] = 0.0
                    offset[base + 1] = 0.0
                else:
                    offset[base + 1] = math.atan2(t.a[f].imag, t.a[f].real)
        return AffineMap(scale, offset)

    def _aux_affine(
        self, t: Transformation, scale: xp.ndarray, offset: xp.ndarray
    ) -> None:
        """Fill the aux-dimension part of the affine map (default: none)."""

    # ------------------------------------------------------------------
    # distance lower bounds (Lemma 1 / multi-step k-NN machinery)
    # ------------------------------------------------------------------
    def point_dist(self, p: ArrayLike, q: ArrayLike) -> float:
        """Lower bound on the true distance from two index points.

        By Parseval, the sum of retained-coefficient energies never exceeds
        the full-spectrum energy, so this is the k-index bound of Lemma 1
        expressed in the space's coordinates.
        """
        a = xp.asarray(p, dtype=xp.float64)[self.aux_dims :]
        b = xp.asarray(q, dtype=xp.float64)[self.aux_dims :]
        if self.coord == "rect":
            d2 = (a[0::2] - b[0::2]) ** 2 + (a[1::2] - b[1::2]) ** 2
        else:
            # Law of cosines: |m1 e^{j t1} - m2 e^{j t2}|^2.
            d2 = (
                a[0::2] ** 2
                + b[0::2] ** 2
                - 2.0 * a[0::2] * b[0::2] * xp.cos(a[1::2] - b[1::2])
            )
            d2 = xp.maximum(d2, 0.0)
        return float(math.sqrt(float(xp.sum(self.weights * d2))))

    def point_dist_many(self, points: xp.ndarray, q: ArrayLike) -> xp.ndarray:
        """Row-wise :meth:`point_dist` of an ``(m, dim)`` matrix of points.

        One law-of-cosines (or squared-difference) evaluation over the whole
        matrix; agrees with the scalar path to float tolerance.
        """
        pts = xp.asarray(points, dtype=xp.float64)[:, self.aux_dims :]
        b = xp.asarray(q, dtype=xp.float64)[self.aux_dims :]
        if self.coord == "rect":
            d2 = (pts[:, 0::2] - b[0::2]) ** 2 + (pts[:, 1::2] - b[1::2]) ** 2
        else:
            d2 = (
                pts[:, 0::2] ** 2
                + b[0::2] ** 2
                - 2.0 * pts[:, 0::2] * b[0::2] * xp.cos(pts[:, 1::2] - b[1::2])
            )
            d2 = xp.maximum(d2, 0.0)
        return xp.sqrt(d2 @ self.weights)

    def rect_mindist(self, rect: Rect, q: ArrayLike) -> float:
        """Lower bound on :meth:`point_dist` over every point in ``rect``.

        In ``S_rect`` this is plain MINDIST on the coefficient dimensions.
        In ``S_pol`` it minimises the per-coefficient law-of-cosines
        distance over the (magnitude, angle) box, handling angle wrap.
        Auxiliary dimensions contribute nothing (they are not part of the
        ground distance).
        """
        point = xp.asarray(q, dtype=xp.float64)
        total = 0.0
        for i in range(self.k):
            base = self.aux_dims + 2 * i
            if self.coord == "rect":
                for d in (base, base + 1):
                    v = point[d]
                    if v < rect.lows[d]:
                        total += self.weights[i] * (rect.lows[d] - v) ** 2
                    elif v > rect.highs[d]:
                        total += self.weights[i] * (v - rect.highs[d]) ** 2
            else:
                total += self.weights[i] * self._polar_box_dist2(
                    point[base],
                    point[base + 1],
                    rect.lows[base],
                    rect.highs[base],
                    rect.lows[base + 1],
                    rect.highs[base + 1],
                )
        return float(math.sqrt(total))

    def rect_mindist_many(
        self, lows: xp.ndarray, highs: xp.ndarray, q: ArrayLike
    ) -> xp.ndarray:
        """Row-wise :meth:`rect_mindist` over stacked ``(m, dim)`` bounds.

        This is the per-node lower bound the k-NN traversal evaluates for a
        whole node's child MBRs in one numpy call.
        """
        point = xp.asarray(q, dtype=xp.float64)
        lo = xp.asarray(lows, dtype=xp.float64)[:, self.aux_dims :]
        hi = xp.asarray(highs, dtype=xp.float64)[:, self.aux_dims :]
        if self.coord == "rect":
            v = point[self.aux_dims :]
            gap = xp.maximum(lo - v, 0.0) + xp.maximum(v - hi, 0.0)
            d2 = gap[:, 0::2] ** 2 + gap[:, 1::2] ** 2
        else:
            d2 = self._polar_box_dist2_many(
                point[self.aux_dims + 0 :: 2],
                point[self.aux_dims + 1 :: 2],
                lo[:, 0::2],
                hi[:, 0::2],
                lo[:, 1::2],
                hi[:, 1::2],
            )
        return xp.sqrt(d2 @ self.weights)

    def point_dist_rows(self, points: xp.ndarray, qs: xp.ndarray) -> xp.ndarray:
        """Row-aligned :meth:`point_dist`: point ``i`` against query ``i``.

        Unlike :meth:`point_dist_many` (one query for every row), each row
        carries its own query point — the shape the fused batched k-NN
        frontier scores, where gathered leaf entries are already expanded
        against the query that reached them.
        """
        pts = xp.asarray(points, dtype=xp.float64)[:, self.aux_dims :]
        qb = xp.asarray(qs, dtype=xp.float64)[:, self.aux_dims :]
        if self.coord == "rect":
            d2 = (pts[:, 0::2] - qb[:, 0::2]) ** 2 + (pts[:, 1::2] - qb[:, 1::2]) ** 2
        else:
            d2 = (
                pts[:, 0::2] ** 2
                + qb[:, 0::2] ** 2
                - 2.0 * pts[:, 0::2] * qb[:, 0::2] * xp.cos(pts[:, 1::2] - qb[:, 1::2])
            )
            d2 = xp.maximum(d2, 0.0)
        return xp.sqrt(d2 @ self.weights)

    def rect_mindist_rows(
        self, lows: xp.ndarray, highs: xp.ndarray, qs: xp.ndarray
    ) -> xp.ndarray:
        """Row-aligned :meth:`rect_mindist`: rectangle ``i`` vs query ``i``.

        The internal-node counterpart of :meth:`point_dist_rows`; the
        polar helper broadcasts unchanged because the box bounds and the
        per-row query magnitudes/angles share the ``(m, k)`` shape.
        """
        q = xp.asarray(qs, dtype=xp.float64)[:, self.aux_dims :]
        lo = xp.asarray(lows, dtype=xp.float64)[:, self.aux_dims :]
        hi = xp.asarray(highs, dtype=xp.float64)[:, self.aux_dims :]
        if self.coord == "rect":
            gap = xp.maximum(lo - q, 0.0) + xp.maximum(q - hi, 0.0)
            d2 = gap[:, 0::2] ** 2 + gap[:, 1::2] ** 2
        else:
            d2 = self._polar_box_dist2_many(
                q[:, 0::2], q[:, 1::2],
                lo[:, 0::2], hi[:, 0::2],
                lo[:, 1::2], hi[:, 1::2],
            )
        return xp.sqrt(d2 @ self.weights)

    @staticmethod
    def _polar_box_dist2(
        mq: float, tq: float, m_lo: float, m_hi: float, t_lo: float, t_hi: float
    ) -> float:
        """Min of ``|m e^{jt} - mq e^{jtq}|^2`` over the box, wrap-aware."""
        if t_hi - t_lo >= TWO_PI:
            dtheta = 0.0
        else:
            # Smallest circular distance from tq to the interval [t_lo, t_hi].
            width = t_hi - t_lo
            rel = (tq - t_lo) % TWO_PI
            if rel <= width:
                dtheta = 0.0
            else:
                gap = rel - width  # distance past the high end, going up
                dtheta = min(gap, TWO_PI - rel)
        cos_d = math.cos(dtheta)
        if cos_d > 0:
            m_star = min(max(mq * cos_d, m_lo), m_hi)
        else:
            m_star = m_lo
        d2 = mq * mq + m_star * m_star - 2.0 * m_star * mq * cos_d
        return max(d2, 0.0)

    @staticmethod
    def _polar_box_dist2_many(
        mq: xp.ndarray,
        tq: xp.ndarray,
        m_lo: xp.ndarray,
        m_hi: xp.ndarray,
        t_lo: xp.ndarray,
        t_hi: xp.ndarray,
    ) -> xp.ndarray:
        """Vectorised :meth:`_polar_box_dist2` over ``(m, k)`` boxes.

        ``mq``/``tq`` are the query's ``(k,)`` magnitudes and angles; the
        box bounds are ``(m, k)`` arrays (one row per rectangle).
        """
        width = t_hi - t_lo
        rel = (tq - t_lo) % TWO_PI
        gap = rel - width
        dtheta = xp.where(
            (width >= TWO_PI) | (rel <= width),
            0.0,
            xp.minimum(gap, TWO_PI - rel),
        )
        cos_d = xp.cos(dtheta)
        m_star = xp.where(cos_d > 0, xp.clip(mq * cos_d, m_lo, m_hi), m_lo)
        d2 = mq * mq + m_star * m_star - 2.0 * m_star * mq * cos_d
        return xp.maximum(d2, 0.0)

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def ground_distance(
        self,
        spec_x: xp.ndarray,
        spec_q: xp.ndarray,
        t: Optional[Transformation] = None,
    ) -> float:
        """Exact distance ``D(T(X), Q)`` over full spectra (Eq. 12)."""
        tx = spec_x if t is None else t.apply_spectrum(spec_x)
        return float(xp.linalg.norm(tx - spec_q))

    def ground_distance_within(
        self,
        spec_x: xp.ndarray,
        spec_q: xp.ndarray,
        eps: float,
        t: Optional[Transformation] = None,
    ) -> Optional[float]:
        """Like :meth:`ground_distance` but abandoned once above ``eps``.

        Post-processing (Algorithm 2 step 3) uses this so that verifying a
        candidate costs the same as the tuned sequential scan's per-record
        check — the fair footing behind the Figure 12 crossover.
        """
        from repro.core.similarity import euclidean_early_abandon

        tx = spec_x if t is None else t.apply_spectrum(spec_x)
        return euclidean_early_abandon(tx, spec_q, eps, block=4)

    def ground_distances_within_many(
        self,
        spectra: xp.ndarray,
        spec_q: xp.ndarray,
        eps: float,
        t: Optional[Transformation] = None,
    ) -> tuple[xp.ndarray, xp.ndarray, int]:
        """Batched :meth:`ground_distance_within` over ``(m, n)`` spectra.

        The transformation is applied to the whole candidate matrix at once
        and rows are verified block-by-block with matrix-level early
        abandoning (see :func:`repro.core.similarity.batch_euclidean_within`).

        Returns:
            ``(surviving row indices, their exact distances, abandoned count)``.
        """
        from repro.core.similarity import batch_euclidean_within

        tx = spectra if t is None else t.apply_spectrum(spectra)
        return batch_euclidean_within(tx, spec_q, eps, block=4)


class PlainDFTSpace(FeatureSpace):
    """The [AFS93] k-index layout: coefficients ``0..k-1`` of the raw series.

    Ground distance = Euclidean distance between raw series (equivalently
    their full spectra, by Parseval).
    """

    aux_dims = 0

    def _retained_freqs(self, k: int) -> list[int]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return list(range(k))

    def series_spectrum(self, series: ArrayLike) -> xp.ndarray:
        return dft(xp.asarray(series, dtype=xp.float64))

    def series_spectrum_many(self, matrix: ArrayLike) -> xp.ndarray:
        rows = xp.asarray(matrix, dtype=xp.float64)
        if rows.shape[0] == 0:
            return xp.empty((0, self.n), dtype=xp.complex128)
        return dft_many(rows)

    def aux_values(self, series: ArrayLike) -> xp.ndarray:
        return xp.empty(0)

    def aux_values_many(self, matrix: ArrayLike) -> xp.ndarray:
        return xp.empty((xp.asarray(matrix).shape[0], 0))


class NormalFormSpace(FeatureSpace):
    """The paper's Section 5 layout over normal-form series.

    Dimensions 0 and 1 hold the mean and standard deviation of the original
    series; coefficient ``f = i`` of the *normal form* fills dimensions
    ``2 + 2(i-1)`` and ``3 + 2(i-1)`` for ``i = 1..k`` (coefficient 0 of a
    normal form is identically zero and is dropped, exactly as the paper
    describes).  With ``k = 2`` and polar coordinates this is precisely the
    six-dimensional index of the experiments.

    Ground distance = Euclidean distance between *normal forms*.
    """

    aux_dims = 2

    def _retained_freqs(self, k: int) -> list[int]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return list(range(1, k + 1))

    def series_spectrum(self, series: ArrayLike) -> xp.ndarray:
        return dft(normal_form(xp.asarray(series, dtype=xp.float64)))

    def series_spectrum_many(self, matrix: ArrayLike) -> xp.ndarray:
        rows = xp.asarray(matrix, dtype=xp.float64)
        if rows.shape[0] == 0:
            return xp.empty((0, self.n), dtype=xp.complex128)
        return dft_many(normal_form_many(rows))

    def aux_values(self, series: ArrayLike) -> xp.ndarray:
        return xp.asarray(mean_std(series), dtype=xp.float64)

    def aux_values_many(self, matrix: ArrayLike) -> xp.ndarray:
        return mean_std_many(matrix)

    def _aux_affine(
        self, t: Transformation, scale: xp.ndarray, offset: xp.ndarray
    ) -> None:
        scale[0], offset[0] = t.mean_map
        scale[1], offset[1] = t.std_map
