"""Goldin-Kanellakis-style constrained similarity queries.

The paper's conclusion positions its transformations against [GK95]:
normal forms make similarity invariant under *any* shift and positive
scale, while "for simple shifting and scaling, the indexing method in
[GK95] is faster because no transformation needs to be performed on the
index.  Our indexing technique can be easily built on top of [GK95] as we
did in our experiments."

That layering is exactly what the Section 5 index enables: because the
mean and standard deviation of the original series occupy index
dimensions 0 and 1, a query can *bound* the permissible shift and scale
instead of ignoring them — "find sequences whose shape matches q, whose
level is within ±5 of q's, and which are at most twice as volatile".
This module packages those queries:

* :func:`gk_similar` — normal-form similarity with explicit shift/scale
  tolerance windows, pushed into the index as aux-dimension bounds (so
  the R-tree prunes on them, GK95-style, with no transformation applied);
* :func:`gk_bounds` — translate shift/scale tolerances around a query
  series into the aux-dimension intervals.

Requires the engine's feature space to be a
:class:`~repro.core.features.NormalFormSpace`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace
from repro.core.transforms import Transformation

ArrayLike = Union[Sequence[float], np.ndarray]


def gk_bounds(
    series: ArrayLike,
    shift_tolerance: Optional[float] = None,
    scale_range: Optional[tuple[float, float]] = None,
) -> list[tuple[float, float]]:
    """Aux-dimension intervals for shift/scale-constrained queries.

    Args:
        series: the query series (its mean/std anchor the windows).
        shift_tolerance: half-width of the admissible mean window; ``None``
            leaves the mean unconstrained (full GK95 shift invariance).
        scale_range: multiplicative ``(lo, hi)`` window on the standard
            deviation relative to the query's (e.g. ``(0.5, 2.0)`` = "half
            to twice as volatile"); ``None`` leaves it unconstrained.

    Returns:
        ``[(mean_lo, mean_hi), (std_lo, std_hi)]``, suitable for the
        ``aux_bounds`` parameter of range queries.
    """
    x = np.asarray(series, dtype=np.float64)
    mean = float(np.mean(x))
    std = float(np.std(x))
    big = 1e18
    if shift_tolerance is None:
        mean_iv = (-big, big)
    else:
        if shift_tolerance < 0:
            raise ValueError(
                f"shift_tolerance must be non-negative, got {shift_tolerance}"
            )
        mean_iv = (mean - shift_tolerance, mean + shift_tolerance)
    if scale_range is None:
        std_iv = (-big, big)
    else:
        lo, hi = scale_range
        if lo < 0 or hi < lo:
            raise ValueError(
                f"scale_range must satisfy 0 <= lo <= hi, got ({lo}, {hi})"
            )
        std_iv = (std * lo, std * hi)
    return [mean_iv, std_iv]


def gk_similar(
    engine: SimilarityEngine,
    series: ArrayLike,
    eps: float,
    shift_tolerance: Optional[float] = None,
    scale_range: Optional[tuple[float, float]] = None,
    transformation: Optional[Transformation] = None,
    transform_query: bool = False,
) -> list[tuple[int, float]]:
    """Normal-form range query with GK95 shift/scale windows.

    Combines both papers' styles: the *shape* predicate is the engine's
    normal-form distance (optionally under a safe transformation), and the
    shift/scale predicates prune directly on the mean/std index dimensions
    without any transformation — GK95's fast path.

    Returns:
        ``(record id, normal-form distance)`` pairs; every returned record
        additionally satisfies the mean/std windows exactly (the aux
        dimensions are index coordinates, so the index predicate is
        precise for them, not just a filter).
    """
    if not isinstance(engine.space, NormalFormSpace):
        raise TypeError(
            "gk_similar requires a NormalFormSpace engine; got "
            f"{type(engine.space).__name__}"
        )
    bounds = gk_bounds(series, shift_tolerance, scale_range)
    return engine.range_query(
        series,
        eps,
        transformation=transformation,
        aux_bounds=bounds,
        transform_query=transform_query,
    )
