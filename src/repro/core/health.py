"""Engine health reporting — which components survived validation.

A :class:`HealthReport` summarises the trust state of an engine's
components after a load (or a build): the relation, the node-object
index, the frozen columnar kernel, the parallel kernel executor (whose
execution supervisor degrades it to serial mode when its circuit breaker
trips), and the persistence layer itself.
Statuses are ordered ``ok < degraded < failed``; the report's overall
status is the worst component's.  ``engine.health()`` builds one, and the
query language's ``HEALTH`` verb prints it as JSON.

The report is descriptive, not prescriptive: the actual rerouting around
a failed component happens at plan time (see
:func:`repro.core.plan.compile_spec`), and EXPLAIN's ``degraded_from``
field records it per query.
"""

from __future__ import annotations

from dataclasses import dataclass

#: severity order for the overall status.
_SEVERITY = {"ok": 0, "degraded": 1, "failed": 2}
STATUSES = tuple(_SEVERITY)


@dataclass
class ComponentHealth:
    """One component's trust state."""

    name: str
    status: str
    detail: str = ""

    def as_dict(self) -> dict:
        return {"status": self.status, "detail": self.detail}


class HealthReport:
    """Per-component health with a worst-of overall status."""

    def __init__(self, components: list[ComponentHealth]) -> None:
        for c in components:
            if c.status not in _SEVERITY:
                raise ValueError(
                    f"unknown health status {c.status!r} for {c.name!r}"
                )
        self.components = components

    @property
    def status(self) -> str:
        """The worst component status (``"ok"`` for an empty report)."""
        worst = "ok"
        for c in self.components:
            if _SEVERITY[c.status] > _SEVERITY[worst]:
                worst = c.status
        return worst

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def component(self, name: str) -> ComponentHealth:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(f"no health component named {name!r}")

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "components": {c.name: c.as_dict() for c in self.components},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c.name}={c.status}" for c in self.components)
        return f"HealthReport({self.status}: {parts})"
