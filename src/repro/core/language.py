"""A small declarative query language for similarity queries.

Section 3 of the paper frames its transformations inside the
Jagadish-Mendelzon-Milo (PODS 1995) similarity framework: a pattern
language (here: a named constant sequence, or a whole relation), a
transformation language (the ``(a, b)`` pairs of
:mod:`repro.core.transforms`), and a query language that glues them
together.  This module is that query language — a deliberately small
surface over :class:`~repro.core.engine.SimilarityEngine`:

.. code-block:: text

    RANGE q IN stocks EPS 2.5 USING mavg(20)
    KNN   q IN stocks K 10    USING reverse THEN mavg(20)
    JOIN  stocks EPS 2.5      USING mavg(20) [METHOD index]
    DIST  q, p USING mavg(3)
    RANGE q IN stocks EPS 2.5 PLAN scan
    EXPLAIN RANGE q IN stocks EPS 9 USING mavg(20)
    RANGE SUBSEQ q IN stocks EPS 1.5 WINDOW 32 PROBE auto
    KNN   SUBSEQ q IN stocks K 5 WINDOW 32
    RANGE q IN stocks EPS 2.5 BUDGET 50
    HEALTH stocks

* ``RANGE`` returns all records of the relation within ``EPS`` of ``q``
  after the transformation is applied to the data side (Algorithm 2).
* ``KNN`` returns the ``K`` nearest records.
* ``JOIN`` is the all-pairs self-join of Table 1.
* ``DIST`` evaluates the exact distance between two bound sequences after
  transforming the *first* one.
* ``USING t1 THEN t2`` composes transformations left to right (``t2``
  applied after ``t1``).
* ``PLAN auto|index|scan`` hints the access path of a RANGE/KNN query;
  the default ``auto`` lets the Figure-12 selectivity planner route the
  query (answers are identical whichever path runs).
* ``RANGE SUBSEQ`` / ``KNN SUBSEQ`` are the [FRM94] subsequence
  variants, answered by an ST-index over the relation's rows (cached per
  ``WINDOW``; the window defaults to the query's length).  ``PROBE
  auto|multipiece|prefix`` hints the long-query reduction — under
  ``auto`` the planner weighs piece count against prefix selectivity,
  and ``EXPLAIN`` reports the choice.  Results are
  :class:`~repro.subseq.stindex.SubseqMatch` records (series, offset,
  distance).
* ``BUDGET ms`` caps a RANGE/KNN/JOIN/SUBSEQ query's wall-clock time:
  range-style queries raise a :class:`QueryError` when the deadline
  passes, k-NN queries return the (exact) partial results found so far.
* ``HEALTH r`` reports the relation's engine component health (the
  relation, node index, columnar kernel and persistence layer) as a
  dict — the query-language face of ``engine.health()``.
* ``EXPLAIN <query>`` compiles the query without running it and returns
  the plan description (chosen access path, estimated candidate
  fraction, operator tree) as a dict; ``EXPLAIN ANALYZE <query>`` runs
  it first, so the dict also carries per-operator IOStats deltas and the
  columnar kernel's frontier counters (``nodes_expanded``,
  ``entries_scanned``, ``frontier_peak``).

Every statement compiles to a :class:`~repro.core.plan.QuerySpec` and
runs through :meth:`~repro.core.engine.SimilarityEngine.plan` — the same
planned execution path as the Python API and the CLI.

Identifiers are resolved against a :class:`QuerySession`, which binds
relation names to engines and sequence/transformation names to values.
Built-in transformation constructors: ``identity``, ``shift(c)``,
``scale(c)``, ``reverse``, ``mavg(window)``, ``warp(m)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

from repro.core import transforms
from repro.core.engine import SimilarityEngine
from repro.core.features import FeatureSpace
from repro.core.plan import ACCESS_HINTS, SUBSEQ_PROBES, QuerySpec, dist_plan
from repro.core.transforms import Transformation
from repro.data.relation import SequenceRelation
from repro.storage.budget import QueryBudgetExceeded, ResourceBudget


class QueryError(Exception):
    """Raised for lexical, syntactic or binding errors in a query."""


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>[-+]?\d+(\.\d*)?([eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[(),])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "RANGE", "KNN", "JOIN", "DIST", "IN", "EPS", "K", "USING", "THEN",
    "METHOD", "EXPLAIN", "ANALYZE", "PLAN", "SUBSEQ", "WINDOW", "PROBE",
    "BUDGET", "HEALTH",
}


@dataclass
class Token:
    kind: str  # 'kw' | 'ident' | 'number' | 'punct' | 'end'
    text: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Split a query string into tokens; raises on unexpected characters."""
    out: list[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QueryError(f"unexpected character {text[pos]!r} at position {pos}")
        if m.lastgroup != "ws":
            raw = m.group()
            if m.lastgroup == "ident" and raw.upper() in _KEYWORDS:
                out.append(Token("kw", raw.upper(), pos))
            else:
                out.append(Token(m.lastgroup, raw, pos))
        pos = m.end()
    out.append(Token("end", "", pos))
    return out


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass
class TransformCall:
    """``name`` or ``name(arg, ...)`` in a USING clause."""

    name: str
    args: list[float] = field(default_factory=list)


@dataclass
class TransformExpr:
    """A THEN-chain of transformation calls, applied left to right."""

    calls: list[TransformCall]


@dataclass
class RangeQuery:
    seq: str
    relation: str
    eps: float
    using: Optional[TransformExpr]
    plan: str = "auto"
    budget_ms: Optional[float] = None


@dataclass
class KnnQuery:
    seq: str
    relation: str
    k: int
    using: Optional[TransformExpr]
    plan: str = "auto"
    budget_ms: Optional[float] = None


@dataclass
class JoinQuery:
    relation: str
    eps: float
    using: Optional[TransformExpr]
    method: str = "index"
    budget_ms: Optional[float] = None


@dataclass
class SubseqRangeQuery:
    """``RANGE SUBSEQ q IN r EPS e [WINDOW w] [PROBE p]``.

    ``WINDOW`` defaults to the query's length (a single-piece probe);
    ``PROBE`` hints the long-query reduction — ``auto`` (the planner
    weighs piece count against prefix selectivity), ``multipiece`` or
    ``prefix``.
    """

    seq: str
    relation: str
    eps: float
    window: Optional[int] = None
    probe: str = "auto"
    budget_ms: Optional[float] = None


@dataclass
class SubseqKnnQuery:
    """``KNN SUBSEQ q IN r K k [WINDOW w]`` — the k closest windows."""

    seq: str
    relation: str
    k: int
    window: Optional[int] = None
    budget_ms: Optional[float] = None


@dataclass
class HealthQuery:
    """``HEALTH r`` — the relation's engine component health report."""

    relation: str


@dataclass
class DistQuery:
    seq_a: str
    seq_b: str
    using: Optional[TransformExpr]


@dataclass
class ExplainQuery:
    """``EXPLAIN [ANALYZE] <query>`` — describe the inner query's plan.

    With ``ANALYZE`` the plan is executed first, so the description also
    carries the run-time counters: per-operator IOStats deltas and the
    kernel frontier stats (``nodes_expanded``, ``entries_scanned``,
    ``frontier_peak``).
    """

    query: "Query"
    analyze: bool = False


Query = Union[
    RangeQuery, KnnQuery, JoinQuery, DistQuery,
    SubseqRangeQuery, SubseqKnnQuery, HealthQuery, ExplainQuery,
]


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class Parser:
    """Recursive-descent parser for the grammar in the module docstring."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.i = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.i]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise QueryError(
                f"expected {want} at position {tok.pos}, found {tok.text!r}"
            )
        return tok

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Query:
        tok = self.next()
        if tok.kind != "kw":
            raise QueryError(f"query must start with a verb, found {tok.text!r}")
        explain = False
        analyze = False
        if tok.text == "EXPLAIN":
            explain = True
            tok = self.next()
            if tok.kind == "kw" and tok.text == "ANALYZE":
                analyze = True
                tok = self.next()
            if tok.kind != "kw":
                raise QueryError(
                    f"EXPLAIN must wrap a query, found {tok.text!r}"
                )
        if tok.text == "RANGE":
            node: Query = self._range()
        elif tok.text == "KNN":
            node = self._knn()
        elif tok.text == "JOIN":
            node = self._join()
        elif tok.text == "DIST":
            node = self._dist()
        elif tok.text == "HEALTH":
            if explain:
                raise QueryError("HEALTH cannot be wrapped in EXPLAIN")
            node = HealthQuery(self.expect("ident").text)
        else:
            raise QueryError(f"unknown query verb {tok.text}")
        self.expect("end")
        return ExplainQuery(node, analyze=analyze) if explain else node

    def _range(self) -> Union[RangeQuery, SubseqRangeQuery]:
        if self._maybe_kw("SUBSEQ"):
            return self._subseq_range()
        seq = self.expect("ident").text
        self.expect("kw", "IN")
        relation = self.expect("ident").text
        self.expect("kw", "EPS")
        eps = self._number()
        using = self._maybe_using()
        plan = self._maybe_plan()
        return RangeQuery(seq, relation, eps, using, plan, self._maybe_budget())

    def _knn(self) -> Union[KnnQuery, SubseqKnnQuery]:
        if self._maybe_kw("SUBSEQ"):
            return self._subseq_knn()
        seq = self.expect("ident").text
        self.expect("kw", "IN")
        relation = self.expect("ident").text
        self.expect("kw", "K")
        k = self._number()
        if k != int(k) or k < 0:
            # K 0 is a valid (empty) query — the kernel's uniform edge-case
            # contract; only negative or fractional K is malformed.
            raise QueryError(f"K must be a non-negative integer, got {k}")
        using = self._maybe_using()
        plan = self._maybe_plan()
        return KnnQuery(
            seq, relation, int(k), using, plan, self._maybe_budget()
        )

    def _subseq_range(self) -> SubseqRangeQuery:
        seq = self.expect("ident").text
        self.expect("kw", "IN")
        relation = self.expect("ident").text
        self.expect("kw", "EPS")
        eps = self._number()
        window = self._maybe_window()
        probe = self._maybe_probe()
        return SubseqRangeQuery(
            seq, relation, eps, window, probe, self._maybe_budget()
        )

    def _subseq_knn(self) -> SubseqKnnQuery:
        seq = self.expect("ident").text
        self.expect("kw", "IN")
        relation = self.expect("ident").text
        self.expect("kw", "K")
        k = self._number()
        if k != int(k) or k < 0:
            raise QueryError(f"K must be a non-negative integer, got {k}")
        window = self._maybe_window()
        return SubseqKnnQuery(
            seq, relation, int(k), window, self._maybe_budget()
        )

    def _maybe_kw(self, text: str) -> bool:
        """Consume the keyword if it is next; returns whether it was."""
        if self.peek().kind == "kw" and self.peek().text == text:
            self.next()
            return True
        return False

    def _maybe_window(self) -> Optional[int]:
        """Optional ``WINDOW w`` clause of the SUBSEQ variants."""
        if not self._maybe_kw("WINDOW"):
            return None
        w = self._number()
        if w != int(w) or w < 2:
            raise QueryError(f"WINDOW must be an integer >= 2, got {w}")
        return int(w)

    def _maybe_budget(self) -> Optional[float]:
        """Optional ``BUDGET ms`` wall-clock deadline clause."""
        if not self._maybe_kw("BUDGET"):
            return None
        ms = self._number()
        if ms <= 0:
            raise QueryError(f"BUDGET must be a positive deadline in ms, got {ms}")
        return ms

    def _maybe_probe(self) -> str:
        """Optional ``PROBE auto|multipiece|prefix`` strategy hint."""
        if not self._maybe_kw("PROBE"):
            return "auto"
        tok = self.expect("ident")
        if tok.text not in SUBSEQ_PROBES:
            raise QueryError(
                f"PROBE expects one of {', '.join(SUBSEQ_PROBES)}, "
                f"got {tok.text!r}"
            )
        return tok.text

    def _join(self) -> JoinQuery:
        relation = self.expect("ident").text
        self.expect("kw", "EPS")
        eps = self._number()
        using = self._maybe_using()
        method = "index"
        if self.peek().kind == "kw" and self.peek().text == "METHOD":
            self.next()
            method = self.expect("ident").text
        return JoinQuery(relation, eps, using, method, self._maybe_budget())

    def _dist(self) -> DistQuery:
        seq_a = self.expect("ident").text
        self.expect("punct", ",")
        seq_b = self.expect("ident").text
        using = self._maybe_using()
        return DistQuery(seq_a, seq_b, using)

    def _maybe_using(self) -> Optional[TransformExpr]:
        if self.peek().kind == "kw" and self.peek().text == "USING":
            self.next()
            return self._transform_expr()
        return None

    def _maybe_plan(self) -> str:
        """Optional ``PLAN auto|index|scan`` access-path hint."""
        if self.peek().kind == "kw" and self.peek().text == "PLAN":
            self.next()
            tok = self.expect("ident")
            if tok.text not in ACCESS_HINTS:
                raise QueryError(
                    f"PLAN expects one of {', '.join(ACCESS_HINTS)}, "
                    f"got {tok.text!r}"
                )
            return tok.text
        return "auto"

    def _transform_expr(self) -> TransformExpr:
        calls = [self._transform_call()]
        while self.peek().kind == "kw" and self.peek().text == "THEN":
            self.next()
            calls.append(self._transform_call())
        return TransformExpr(calls)

    def _transform_call(self) -> TransformCall:
        name = self.expect("ident").text
        args: list[float] = []
        if self.peek().kind == "punct" and self.peek().text == "(":
            self.next()
            if not (self.peek().kind == "punct" and self.peek().text == ")"):
                args.append(self._number())
                while self.peek().kind == "punct" and self.peek().text == ",":
                    self.next()
                    args.append(self._number())
            self.expect("punct", ")")
        return TransformCall(name, args)

    def _number(self) -> float:
        tok = self.expect("number")
        return float(tok.text)


def parse(text: str) -> Query:
    """Parse one query; returns its AST node."""
    return Parser(text).parse()


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
#: built-in transformation constructors: name -> (arity, factory(n, *args))
_BUILTINS: dict[str, tuple[int, Callable[..., Transformation]]] = {
    "identity": (0, lambda n: transforms.identity(n)),
    "reverse": (0, lambda n: transforms.reverse(n)),
    "shift": (1, lambda n, c: transforms.shift(n, c)),
    "scale": (1, lambda n, c: transforms.scale(n, c)),
    "mavg": (1, lambda n, w: transforms.moving_average(n, int(w))),
    "warp": (1, lambda n, m: transforms.time_warp(n, int(m))),
}


class QuerySession:
    """Name bindings plus engine cache; executes parsed queries.

    Args:
        space_factory: optional callable ``length -> FeatureSpace`` used
            when an engine is built for a relation; the engine default
            (the paper's polar normal-form space) applies otherwise.

    Example::

        session = QuerySession()
        session.bind_relation("stocks", stock_relation)
        session.bind_sequence("q", stock_relation.get(0))
        hits = session.execute("RANGE q IN stocks EPS 2.5 USING mavg(20)")
    """

    def __init__(
        self,
        space_factory: Optional[Callable[[int], FeatureSpace]] = None,
        **engine_kwargs,
    ) -> None:
        self._relations: dict[str, SequenceRelation] = {}
        self._engines: dict[str, SimilarityEngine] = {}
        self._subseq_indexes: dict[tuple[str, int], "STIndex"] = {}
        self._sequences: dict[str, np.ndarray] = {}
        self._transforms: dict[str, Transformation] = {}
        self._space_factory = space_factory
        self._engine_kwargs = engine_kwargs

    # -- bindings ---------------------------------------------------------
    def bind_relation(self, name: str, relation: SequenceRelation) -> None:
        """Bind (or rebind) a relation name; drops any cached engine."""
        self._relations[name] = relation
        self._engines.pop(name, None)
        for key in [k for k in self._subseq_indexes if k[0] == name]:
            del self._subseq_indexes[key]

    def bind_sequence(self, name: str, series: Sequence[float]) -> None:
        """Bind a constant sequence (the trivial pattern language)."""
        self._sequences[name] = np.asarray(series, dtype=np.float64)

    def bind_transformation(self, name: str, t: Transformation) -> None:
        """Bind a user-defined transformation usable in USING clauses."""
        if name in _BUILTINS:
            raise QueryError(f"cannot shadow built-in transformation {name!r}")
        self._transforms[name] = t

    def engine(self, relation_name: str) -> SimilarityEngine:
        """The (cached) engine for a bound relation."""
        if relation_name not in self._relations:
            raise QueryError(f"unknown relation {relation_name!r}")
        if relation_name not in self._engines:
            rel = self._relations[relation_name]
            space = (
                self._space_factory(rel.length) if self._space_factory else None
            )
            self._engines[relation_name] = SimilarityEngine(
                rel, space=space, **self._engine_kwargs
            )
        return self._engines[relation_name]

    #: ST-indexes retained per session; every distinct (relation, window)
    #: pair costs a full index build over the relation, and WINDOW
    #: defaults to the query length, so an unbounded cache could grow one
    #: index per query length — evict least-recently-used beyond this.
    SUBSEQ_CACHE_SIZE = 8

    def subseq_index(self, relation_name: str, window: int) -> "STIndex":
        """The (cached, LRU-bounded) ST-index over a bound relation."""
        if relation_name not in self._relations:
            raise QueryError(f"unknown relation {relation_name!r}")
        key = (relation_name, window)
        if key in self._subseq_indexes:
            self._subseq_indexes[key] = self._subseq_indexes.pop(key)
        else:
            from repro.subseq.stindex import STIndex

            rel = self._relations[relation_name]
            try:
                idx = STIndex(window=window)
                idx.add_series_many(rel.matrix)
            except ValueError as ex:
                raise QueryError(str(ex)) from None
            self._subseq_indexes[key] = idx
            while len(self._subseq_indexes) > self.SUBSEQ_CACHE_SIZE:
                self._subseq_indexes.pop(next(iter(self._subseq_indexes)))
        return self._subseq_indexes[key]

    # -- execution --------------------------------------------------------
    def execute(self, text: str) -> Any:
        """Parse and run one query; the result type depends on the verb.

        * ``RANGE`` / ``KNN`` → list of ``(record id, distance)``,
        * ``RANGE SUBSEQ`` / ``KNN SUBSEQ`` → list of ``SubseqMatch``
          records (series id, offset, distance),
        * ``JOIN`` → list of ``(id, id, distance)``,
        * ``DIST`` → float,
        * ``EXPLAIN ...`` → dict describing the compiled plan.
        """
        return self.run(parse(text))

    def _compile(self, query: Query):
        """Lower a parsed statement to a :class:`~repro.core.plan.PhysicalPlan`.

        USING in the language means *symmetric* transformation — both the
        data and the query are transformed, matching the paper's Section 2
        notion ("similar because their moving averages look the same") and
        its join semantics.  Algorithm 2's literal data-side-only form is
        available through SimilarityEngine directly.
        """
        if isinstance(query, RangeQuery):
            engine = self.engine(query.relation)
            t = self._build_transform(query.using, engine.space.n)
            spec = QuerySpec(
                kind="range",
                series=self._sequence(query.seq),
                eps=query.eps,
                transformation=t,
                transform_query=True,
                method=query.plan,
                budget=self._build_budget(query.budget_ms),
            )
            return engine.plan(spec)
        if isinstance(query, KnnQuery):
            engine = self.engine(query.relation)
            t = self._build_transform(query.using, engine.space.n)
            spec = QuerySpec(
                kind="knn",
                series=self._sequence(query.seq),
                k=query.k,
                transformation=t,
                transform_query=True,
                method=query.plan,
                budget=self._build_budget(query.budget_ms),
            )
            return engine.plan(spec)
        if isinstance(query, JoinQuery):
            engine = self.engine(query.relation)
            t = self._build_transform(query.using, engine.space.n)
            spec = QuerySpec(
                kind="join", eps=query.eps, transformation=t,
                method=query.method,
                budget=self._build_budget(query.budget_ms),
            )
            try:
                return engine.plan(spec)
            except ValueError as ex:
                raise QueryError(str(ex)) from None
        if isinstance(query, SubseqRangeQuery):
            q = self._sequence(query.seq)
            window = query.window if query.window is not None else q.shape[0]
            idx = self.subseq_index(query.relation, window)
            spec = QuerySpec(
                kind="subseq_range", series=q, eps=query.eps,
                window=window, probe=query.probe,
                budget=self._build_budget(query.budget_ms),
            )
            try:
                return idx.plan(spec)
            except ValueError as ex:
                raise QueryError(str(ex)) from None
        if isinstance(query, SubseqKnnQuery):
            q = self._sequence(query.seq)
            window = query.window if query.window is not None else q.shape[0]
            idx = self.subseq_index(query.relation, window)
            spec = QuerySpec(
                kind="subseq_knn", series=q, k=query.k, window=window,
                budget=self._build_budget(query.budget_ms),
            )
            try:
                return idx.plan(spec)
            except ValueError as ex:
                raise QueryError(str(ex)) from None
        if isinstance(query, DistQuery):
            a = self._sequence(query.seq_a)
            b = self._sequence(query.seq_b)
            if a.shape != b.shape:
                raise QueryError(
                    f"DIST requires equal lengths, got {a.shape[0]} and {b.shape[0]}"
                )
            t = self._build_transform(query.using, a.shape[0])
            return dist_plan(a, b, transformation=t, symmetric=True)
        raise QueryError(f"unsupported query node {type(query).__name__}")

    def run(self, query: Query) -> Any:
        """Execute a pre-parsed query AST through the plan API."""
        if isinstance(query, HealthQuery):
            return self.engine(query.relation).health().as_dict()
        if isinstance(query, ExplainQuery):
            plan = self._compile(query.query)
            if query.analyze:
                self._execute_plan(plan)
            return plan.explain()
        return self._execute_plan(self._compile(query))

    @staticmethod
    def _execute_plan(plan):
        """Run a compiled plan under the language's error contract.

        Compile-time validation catches malformed statements, but any
        residual execute-time ``ValueError`` — and a blown ``BUDGET``
        deadline — must still surface as :class:`QueryError`, the
        boundary the CLI (and every language caller) handles.
        """
        try:
            return plan.execute()
        except QueryBudgetExceeded as ex:
            raise QueryError(str(ex)) from None
        except ValueError as ex:
            raise QueryError(str(ex)) from None

    @staticmethod
    def _build_budget(budget_ms: Optional[float]) -> Optional[ResourceBudget]:
        if budget_ms is None:
            return None
        return ResourceBudget(deadline_ms=budget_ms)

    # -- helpers ----------------------------------------------------------
    def _sequence(self, name: str) -> np.ndarray:
        if name not in self._sequences:
            raise QueryError(f"unknown sequence {name!r}")
        return self._sequences[name]

    def _build_transform(
        self, expr: Optional[TransformExpr], n: int
    ) -> Optional[Transformation]:
        if expr is None:
            return None
        result: Optional[Transformation] = None
        for call in expr.calls:
            t = self._resolve_call(call, n)
            result = t if result is None else result.then(t)
        return result

    def _resolve_call(self, call: TransformCall, n: int) -> Transformation:
        if call.name in self._transforms:
            if call.args:
                raise QueryError(
                    f"bound transformation {call.name!r} takes no arguments"
                )
            t = self._transforms[call.name]
            if t.n != n:
                raise QueryError(
                    f"transformation {call.name!r} has length {t.n}, need {n}"
                )
            return t
        if call.name in _BUILTINS:
            arity, factory = _BUILTINS[call.name]
            if len(call.args) != arity:
                raise QueryError(
                    f"{call.name} expects {arity} argument(s), got {len(call.args)}"
                )
            try:
                return factory(n, *call.args)
            except ValueError as ex:
                raise QueryError(f"{call.name}: {ex}") from None
        raise QueryError(f"unknown transformation {call.name!r}")
