"""Goldin-Kanellakis normal form (Eq. 9).

The normal form of a sequence subtracts its mean and divides by its
standard deviation, making similarity invariant under shift and (positive)
scale.  The paper's Section 5 pipeline normalises every series before
computing DFT coefficients and stores the mean and standard deviation as
two extra index dimensions, which is what
:class:`repro.core.features.NormalFormSpace` reproduces.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]

#: Standard deviation below which a series is considered constant.
_STD_FLOOR = 1e-12


def normal_form(series: ArrayLike) -> np.ndarray:
    """``(x - mean(x)) / std(x)`` (Eq. 9).

    A constant series has no well-defined normal form under Eq. 9 (its
    standard deviation is zero); following [GK95] practice it normalises to
    the all-zero sequence.
    """
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValueError(f"series must be a non-empty 1-D array, got shape {x.shape}")
    sd = float(np.std(x))
    if sd < _STD_FLOOR:
        return np.zeros_like(x)
    return (x - float(np.mean(x))) / sd


def normal_form_many(matrix: ArrayLike) -> np.ndarray:
    """Row-wise :func:`normal_form` of an ``(m, n)`` matrix, batched.

    Constant rows (std below the floor) normalise to all-zero rows, exactly
    like the scalar path.  An empty ``(0, n)`` matrix yields ``(0, n)``.
    """
    rows = np.asarray(matrix, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[1] == 0:
        raise ValueError(
            f"matrix must be 2-D with non-empty rows, got shape {rows.shape}"
        )
    means = np.mean(rows, axis=1, keepdims=True)
    stds = np.std(rows, axis=1, keepdims=True)
    constant = stds < _STD_FLOOR
    safe_stds = np.where(constant, 1.0, stds)
    out = (rows - means) / safe_stds
    out[constant[:, 0]] = 0.0
    return out


def mean_std_many(matrix: ArrayLike) -> np.ndarray:
    """Row-wise :func:`mean_std` as an ``(m, 2)`` matrix, batched."""
    rows = np.asarray(matrix, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[1] == 0:
        raise ValueError(
            f"matrix must be 2-D with non-empty rows, got shape {rows.shape}"
        )
    return np.column_stack([np.mean(rows, axis=1), np.std(rows, axis=1)])


def denormalize(normal: ArrayLike, mean: float, std: float) -> np.ndarray:
    """Invert :func:`normal_form` given the original mean and std."""
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    z = np.asarray(normal, dtype=np.float64)
    return z * std + mean


def is_normal_form(series: ArrayLike, tol: float = 1e-8) -> bool:
    """True when the series already has mean 0 and std 1 (or is all zero)."""
    x = np.asarray(series, dtype=np.float64)
    if np.allclose(x, 0.0, atol=tol):
        return True
    return bool(abs(float(np.mean(x))) <= tol and abs(float(np.std(x)) - 1.0) <= tol)


def mean_std(series: ArrayLike) -> tuple[float, float]:
    """The ``(mean, std)`` pair stored in the index's first two dimensions."""
    x = np.asarray(series, dtype=np.float64)
    return float(np.mean(x)), float(np.std(x))
