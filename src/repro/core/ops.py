"""Physical query operators — the executable half of the plan API.

A compiled :class:`~repro.core.plan.PhysicalPlan` is a small tree of the
operators in this module.  Each operator owns one phase of the paper's
query pipeline and exposes the same two-method surface:

* ``execute(ctx)`` — run the operator (and its inputs) against an
  :class:`ExecContext`, returning its results;
* ``explain()`` — a JSON-friendly description of what the operator would
  do (access path, parameters, children), plus the :class:`IOStats` delta
  it incurred if it has already run.

The operators mirror the paper's three-phase shape (Section 4 /
Algorithm 2):

* :class:`IndexProbe` / :class:`BatchIndexProbe` — phase 2, the search
  over the transformed R-tree view (Algorithm 1), producing candidate
  record ids;
* :class:`Verify` — phase 3, exact-distance post-processing of candidate
  ids with matrix-level early abandoning (no false positives);
* :class:`SeqScan` — the competing access path: the tuned
  frequency-domain sequential scan of Section 5 (Figures 10-12);
* :class:`KnnSearch` — the multi-step k-NN search, where probing and
  verification interleave and cannot be split into separate operators;
* :class:`PairJoin` — the Table-1 all-pairs strategies;
* :class:`DistCompute` — a leaf evaluating one exact distance.

Every operator captures the per-operator :class:`IOStats` delta of its
most recent execution (inclusive of its children), so ``EXPLAIN`` after a
run reports where candidates, distance computations and node reads were
spent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:
    from repro.storage.budget import ResourceBudget
    from repro.storage.stats import IOStats

from repro.rtree.backend import xp

from repro.core import queries as q
from repro.core.transforms import Transformation
from repro.rtree.kernel import FrontierStats
from repro.scan import scan_knn, scan_range, scan_range_many

Match = tuple[int, float]


class ExecContext:
    """Everything an operator needs at run time.

    Args:
        engine: the :class:`~repro.core.engine.SimilarityEngine` whose
            relation/index the plan runs against; ``None`` only for plans
            that touch no relation (``DIST``).
        budget: optional :class:`~repro.storage.budget.ResourceBudget`
            governing this execution; operators hand it to the kernel's
            frontier loops and charge verified candidates against it.
    """

    def __init__(
        self,
        engine: Optional[Any] = None,
        budget: Optional["ResourceBudget"] = None,
    ) -> None:
        self.engine = engine
        self.budget = budget

    @property
    def stats(self) -> Optional["IOStats"]:
        return None if self.engine is None else self.engine.stats


def _live_executor(engine: Optional[Any]):
    """The engine's *already-constructed* kernel executor, or ``None``.

    Supervision capture must not construct an executor as a side effect —
    ``SimilarityEngine.executor`` is a lazily-building property, so this
    peeks at the backing ``_executor`` slot instead (and at the plain
    ``executor`` attribute an ST-index carries).
    """
    if engine is None:
        return None
    return getattr(engine, "_executor", None) or engine.__dict__.get("executor")


class Operator(ABC):
    """Base class: uniform ``execute``/``explain`` plus IOStats capture."""

    def __init__(self) -> None:
        self.children: list[Operator] = []
        #: IOStats delta of the last execution (inclusive of children);
        #: ``None`` until the operator has run.
        self.io: Optional[dict] = None
        #: frontier counters of the last kernel-backed traversal
        #: (``nodes_expanded`` / ``entries_scanned`` / ``frontier_peak``);
        #: ``None`` until a kernel-backed operator has run.
        self.frontier: Optional[FrontierStats] = None
        #: what the execution supervisor had to do during the last run
        #: (inclusive of children): serial ``retries`` of failed blocks,
        #: ``watchdog_trips``, and whether the circuit breaker now forces
        #: ``degraded_to_serial``.  ``None`` when nothing happened — the
        #: overwhelmingly common case, kept out of EXPLAIN output.
        self.supervision: Optional[dict] = None

    def execute(self, ctx: ExecContext) -> Any:
        """Run the operator, capturing its (inclusive) IOStats delta."""
        before = None if ctx.stats is None else ctx.stats.snapshot()
        executor = _live_executor(ctx.engine)
        sup_before = (
            None
            if executor is None
            else (executor.retries, executor.watchdog_trips)
        )
        result = self._execute(ctx)
        if before is not None:
            after = ctx.stats.snapshot()
            self.io = {
                key: after[key] - before.get(key, 0)
                for key in after
                if after[key] - before.get(key, 0)
            }
        if sup_before is not None:
            retries = executor.retries - sup_before[0]
            trips = executor.watchdog_trips - sup_before[1]
            if retries or trips or executor.tripped:
                self.supervision = {
                    "retries": retries,
                    "watchdog_trips": trips,
                    "degraded_to_serial": executor.tripped,
                }
        return result

    @abstractmethod
    def _execute(self, ctx: ExecContext):
        """Operator-specific execution (stats capture handled by caller)."""

    def explain(self) -> dict:
        """JSON-friendly description: op name, parameters, children, IO."""
        out = {"op": type(self).__name__}
        out.update(self._describe())
        if self.io is not None:
            out["io"] = self.io
        if self.frontier is not None:
            out["frontier"] = self.frontier.as_dict()
        if self.supervision is not None:
            out["supervision"] = self.supervision
        if self.children:
            out["children"] = [child.explain() for child in self.children]
        return out

    def _describe(self) -> dict:
        return {}

    @staticmethod
    def _tname(t: Optional[Transformation]) -> Optional[str]:
        return None if t is None else t.name


# ----------------------------------------------------------------------
# access paths (phase 2)
# ----------------------------------------------------------------------
class IndexProbe(Operator):
    """Range search over the transformed index view (Algorithm 2, step 2).

    Produces the candidate record ids whose (transformed) feature points
    fall inside the query's search rectangle; Lemma 1 guarantees the set
    has no false dismissals.
    """

    def __init__(
        self,
        q_point: xp.ndarray,
        eps: float,
        transformation: Optional[Transformation] = None,
        aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
    ) -> None:
        super().__init__()
        self.q_point = q_point
        self.eps = eps
        self.transformation = transformation
        self.aux_bounds = aux_bounds

    def _execute(self, ctx: ExecContext) -> xp.ndarray:
        engine = ctx.engine
        view = q._make_view(engine.tree, engine.space, self.transformation)
        qrect = engine.space.search_rect(
            self.q_point, self.eps, aux_bounds=self.aux_bounds
        )
        self.frontier = FrontierStats()
        ids = view.search_ids(qrect, fstats=self.frontier, budget=ctx.budget)
        if ctx.budget is not None:
            ctx.budget.charge_candidates(int(ids.shape[0]), where="index probe")
        if ctx.stats is not None:
            ctx.stats.candidate_count += ids.shape[0]
        return ids

    def _describe(self) -> dict:
        return {
            "eps": self.eps,
            "transformation": self._tname(self.transformation),
            "aux_bounds": (
                None
                if self.aux_bounds is None
                else [[float(lo), float(hi)] for lo, hi in self.aux_bounds]
            ),
        }


class BatchIndexProbe(Operator):
    """Multi-query index probe sharing one tree descent across the batch.

    All query search rectangles traverse the tree together
    (:meth:`~repro.rtree.transformed.TransformedIndexView.search_many`):
    each node is read and transformed at most once per batch, and a
    subtree is visited with only the queries whose rectangles reach it.
    Candidate sets per query are identical to separate :class:`IndexProbe`
    runs.
    """

    def __init__(
        self,
        q_points: xp.ndarray,
        eps: float,
        transformation: Optional[Transformation] = None,
        aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
    ) -> None:
        super().__init__()
        self.q_points = q_points
        self.eps = eps
        self.transformation = transformation
        self.aux_bounds = aux_bounds

    def _execute(self, ctx: ExecContext) -> list[xp.ndarray]:
        engine = ctx.engine
        space = engine.space
        view = q._make_view(engine.tree, space, self.transformation)
        qlows, qhighs = space.search_rect_many(
            self.q_points, self.eps, aux_bounds=self.aux_bounds
        )
        self.frontier = FrontierStats()
        id_lists = view.search_many(
            qlows, qhighs, fstats=self.frontier, budget=ctx.budget,
            executor=getattr(engine, "executor", None),
        )
        out = [xp.asarray(ids, dtype=xp.intp) for ids in id_lists]
        if ctx.budget is not None:
            ctx.budget.charge_candidates(
                sum(int(a.shape[0]) for a in out), where="batch index probe"
            )
        if ctx.stats is not None:
            ctx.stats.candidate_count += sum(a.shape[0] for a in out)
        return out

    def _describe(self) -> dict:
        return {
            "queries": int(self.q_points.shape[0]),
            "eps": self.eps,
            "transformation": self._tname(self.transformation),
            "shared_descent": True,
        }


class SeqScan(Operator):
    """The tuned frequency-domain sequential scan (Section 5's competitor).

    A complete access path on its own: scanning the relation of spectra
    with early-abandoning distances both filters and verifies, so no
    separate :class:`Verify` stage follows it.  Handles range and k-NN,
    single queries and batches (the batch path hoists the transformation
    over the relation once).
    """

    def __init__(
        self,
        kind: str,
        query_spectra: xp.ndarray,
        eps: Optional[float] = None,
        k: Optional[int] = None,
        transformation: Optional[Transformation] = None,
        batch: bool = False,
    ) -> None:
        super().__init__()
        self.kind = kind
        self.query_spectra = query_spectra
        self.eps = eps
        self.k = k
        self.transformation = transformation
        self.batch = batch

    def _execute(self, ctx: ExecContext):
        engine = ctx.engine
        spectra = engine.ground_spectra
        if ctx.budget is not None:
            # The scan is one fused pass; the deadline is checked at entry
            # (its runtime is bounded by the relation, not the query).
            ctx.budget.check(where="seq scan")
        if self.kind == "range":
            if self.batch:
                return scan_range_many(
                    spectra, self.query_spectra, self.eps,
                    transformation=self.transformation, stats=ctx.stats,
                )
            return scan_range(
                spectra, self.query_spectra, self.eps,
                transformation=self.transformation, stats=ctx.stats,
            )
        if self.batch:
            return [
                scan_knn(
                    spectra, q_spec, self.k,
                    transformation=self.transformation, stats=ctx.stats,
                )
                for q_spec in self.query_spectra
            ]
        return scan_knn(
            spectra, self.query_spectra, self.k,
            transformation=self.transformation, stats=ctx.stats,
        )

    def _describe(self) -> dict:
        out = {
            "kind": self.kind,
            "transformation": self._tname(self.transformation),
            "early_abandon": True,
        }
        if self.eps is not None:
            out["eps"] = self.eps
        if self.k is not None:
            out["k"] = self.k
        if self.batch:
            out["queries"] = int(self.query_spectra.shape[0])
        return out


# ----------------------------------------------------------------------
# post-processing (phase 3)
# ----------------------------------------------------------------------
class Verify(Operator):
    """Exact-distance verification of index candidates (Algorithm 2, step 3).

    Fetches each candidate's full ground spectrum and checks the exact
    Euclidean distance with matrix-level early abandoning, guaranteeing no
    false positives.  Consumes a single candidate array (under
    :class:`IndexProbe`) or one array per query (under
    :class:`BatchIndexProbe`).
    """

    def __init__(
        self,
        child: Operator,
        query_spectra: xp.ndarray,
        eps: float,
        transformation: Optional[Transformation] = None,
    ) -> None:
        super().__init__()
        self.children = [child]
        self.query_spectra = query_spectra
        self.eps = eps
        self.transformation = transformation

    def _verify_one(
        self, ctx: ExecContext, ids: xp.ndarray, q_spec: xp.ndarray
    ) -> list[Match]:
        engine = ctx.engine
        if ctx.budget is not None:
            ctx.budget.check(where="verify round")
        kept, dists, abandoned = engine.space.ground_distances_within_many(
            engine.ground_spectra[ids], q_spec, self.eps, self.transformation
        )
        if ctx.stats is not None:
            ctx.stats.distance_computations += ids.shape[0]
            ctx.stats.verifications_completed += len(kept)
            ctx.stats.verifications_abandoned += abandoned
        out = [(int(ids[i]), float(d)) for i, d in zip(kept, dists)]
        out.sort(key=lambda m: (m[1], m[0]))
        return out

    def _execute(self, ctx: ExecContext):
        candidates = self.children[0].execute(ctx)
        if isinstance(candidates, list):  # batch: one id array per query
            return [
                self._verify_one(ctx, ids, self.query_spectra[i])
                for i, ids in enumerate(candidates)
            ]
        return self._verify_one(ctx, candidates, self.query_spectra)

    def _describe(self) -> dict:
        return {
            "eps": self.eps,
            "transformation": self._tname(self.transformation),
            "early_abandon": "matrix-blocked",
        }


# ----------------------------------------------------------------------
# composite searches
# ----------------------------------------------------------------------
class KnnSearch(Operator):
    """Multi-step exact k-NN over the transformed index.

    Probing and verification interleave (the stream of index entries in
    lower-bound order stops once the next bound exceeds the k-th best
    exact distance), so this is a single operator rather than a
    probe/verify pair.  Handles a single query or a batch sharing one
    transformed view.
    """

    def __init__(
        self,
        query_spectra: xp.ndarray,
        q_points: xp.ndarray,
        k: int,
        transformation: Optional[Transformation] = None,
        batch: bool = False,
    ) -> None:
        super().__init__()
        self.query_spectra = query_spectra
        self.q_points = q_points
        self.k = k
        self.transformation = transformation
        self.batch = batch

    def _execute(self, ctx: ExecContext):
        engine = ctx.engine
        if self.k == 0:
            # Defined once in the kernel: k == 0 is an empty answer, not an
            # error (matching k > |relation| returning all records).
            if not self.batch:
                return []
            return [[] for _ in range(self.q_points.shape[0])]
        if not self.batch:
            self.frontier = FrontierStats()
            return q.knn_query(
                engine.tree, engine.space, engine.ground_spectra,
                self.query_spectra, self.q_points, self.k,
                transformation=self.transformation, stats=ctx.stats,
                frontier_stats=self.frontier, budget=ctx.budget,
            )
        self.frontier = FrontierStats()
        return q.knn_query_fused(
            engine.tree, engine.space, engine.ground_spectra,
            self.query_spectra, self.q_points, self.k,
            transformation=self.transformation, stats=ctx.stats,
            frontier_stats=self.frontier, budget=ctx.budget,
            executor=getattr(engine, "executor", None),
        )

    def _describe(self) -> dict:
        out = {
            "k": self.k,
            "transformation": self._tname(self.transformation),
            "strategy": "multi-step best-first (probe/verify interleaved)",
        }
        if self.batch:
            out["queries"] = int(self.q_points.shape[0])
            out["fused_frontier"] = True
        return out


class PairJoin(Operator):
    """All-pairs similarity self-join — the four strategies of Table 1.

    Methods: ``"scan"`` (Table 1's *a*), ``"scan-abandon"`` (*b*),
    ``"index"`` (*c*/*d*), ``"tree-join"`` (synchronized-descent
    ablation).
    """

    def __init__(
        self,
        eps: float,
        transformation: Optional[Transformation] = None,
        method: str = "index",
    ) -> None:
        super().__init__()
        self.eps = eps
        self.transformation = transformation
        self.method = method

    def _execute(self, ctx: ExecContext) -> list[tuple[int, int, float]]:
        engine = ctx.engine
        spectra = engine.ground_spectra
        if ctx.budget is not None:
            ctx.budget.check(where="pair join")
        if self.method == "scan":
            return q.all_pairs_scan(
                spectra, self.eps, self.transformation,
                early_abandon=False, stats=ctx.stats,
            )
        if self.method == "scan-abandon":
            return q.all_pairs_scan(
                spectra, self.eps, self.transformation,
                early_abandon=True, stats=ctx.stats,
            )
        if self.method == "index":
            self.frontier = FrontierStats()
            return q.all_pairs_index(
                engine.tree, engine.space, spectra, engine.points,
                self.eps, self.transformation, stats=ctx.stats,
                frontier_stats=self.frontier,
                executor=getattr(engine, "executor", None),
            )
        if self.method == "tree-join":
            return q.all_pairs_tree_join(
                engine.tree, engine.space, spectra,
                self.eps, self.transformation, stats=ctx.stats,
                executor=getattr(engine, "executor", None),
            )
        raise ValueError(f"unknown join method {self.method!r}")

    def _describe(self) -> dict:
        return {
            "eps": self.eps,
            "method": self.method,
            "transformation": self._tname(self.transformation),
        }


class SubseqRangeSearch(Operator):
    """Subsequence range search over an ST-index (the [FRM94] extension).

    Executes the fused columnar pipeline of
    :meth:`~repro.subseq.stindex.STIndex.range_query_batch` with the
    probe strategies the plan resolved at compile time — one reduction
    per query, ``"multipiece"`` (``p`` pieces at ``eps / sqrt(p)``) or
    ``"prefix"`` (the leading window at the full ``eps``).  Both are
    exact-answer candidate supersets; only latency differs.
    """

    def __init__(
        self,
        queries: Sequence[xp.ndarray],
        eps: float,
        strategies: Sequence[str],
        window: int,
        batch: bool = False,
    ) -> None:
        super().__init__()
        self.queries = list(queries)
        self.eps = eps
        self.strategies = list(strategies)
        self.window = window
        self.batch = batch

    def _execute(self, ctx: ExecContext):
        stindex = ctx.engine
        self.frontier = FrontierStats()
        results = stindex.range_query_batch(
            self.queries, self.eps, fstats=self.frontier,
            probe=self.strategies, budget=ctx.budget,
        )
        return results if self.batch else results[0]

    def _describe(self) -> dict:
        out = {
            "eps": self.eps,
            "window": self.window,
            "probe_strategies": self.strategies,
            "refine": "sliding-window matrix early-abandon",
        }
        if self.batch:
            out["queries"] = len(self.queries)
            out["fused_probe"] = True
        return out


class SubseqKnnSearch(Operator):
    """Subsequence k-NN: the k closest windows across all indexed series.

    A single multi-step operator (probe and verification interleave, as
    in :class:`KnnSearch`): the queries' prefix-window features drive the
    kernel's fused batched k-NN over the sub-trail *boxes*, every reached
    sub-trail fans out into its windows, and full-length exact distances
    feed the per-query pruning radii back into the traversal.
    """

    def __init__(
        self,
        queries: Sequence[xp.ndarray],
        k: int,
        window: int,
        batch: bool = False,
    ) -> None:
        super().__init__()
        self.queries = list(queries)
        self.k = k
        self.window = window
        self.batch = batch

    def _execute(self, ctx: ExecContext):
        stindex = ctx.engine
        self.frontier = FrontierStats()
        results = stindex.knn_query_batch(
            self.queries, self.k, fstats=self.frontier, budget=ctx.budget
        )
        return results if self.batch else results[0]

    def _describe(self) -> dict:
        out = {
            "k": self.k,
            "window": self.window,
            "strategy": (
                "multi-step best-first over sub-trail boxes "
                "(prefix features, shrinking radii)"
            ),
        }
        if self.batch:
            out["queries"] = len(self.queries)
            out["fused_frontier"] = True
        return out


class DistCompute(Operator):
    """Exact distance between two bound series (the language's ``DIST``).

    With ``symmetric`` the transformation applies to both sides (the
    Section-2 "their moving averages look the same" semantics the query
    language uses); otherwise only the first series is transformed.
    """

    def __init__(
        self,
        series_a: xp.ndarray,
        series_b: xp.ndarray,
        transformation: Optional[Transformation] = None,
        symmetric: bool = True,
    ) -> None:
        super().__init__()
        self.series_a = xp.asarray(series_a, dtype=xp.float64)
        self.series_b = xp.asarray(series_b, dtype=xp.float64)
        self.transformation = transformation
        self.symmetric = symmetric

    def _execute(self, ctx: ExecContext) -> float:
        a, b = self.series_a, self.series_b
        if self.transformation is not None:
            a = xp.asarray(self.transformation.apply_series(a), dtype=xp.float64)
            if self.symmetric:
                b = xp.asarray(
                    self.transformation.apply_series(b), dtype=xp.float64
                )
        return float(xp.linalg.norm(a - b))

    def _describe(self) -> dict:
        return {
            "transformation": self._tname(self.transformation),
            "symmetric": self.symmetric,
            "length": int(self.series_a.shape[0]),
        }
