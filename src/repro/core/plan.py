"""The unified query-plan API: ``QuerySpec`` → logical plan → operators.

Every similarity query in the system — range, k-NN, all-pairs join, exact
distance; single or batched; from Python, the query language, or the CLI
— is described by one :class:`QuerySpec` and answered through one
compiled :class:`PhysicalPlan`:

.. code-block:: python

    spec = QuerySpec(kind="range", series=q, eps=2.5,
                     transformation=moving_average(128, 20),
                     transform_query=True)
    plan = engine.plan(spec)
    print(plan.explain()["access_path"])   # "index" or "scan"
    matches = plan.execute()

Compilation follows the paper end to end:

1. **Preprocess** the query into the frequency domain (spectrum + feature
   point, transformed when ``transform_query`` asks for the symmetric
   semantics) — Algorithm 2's step 1.
2. **Choose the access path.**  With ``method="auto"`` the Figure-12
   selection applies: a sampling
   :class:`~repro.core.planner.SelectivityEstimator` predicts the
   candidate fraction the index filter would pass, and the query routes
   to the tuned sequential scan once that fraction exceeds the measured
   crossover (~0.15).  ``method="index"``/``"scan"`` force a path; join
   specs accept the Table-1 method names.
3. **Build the operator tree** —
   :class:`~repro.core.ops.IndexProbe`/:class:`~repro.core.ops.BatchIndexProbe`
   under a :class:`~repro.core.ops.Verify`, a standalone
   :class:`~repro.core.ops.SeqScan`, a
   :class:`~repro.core.ops.KnnSearch`, or a
   :class:`~repro.core.ops.PairJoin`.

Both access paths return the exact answer set (the estimator can only
affect latency, never correctness), which the parity tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.core import ops
from repro.core.planner import PROBE_STRATEGIES
from repro.core.transforms import Transformation
from repro.rtree.transformed import AffineMap
from repro.storage.budget import ResourceBudget
from repro.storage.manifest import CorruptIndexError

ArrayLike = Union[Sequence[float], np.ndarray]


def require_finite(values: ArrayLike, what: str) -> np.ndarray:
    """Admission check (REP005): reject NaN/inf query payloads.

    A NaN coordinate silently empties every probe rectangle it touches
    (all comparisons are false), turning a malformed query into a wrong
    — not failed — answer, so every public entry validates here before
    any I/O.
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{what} must be finite; got NaN or inf")
    return arr

#: Valid spec kinds.
KINDS = ("range", "knn", "join", "dist", "subseq_range", "subseq_knn")
#: The spec kinds compiled against an ST-index instead of an engine.
SUBSEQ_KINDS = ("subseq_range", "subseq_knn")
#: Access-path hints for range/knn specs.
ACCESS_HINTS = ("auto", "index", "scan")
#: Probe-strategy hints for subseq_range specs (one vocabulary,
#: owned by the planner and shared with the ST-index).
SUBSEQ_PROBES = PROBE_STRATEGIES
#: Join methods (Table 1 labels plus the tree-matching ablation).
JOIN_METHODS = ("scan", "scan-abandon", "index", "tree-join")


@dataclass
class QuerySpec:
    """A declarative description of one similarity query.

    Args:
        kind: ``"range"``, ``"knn"``, ``"join"`` or ``"dist"``.
        series: query payload — one series for a scalar range/k-NN query,
            an ``(m, n)`` matrix for a batched one, the first operand of a
            ``dist`` spec; unused for joins.
        other: second operand of a ``dist`` spec.
        eps: similarity threshold (range and join).
        k: neighbour count (k-NN).
        transformation: safe transformation applied to the data side.
        transform_query: apply the transformation to the query side too —
            the symmetric ``D(T(x), T(q))`` semantics of the paper's
            Section 2 examples (what the query language always uses).
        aux_bounds: optional intervals constraining auxiliary index
            dimensions ([GK95]-style shift/scale restrictions).
        method: access-path hint — ``"auto"`` (planner decides),
            ``"index"``, ``"scan"``; joins take a Table-1 method name
            (``"auto"`` resolves to ``"index"``).
        window: the ST-index window a subsequence spec expects (checked
            against the index it compiles on; ``None`` accepts any).
        probe: probe-strategy hint for ``subseq_range`` specs —
            ``"auto"`` (the planner weighs piece count against prefix
            selectivity per query), ``"multipiece"`` or ``"prefix"``.
        budget: optional :class:`~repro.storage.budget.ResourceBudget`
            bounding the execution (deadline, candidate and frontier
            caps); re-armed on every ``execute()``.
    """

    kind: str
    series: Optional[ArrayLike] = None
    other: Optional[ArrayLike] = None
    eps: Optional[float] = None
    k: Optional[int] = None
    transformation: Optional[Transformation] = None
    transform_query: bool = False
    aux_bounds: Optional[Sequence[tuple[float, float]]] = None
    method: str = "auto"
    window: Optional[int] = None
    probe: str = "auto"
    budget: Optional[ResourceBudget] = None


@dataclass
class LogicalPlan:
    """The compile-time routing decision EXPLAIN reports."""

    kind: str
    access_path: str
    method_hint: str
    batch: bool = False
    estimated_fraction: Optional[float] = None
    crossover_fraction: Optional[float] = None
    #: per-query probe decisions of a subsequence plan (ProbeChoice dicts).
    probe_choices: Optional[list[dict]] = None
    #: the access path the planner *wanted* but had to abandon because a
    #: component failed validation (``"frozen-kernel"``, ``"index"``, or a
    #: join method); ``None`` on a healthy engine.
    degraded_from: Optional[str] = None
    reason: str = ""


class PhysicalPlan:
    """A compiled, executable, explainable query plan.

    Obtained from :meth:`SimilarityEngine.plan`; ``execute()`` runs the
    operator tree against the engine and ``explain()`` reports the chosen
    access path, the selectivity estimate behind it, and (after a run)
    per-operator IOStats.
    """

    def __init__(
        self,
        root: ops.Operator,
        ctx: ops.ExecContext,
        logical: LogicalPlan,
        spec: QuerySpec,
    ) -> None:
        self.root = root
        self.ctx = ctx
        self.logical = logical
        self.spec = spec

    def execute(self) -> Any:
        """Run the plan; the result type matches the spec kind."""
        if self.ctx.budget is not None:
            self.ctx.budget.start()
        return self.root.execute(self.ctx)

    def explain(self) -> dict:
        """The plan as a JSON-friendly dict (``EXPLAIN`` output)."""
        spec, logical = self.spec, self.logical
        out = {
            "kind": spec.kind,
            "access_path": logical.access_path,
            "method_hint": logical.method_hint,
            "batch": logical.batch,
            "estimated_candidate_fraction": logical.estimated_fraction,
            "crossover_fraction": logical.crossover_fraction,
            "degraded_from": logical.degraded_from,
            "budget": None if spec.budget is None else spec.budget.as_dict(),
            "reason": logical.reason,
            "eps": spec.eps,
            "k": spec.k,
            "transformation": (
                None if spec.transformation is None else spec.transformation.name
            ),
            "transform_query": spec.transform_query,
            "executor": self._executor_info(),
            "plan": self.root.explain(),
        }
        if spec.kind in SUBSEQ_KINDS:
            out["window"] = spec.window
        if logical.probe_choices is not None:
            # One ProbeChoice dict per query; scalar plans report it flat.
            out["probe"] = (
                logical.probe_choices
                if logical.batch
                else logical.probe_choices[0]
            )
        return out

    def _executor_info(self) -> Optional[dict]:
        """The engine's kernel-executor configuration, for EXPLAIN.

        ``None`` for engine-less plans (``DIST``); otherwise the worker
        count / sharding mode the parallel layer would run fused batches
        with (``mode: "serial"`` is the default single-thread path) plus
        the execution supervisor's live state — cumulative ``retries``
        and, once the circuit breaker has tripped,
        ``degraded_to_serial``/``breaker_reason``.  Read at explain time,
        not compile time, so EXPLAIN ANALYZE (explain after execute)
        reflects any supervision the run needed.
        """
        executor = getattr(self.ctx.engine, "executor", None)
        return None if executor is None else executor.describe()

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(kind={self.spec.kind!r}, "
            f"access_path={self.logical.access_path!r}, "
            f"root={type(self.root).__name__})"
        )


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def _mapping_for(engine, t: Optional[Transformation]) -> AffineMap:
    if t is None:
        return AffineMap.identity(engine.space.dim)
    return engine.space.affine_map(t)


def _route_range(
    engine, spec: QuerySpec, q_points: np.ndarray, batch: bool, estimator
) -> LogicalPlan:
    """Access-path selection for a range spec (Figure 12's crossover)."""
    logical = LogicalPlan(
        kind="range", access_path="index", method_hint=spec.method, batch=batch
    )
    failed = getattr(engine, "_index_failed", None)
    if failed:
        if spec.aux_bounds is not None:
            # A scan cannot apply aux-dimension bounds, so there is no
            # trusted path left for this query — fail typed.
            raise CorruptIndexError(
                f"aux_bounds need the index path, but the persisted index "
                f"failed validation: {failed}"
            )
        logical.access_path = "scan"
        logical.degraded_from = "index"
        logical.reason = f"index unavailable ({failed}); degraded to scan"
        return logical
    if spec.aux_bounds is not None:
        # Only the index path can apply [GK95]-style aux-dimension bounds;
        # a scan would silently return records outside them.
        if spec.method == "scan":
            raise ValueError(
                "the scan access path cannot apply aux_bounds; "
                "use method='index' or 'auto'"
            )
        logical.reason = (
            "aux_bounds constrain index dimensions; only the index path "
            "applies them"
        )
        return logical
    if spec.method in ("index", "scan"):
        logical.access_path = spec.method
        logical.reason = "access path forced by method hint"
        return logical
    if len(engine.relation) == 0:
        logical.reason = "empty relation"
        return logical
    pts = q_points if batch else q_points[None, :]
    if pts.shape[0] == 0:
        logical.reason = "empty query batch"
        return logical
    if estimator is None:
        estimator = engine.estimator
    mapping = _mapping_for(engine, spec.transformation)
    fractions = [
        estimator.fraction(engine.space, pts[i], spec.eps, mapping)
        for i in range(pts.shape[0])
    ]
    fraction = float(np.mean(fractions))
    logical.estimated_fraction = fraction
    logical.crossover_fraction = estimator.crossover_fraction
    if fraction > estimator.crossover_fraction:
        logical.access_path = "scan"
        logical.reason = (
            f"estimated candidate fraction {fraction:.3f} exceeds the "
            f"Figure-12 crossover {estimator.crossover_fraction:.3f}"
        )
    else:
        logical.reason = (
            f"estimated candidate fraction {fraction:.3f} within the "
            f"index's winning regime"
        )
    return logical


def compile_spec(engine, spec: QuerySpec, estimator=None) -> PhysicalPlan:
    """Compile a :class:`QuerySpec` against an engine.

    Raises:
        ValueError: on an unknown kind/method, a missing required field,
            or a malformed payload — at compile time, before any I/O.
    """
    if spec.kind not in KINDS:
        raise ValueError(f"unknown query kind {spec.kind!r}; expected one of {KINDS}")
    if spec.kind in SUBSEQ_KINDS:
        # Subsequence specs compile against an ST-index, not an engine —
        # falling through here would silently run a whole-sequence query.
        raise ValueError(
            f"a {spec.kind!r} spec compiles against an ST-index: use "
            "STIndex.plan(spec) (e.g. engine.subseq_index(window).plan(spec))"
        )
    ctx = ops.ExecContext(engine, budget=spec.budget)
    if spec.kind == "dist":
        return _compile_dist(spec, ctx)
    if spec.kind == "join":
        return _compile_join(spec, ctx)
    if spec.series is None:
        raise ValueError(f"a {spec.kind!r} spec requires a query series")
    rows = require_finite(spec.series, "query series")
    batch = rows.ndim == 2
    if batch:
        q_specs, q_points = engine._query_reps_batch(
            rows, spec.transformation, spec.transform_query
        )
    else:
        q_specs, q_points = engine._query_reps(
            rows, spec.transformation, spec.transform_query
        )
    if spec.kind == "range":
        if spec.eps is None:
            raise ValueError("a 'range' spec requires eps")
        if not np.isfinite(spec.eps):
            raise ValueError(f"eps must be finite, got {spec.eps}")
        if spec.method not in ACCESS_HINTS:
            raise ValueError(
                f"unknown method {spec.method!r}; expected one of {ACCESS_HINTS}"
            )
        logical = _route_range(engine, spec, q_points, batch, estimator)
        _note_kernel_degradation(engine, logical)
        if logical.access_path == "scan":
            root: ops.Operator = ops.SeqScan(
                "range", q_specs, eps=spec.eps,
                transformation=spec.transformation, batch=batch,
            )
        else:
            probe_cls = ops.BatchIndexProbe if batch else ops.IndexProbe
            probe = probe_cls(
                q_points, spec.eps,
                transformation=spec.transformation, aux_bounds=spec.aux_bounds,
            )
            root = ops.Verify(
                probe, q_specs, spec.eps, transformation=spec.transformation
            )
        return PhysicalPlan(root, ctx, logical, spec)

    # kind == "knn"
    if spec.k is None or spec.k < 0:
        # k == 0 is a valid (empty) query; the kernel defines the edge
        # cases k == 0, k > |relation| and an empty relation uniformly.
        raise ValueError(f"a 'knn' spec requires non-negative k, got {spec.k}")
    if spec.method not in ACCESS_HINTS:
        raise ValueError(
            f"unknown method {spec.method!r}; expected one of {ACCESS_HINTS}"
        )
    logical = LogicalPlan(
        kind="knn", access_path="index", method_hint=spec.method, batch=batch
    )
    failed = getattr(engine, "_index_failed", None)
    if spec.method == "scan" or failed:
        logical.access_path = "scan"
        if spec.method == "scan":
            logical.reason = "access path forced by method hint"
        else:
            logical.degraded_from = "index"
            logical.reason = f"index unavailable ({failed}); degraded to scan"
        root = ops.SeqScan(
            "knn", q_specs, k=spec.k,
            transformation=spec.transformation, batch=batch,
        )
    else:
        logical.reason = (
            "k-NN has no eps to estimate selectivity from; "
            "multi-step index search is the default"
        )
        _note_kernel_degradation(engine, logical)
        root = ops.KnnSearch(
            q_specs, q_points, spec.k,
            transformation=spec.transformation, batch=batch,
        )
    return PhysicalPlan(root, ctx, logical, spec)


def _note_kernel_degradation(engine, logical: LogicalPlan) -> None:
    """Record the frozen-kernel → reference-path downgrade in the plan.

    When a loaded engine's columnar image failed validation the tree's
    ``_kernel_disabled`` flag makes every query path fall back to the
    node-object reference traversal; the plan stays on the index access
    path but EXPLAIN must say so.
    """
    if logical.access_path not in ("index",):
        return
    if getattr(engine.tree, "_kernel_disabled", False):
        logical.degraded_from = "frozen-kernel"
        logical.reason += (
            "; columnar kernel failed validation — "
            "node-object reference traversal"
        )


def _compile_join(spec: QuerySpec, ctx: ops.ExecContext) -> PhysicalPlan:
    if spec.eps is None:
        raise ValueError("a 'join' spec requires eps")
    if not np.isfinite(spec.eps):
        raise ValueError(f"eps must be finite, got {spec.eps}")
    method = "index" if spec.method == "auto" else spec.method
    if method not in JOIN_METHODS:
        raise ValueError(
            f"unknown method {spec.method!r}; expected 'scan', 'scan-abandon', "
            "'index' or 'tree-join'"
        )
    logical = LogicalPlan(
        kind="join",
        access_path=method,
        method_hint=spec.method,
        reason="Table-1 join strategy",
    )
    failed = getattr(ctx.engine, "_index_failed", None)
    if failed and method in ("index", "tree-join"):
        logical.degraded_from = method
        method = "scan-abandon"
        logical.access_path = method
        logical.reason = (
            f"index unavailable ({failed}); degraded to scan-abandon"
        )
    else:
        _note_kernel_degradation(ctx.engine, logical)
    root = ops.PairJoin(spec.eps, transformation=spec.transformation, method=method)
    return PhysicalPlan(root, ctx, logical, spec)


def _compile_dist(spec: QuerySpec, ctx: ops.ExecContext) -> PhysicalPlan:
    if spec.series is None or spec.other is None:
        raise ValueError("a 'dist' spec requires both series and other")
    a = require_finite(spec.series, "series")
    b = require_finite(spec.other, "other")
    if a.shape != b.shape:
        raise ValueError(f"dist requires equal lengths, got {a.shape} and {b.shape}")
    logical = LogicalPlan(
        kind="dist", access_path="compute", method_hint=spec.method,
        reason="exact distance evaluation",
    )
    root = ops.DistCompute(
        a, b, transformation=spec.transformation, symmetric=spec.transform_query
    )
    return PhysicalPlan(root, ctx, logical, spec)


def compile_subseq_spec(stindex, spec: QuerySpec) -> PhysicalPlan:
    """Compile a subsequence spec against an ST-index.

    The subsequence counterpart of :func:`compile_spec`:
    ``"subseq_range"`` resolves one probe strategy per query at compile
    time (FRM94's multipiece split vs longest-prefix search — the
    planner's :class:`~repro.core.planner.SubseqProbePlanner` weighs
    piece count against prefix selectivity under ``probe="auto"``), and
    ``"subseq_knn"`` builds the multi-step k-closest-windows search.
    ``EXPLAIN`` reports the decision without executing — which is why
    ``probe="auto"`` featurizes each query's pieces here, at compile
    time (one small FFT per query), in addition to the fused
    featurization the probe itself performs at execute; the resolved
    strategies are handed to the operator, so what runs is exactly what
    ``EXPLAIN`` reported.

    Raises:
        ValueError: on an unknown kind/probe, a missing required field, a
            malformed payload, or a ``window`` mismatching the index.
    """
    from repro.core.planner import ProbeChoice

    if spec.kind not in SUBSEQ_KINDS:
        raise ValueError(
            f"unknown subsequence kind {spec.kind!r}; expected one of "
            f"{SUBSEQ_KINDS}"
        )
    if spec.series is None:
        raise ValueError(f"a {spec.kind!r} spec requires a query series")
    if spec.window is not None and spec.window != stindex.window:
        raise ValueError(
            f"spec window {spec.window} != index window {stindex.window}"
        )
    series = spec.series
    # A batch is a sequence of sequences (possibly ragged — subsequence
    # queries may have different lengths), a scalar spec one flat series.
    # Materialise non-array input once so iterators/generators survive.
    if isinstance(series, np.ndarray):
        batch = series.ndim != 1
        raw = list(series) if batch else [series]
    else:
        seq = list(series)
        batch = len(seq) == 0 or isinstance(
            seq[0], (list, tuple, np.ndarray)
        )
        raw = seq if batch else [seq]
    qs = [np.asarray(q, dtype=np.float64) for q in raw]
    ctx = ops.ExecContext(stindex, budget=spec.budget)

    if spec.kind == "subseq_range":
        if spec.eps is None:
            raise ValueError("a 'subseq_range' spec requires eps")
        if spec.probe not in SUBSEQ_PROBES:
            raise ValueError(
                f"unknown probe {spec.probe!r}; expected one of {SUBSEQ_PROBES}"
            )
        # Validate every query at compile time on every probe path, so a
        # plan EXPLAIN reports is always one that can run.
        for q in qs:
            stindex._check_query(q, spec.eps)
        if spec.probe == "auto":
            choices = [stindex.choose_probe(q, spec.eps) for q in qs]
            reason = "probe strategy chosen per query by selectivity"
        else:
            choices = [
                ProbeChoice(
                    strategy=spec.probe,
                    pieces=q.shape[0] // stindex.window,
                    reason="probe strategy forced by hint",
                )
                for q in qs
            ]
            reason = "probe strategy forced by hint"
        logical = LogicalPlan(
            kind="subseq_range",
            access_path="st-index",
            method_hint=spec.probe,
            batch=batch,
            probe_choices=[c.as_dict() for c in choices],
            reason=reason,
        )
        root: ops.Operator = ops.SubseqRangeSearch(
            qs, spec.eps, [c.strategy for c in choices],
            window=stindex.window, batch=batch,
        )
        return PhysicalPlan(root, ctx, logical, spec)

    # kind == "subseq_knn"
    if spec.k is None or spec.k < 0:
        raise ValueError(
            f"a 'subseq_knn' spec requires non-negative k, got {spec.k}"
        )
    for q in qs:
        stindex._check_query(q)
    logical = LogicalPlan(
        kind="subseq_knn",
        access_path="st-index",
        method_hint=spec.method,
        batch=batch,
        reason=(
            "multi-step best-first over sub-trail boxes "
            "(prefix-window features, per-query shrinking radii)"
        ),
    )
    root = ops.SubseqKnnSearch(qs, spec.k, window=stindex.window, batch=batch)
    return PhysicalPlan(root, ctx, logical, spec)


def dist_plan(
    series_a: ArrayLike,
    series_b: ArrayLike,
    transformation: Optional[Transformation] = None,
    symmetric: bool = True,
) -> PhysicalPlan:
    """A standalone distance plan needing no engine (the language's DIST)."""
    spec = QuerySpec(
        kind="dist", series=series_a, other=series_b,
        transformation=transformation, transform_query=symmetric,
    )
    return _compile_dist(spec, ops.ExecContext(None))
