"""Choosing between the index and the sequential scan per query.

Figure 12 of the paper shows the two access paths cross: the transformed
index wins while the answer set is selective, and the tuned sequential
scan wins once roughly a fifth to a third of the relation qualifies.  A
system that always uses the index therefore leaves performance on the
table for broad queries — the classic access-path-selection problem.

:class:`QueryPlanner` makes that choice with a sampling estimator:

1. keep a fixed random sample of the relation's feature points;
2. for a query, build the same search rectangle Algorithm 2 would use,
   map the sample through the transformation's affine map, and count how
   many sampled points fall inside — an unbiased estimate of the
   candidate fraction;
3. route the query to the scan when the estimated fraction exceeds
   ``crossover_fraction`` (default 0.15, the measured Figure-12 cross).

The estimator never affects correctness — both access paths return the
exact answer set (verified in the tests); only latency is at stake.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.engine import SimilarityEngine
from repro.core.transforms import Transformation
from repro.rtree.geometry import Rect, intersects_circular_many
from repro.rtree.transformed import AffineMap
from repro.scan import scan_range

ArrayLike = Union[Sequence[float], np.ndarray]


class QueryPlanner:
    """Access-path selection between Algorithm 2 and the tuned scan.

    Args:
        engine: the engine whose relation/index both paths share.
        sample_size: number of feature points sampled for estimation.
        crossover_fraction: candidate fraction above which the scan is
            predicted to win (Figure 12's crossover; tune per deployment).
        seed: sampling seed (fixed for reproducible plans).
    """

    def __init__(
        self,
        engine: SimilarityEngine,
        sample_size: int = 128,
        crossover_fraction: float = 0.15,
        seed: int = 0,
    ) -> None:
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if not 0.0 < crossover_fraction <= 1.0:
            raise ValueError(
                f"crossover_fraction must be in (0, 1], got {crossover_fraction}"
            )
        self.engine = engine
        self.crossover_fraction = crossover_fraction
        n = len(engine.relation)
        rng = np.random.default_rng(seed)
        take = min(sample_size, n)
        self._sample_ids = (
            rng.choice(n, size=take, replace=False) if take else np.empty(0, int)
        )
        self._sample_points = (
            engine.points[self._sample_ids] if take else np.empty((0, engine.space.dim))
        )

    # ------------------------------------------------------------------
    def estimate_candidate_fraction(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> float:
        """Estimated fraction of the relation the index filter would pass."""
        if self._sample_points.shape[0] == 0:
            return 0.0
        space = self.engine.space
        mapping = (
            AffineMap.identity(space.dim)
            if transformation is None
            else space.affine_map(transformation)
        )
        _, q_point = self.engine._query_reps(series, transformation, transform_query)
        qrect = space.search_rect(q_point, eps)
        mapped = self._sample_points * mapping.scale + mapping.offset
        # Points are degenerate rectangles: lows == highs == mapped.
        hits = intersects_circular_many(
            mapped, mapped, qrect.lows, qrect.highs, space.circular_mask
        )
        return float(np.count_nonzero(hits)) / self._sample_points.shape[0]

    def choose(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> str:
        """``"index"`` or ``"scan"`` for this query."""
        fraction = self.estimate_candidate_fraction(
            series, eps, transformation, transform_query
        )
        return "scan" if fraction > self.crossover_fraction else "index"

    def execute(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> tuple[str, list[tuple[int, float]]]:
        """Run the range query through the chosen access path.

        Returns:
            ``(plan, matches)`` — the plan label and the exact answer set
            (identical whichever path ran).
        """
        plan = self.choose(series, eps, transformation, transform_query)
        if plan == "index":
            return plan, self.engine.range_query(
                series, eps, transformation=transformation,
                transform_query=transform_query,
            )
        q_spec, _ = self.engine._query_reps(series, transformation, transform_query)
        return plan, scan_range(
            self.engine.ground_spectra,
            q_spec,
            eps,
            transformation=transformation,
            stats=self.engine.stats,
        )
