"""Access-path selection between the index and the sequential scan.

Figure 12 of the paper shows the two access paths cross: the transformed
index wins while the answer set is selective, and the tuned sequential
scan wins once roughly a fifth to a third of the relation qualifies.  A
system that always uses the index therefore leaves performance on the
table for broad queries — the classic access-path-selection problem.

:class:`SelectivityEstimator` makes that call with a sampling estimator,
and is a *compile-time* component: :func:`repro.core.plan.compile_spec`
consults it whenever a :class:`~repro.core.plan.QuerySpec` carries the
``method="auto"`` hint, so every planner-routed entry point (Python,
query language, CLI, batch) shares one estimate.

1. keep a fixed random sample of the relation's feature points;
2. for a query, build the same search rectangle Algorithm 2 would use,
   map the sample through the transformation's affine map, and count how
   many sampled points fall inside — an unbiased estimate of the
   candidate fraction;
3. route the query to the scan when the estimated fraction exceeds
   ``crossover_fraction`` (default 0.15, the measured Figure-12 cross).

The estimator never affects correctness — both access paths return the
exact answer set (verified in the tests); only latency is at stake.

:class:`SubseqProbePlanner` is the subsequence analogue: for ST-index
queries longer than the window it chooses between FRM94's multipiece
reduction and the longest-prefix search by estimating each strategy's
expanded candidate count against a sample of the indexed *window*
feature points (see :meth:`repro.subseq.stindex.STIndex.choose_probe`).

:class:`QueryPlanner` is the pre-plan-API user-facing wrapper, kept as a
deprecated shim: it now builds a spec and routes through
``engine.plan(...)`` like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.core.transforms import Transformation
from repro.rtree.geometry import intersects_circular_many
from repro.rtree.transformed import AffineMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine → plan → here)
    from repro.core.engine import SimilarityEngine
    from repro.core.features import FeatureSpace

ArrayLike = Union[Sequence[float], np.ndarray]


class SelectivityEstimator:
    """Sampling estimate of the candidate fraction an index probe passes.

    Args:
        points: the relation's ``(m, dim)`` feature points to sample from.
        sample_size: number of feature points sampled for estimation.
        crossover_fraction: candidate fraction above which the scan is
            predicted to win (Figure 12's crossover; tune per deployment).
        seed: sampling seed (fixed for reproducible plans).
    """

    def __init__(
        self,
        points: np.ndarray,
        sample_size: int = 128,
        crossover_fraction: float = 0.15,
        seed: int = 0,
    ) -> None:
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if not 0.0 < crossover_fraction <= 1.0:
            raise ValueError(
                f"crossover_fraction must be in (0, 1], got {crossover_fraction}"
            )
        self.sample_size = sample_size
        self.crossover_fraction = crossover_fraction
        pts = np.asarray(points, dtype=np.float64)
        n = pts.shape[0]
        rng = np.random.default_rng(seed)
        take = min(sample_size, n)
        self._sample_ids = (
            rng.choice(n, size=take, replace=False) if take else np.empty(0, int)
        )
        self._sample_points = (
            pts[self._sample_ids]
            if take
            else np.empty((0, pts.shape[1] if pts.ndim == 2 else 0))
        )

    def fraction(
        self,
        space: "FeatureSpace",
        q_point: ArrayLike,
        eps: float,
        mapping: Optional[AffineMap] = None,
    ) -> float:
        """Estimated fraction of the relation the index filter would pass.

        Args:
            space: the feature space the sampled points live in.
            q_point: the query's feature point (already transformed when
                the symmetric semantics apply).
            eps: similarity threshold.
            mapping: affine map of the data-side transformation (identity
                when ``None``) — the sample is pushed through it exactly
                as Algorithm 1 pushes node MBRs.
        """
        if self._sample_points.shape[0] == 0:
            return 0.0
        if mapping is None:
            mapping = AffineMap.identity(space.dim)
        qrect = space.search_rect(np.asarray(q_point, dtype=np.float64), eps)
        mapped = self._sample_points * mapping.scale + mapping.offset
        # Points are degenerate rectangles: lows == highs == mapped.
        hits = intersects_circular_many(
            mapped, mapped, qrect.lows, qrect.highs, space.circular_mask
        )
        return float(np.count_nonzero(hits)) / self._sample_points.shape[0]

    def choose(
        self,
        space: "FeatureSpace",
        q_point: ArrayLike,
        eps: float,
        mapping: Optional[AffineMap] = None,
    ) -> str:
        """``"index"`` or ``"scan"`` for this query point."""
        fraction = self.fraction(space, q_point, eps, mapping)
        return "scan" if fraction > self.crossover_fraction else "index"


#: probe-strategy vocabulary for subsequence queries — the single source
#: of truth shared by the ST-index, the plan layer and the language.
PROBE_STRATEGIES = ("auto", "multipiece", "prefix")


@dataclass
class ProbeChoice:
    """The planner's probe-strategy decision for one subsequence query.

    ``EXPLAIN`` surfaces every field; ``strategy`` is what the ST-index
    executes (``"multipiece"`` or ``"prefix"``).
    """

    strategy: str
    pieces: int
    estimated_multipiece: Optional[float] = None
    estimated_prefix: Optional[float] = None
    reason: str = ""

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "pieces": self.pieces,
            "estimated_multipiece_candidates": self.estimated_multipiece,
            "estimated_prefix_candidates": self.estimated_prefix,
            "reason": self.reason,
        }


class SubseqProbePlanner:
    """Choose between FRM94's two long-query probe reductions.

    A subsequence query longer than the index window ``w`` can probe the
    ST-index two ways, both candidate supersets with no false dismissals:

    * **multipiece** — split into ``p = floor(L / w)`` disjoint pieces and
      search each at radius ``eps / sqrt(p)`` (narrow rectangles, but
      ``p`` of them, and their candidate sets union);
    * **prefix** — search only the leading window at the full radius
      ``eps`` (one wide rectangle).

    Which is cheaper is a selectivity question: the multipiece radius
    shrinks with ``p`` but every piece contributes candidates, while the
    prefix pays the undivided ``eps``.  The planner estimates each
    strategy's expanded candidate count against a fixed sample of the
    index's *window feature points* (the subsequence analogue of
    :class:`SelectivityEstimator`'s relation sample) and picks the
    smaller; ties and single-piece queries fall back to multipiece (the
    two coincide at ``p == 1``).

    Args:
        sample_points: ``(s, dim)`` sampled window feature points.
        total_windows: number of indexed windows the sample represents.
    """

    def __init__(self, sample_points: np.ndarray, total_windows: int) -> None:
        self._sample = np.asarray(sample_points, dtype=np.float64)
        self.total_windows = int(total_windows)

    def fraction(self, lo: np.ndarray, hi: np.ndarray) -> float:
        """Estimated fraction of indexed windows inside ``[lo, hi]``."""
        if self._sample.shape[0] == 0:
            return 0.0
        hits = np.all(self._sample >= lo, axis=1) & np.all(
            self._sample <= hi, axis=1
        )
        return float(np.count_nonzero(hits)) / self._sample.shape[0]

    def choose(
        self,
        piece_lows: np.ndarray,
        piece_highs: np.ndarray,
        prefix_lo: np.ndarray,
        prefix_hi: np.ndarray,
    ) -> ProbeChoice:
        """Pick a probe strategy given both reductions' search rectangles.

        Args:
            piece_lows, piece_highs: ``(p, dim)`` multipiece rectangles
                (radius ``eps / sqrt(p)``).
            prefix_lo, prefix_hi: the prefix rectangle (radius ``eps``).
        """
        pieces = int(piece_lows.shape[0])
        if pieces <= 1:
            return ProbeChoice(
                strategy="multipiece",
                pieces=pieces,
                reason="single-piece query: both reductions coincide",
            )
        w = self.total_windows
        est_multi = sum(
            self.fraction(piece_lows[j], piece_highs[j]) * w
            for j in range(pieces)
        )
        est_prefix = self.fraction(prefix_lo, prefix_hi) * w
        if est_prefix < est_multi:
            return ProbeChoice(
                strategy="prefix",
                pieces=pieces,
                estimated_multipiece=est_multi,
                estimated_prefix=est_prefix,
                reason=(
                    f"prefix search estimates {est_prefix:.1f} candidates vs "
                    f"{est_multi:.1f} across {pieces} pieces"
                ),
            )
        return ProbeChoice(
            strategy="multipiece",
            pieces=pieces,
            estimated_multipiece=est_multi,
            estimated_prefix=est_prefix,
            reason=(
                f"{pieces} pieces estimate {est_multi:.1f} candidates vs "
                f"{est_prefix:.1f} for the prefix"
            ),
        )


class QueryPlanner:
    """Deprecated user-facing wrapper around planner-routed execution.

    Kept for API compatibility; new code should build a
    :class:`~repro.core.plan.QuerySpec` with ``method="auto"`` and call
    :meth:`SimilarityEngine.plan` directly.

    Args:
        engine: the engine whose relation/index both paths share.
        sample_size: number of feature points sampled for estimation.
        crossover_fraction: see :class:`SelectivityEstimator`.
        seed: sampling seed (fixed for reproducible plans).
    """

    def __init__(
        self,
        engine: "SimilarityEngine",
        sample_size: int = 128,
        crossover_fraction: float = 0.15,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self._estimator = SelectivityEstimator(
            engine.points,
            sample_size=sample_size,
            crossover_fraction=crossover_fraction,
            seed=seed,
        )

    @property
    def crossover_fraction(self) -> float:
        return self._estimator.crossover_fraction

    # ------------------------------------------------------------------
    def _mapping(self, transformation: Optional[Transformation]) -> AffineMap:
        space = self.engine.space
        if transformation is None:
            return AffineMap.identity(space.dim)
        return space.affine_map(transformation)

    def estimate_candidate_fraction(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> float:
        """Estimated fraction of the relation the index filter would pass."""
        _, q_point = self.engine._query_reps(series, transformation, transform_query)
        return self._estimator.fraction(
            self.engine.space, q_point, eps, self._mapping(transformation)
        )

    def choose(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> str:
        """``"index"`` or ``"scan"`` for this query."""
        _, q_point = self.engine._query_reps(series, transformation, transform_query)
        return self._estimator.choose(
            self.engine.space, q_point, eps, self._mapping(transformation)
        )

    def execute(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> tuple[str, list[tuple[int, float]]]:
        """Run the range query through the chosen access path.

        Returns:
            ``(plan, matches)`` — the plan label and the exact answer set
            (identical whichever path ran).
        """
        from repro.core.plan import QuerySpec

        plan = self.engine.plan(
            QuerySpec(
                kind="range",
                series=series,
                eps=eps,
                transformation=transformation,
                transform_query=transform_query,
                method="auto",
            ),
            estimator=self._estimator,
        )
        return plan.logical.access_path, plan.execute()
