"""Access-path selection between the index and the sequential scan.

Figure 12 of the paper shows the two access paths cross: the transformed
index wins while the answer set is selective, and the tuned sequential
scan wins once roughly a fifth to a third of the relation qualifies.  A
system that always uses the index therefore leaves performance on the
table for broad queries — the classic access-path-selection problem.

:class:`SelectivityEstimator` makes that call with a sampling estimator,
and is a *compile-time* component: :func:`repro.core.plan.compile_spec`
consults it whenever a :class:`~repro.core.plan.QuerySpec` carries the
``method="auto"`` hint, so every planner-routed entry point (Python,
query language, CLI, batch) shares one estimate.

1. keep a fixed random sample of the relation's feature points;
2. for a query, build the same search rectangle Algorithm 2 would use,
   map the sample through the transformation's affine map, and count how
   many sampled points fall inside — an unbiased estimate of the
   candidate fraction;
3. route the query to the scan when the estimated fraction exceeds
   ``crossover_fraction`` (default 0.15, the measured Figure-12 cross).

The estimator never affects correctness — both access paths return the
exact answer set (verified in the tests); only latency is at stake.

:class:`QueryPlanner` is the pre-plan-API user-facing wrapper, kept as a
deprecated shim: it now builds a spec and routes through
``engine.plan(...)`` like everything else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.core.transforms import Transformation
from repro.rtree.geometry import intersects_circular_many
from repro.rtree.transformed import AffineMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine → plan → here)
    from repro.core.engine import SimilarityEngine
    from repro.core.features import FeatureSpace

ArrayLike = Union[Sequence[float], np.ndarray]


class SelectivityEstimator:
    """Sampling estimate of the candidate fraction an index probe passes.

    Args:
        points: the relation's ``(m, dim)`` feature points to sample from.
        sample_size: number of feature points sampled for estimation.
        crossover_fraction: candidate fraction above which the scan is
            predicted to win (Figure 12's crossover; tune per deployment).
        seed: sampling seed (fixed for reproducible plans).
    """

    def __init__(
        self,
        points: np.ndarray,
        sample_size: int = 128,
        crossover_fraction: float = 0.15,
        seed: int = 0,
    ) -> None:
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if not 0.0 < crossover_fraction <= 1.0:
            raise ValueError(
                f"crossover_fraction must be in (0, 1], got {crossover_fraction}"
            )
        self.sample_size = sample_size
        self.crossover_fraction = crossover_fraction
        pts = np.asarray(points, dtype=np.float64)
        n = pts.shape[0]
        rng = np.random.default_rng(seed)
        take = min(sample_size, n)
        self._sample_ids = (
            rng.choice(n, size=take, replace=False) if take else np.empty(0, int)
        )
        self._sample_points = (
            pts[self._sample_ids]
            if take
            else np.empty((0, pts.shape[1] if pts.ndim == 2 else 0))
        )

    def fraction(
        self,
        space: "FeatureSpace",
        q_point: ArrayLike,
        eps: float,
        mapping: Optional[AffineMap] = None,
    ) -> float:
        """Estimated fraction of the relation the index filter would pass.

        Args:
            space: the feature space the sampled points live in.
            q_point: the query's feature point (already transformed when
                the symmetric semantics apply).
            eps: similarity threshold.
            mapping: affine map of the data-side transformation (identity
                when ``None``) — the sample is pushed through it exactly
                as Algorithm 1 pushes node MBRs.
        """
        if self._sample_points.shape[0] == 0:
            return 0.0
        if mapping is None:
            mapping = AffineMap.identity(space.dim)
        qrect = space.search_rect(np.asarray(q_point, dtype=np.float64), eps)
        mapped = self._sample_points * mapping.scale + mapping.offset
        # Points are degenerate rectangles: lows == highs == mapped.
        hits = intersects_circular_many(
            mapped, mapped, qrect.lows, qrect.highs, space.circular_mask
        )
        return float(np.count_nonzero(hits)) / self._sample_points.shape[0]

    def choose(
        self,
        space: "FeatureSpace",
        q_point: ArrayLike,
        eps: float,
        mapping: Optional[AffineMap] = None,
    ) -> str:
        """``"index"`` or ``"scan"`` for this query point."""
        fraction = self.fraction(space, q_point, eps, mapping)
        return "scan" if fraction > self.crossover_fraction else "index"


class QueryPlanner:
    """Deprecated user-facing wrapper around planner-routed execution.

    Kept for API compatibility; new code should build a
    :class:`~repro.core.plan.QuerySpec` with ``method="auto"`` and call
    :meth:`SimilarityEngine.plan` directly.

    Args:
        engine: the engine whose relation/index both paths share.
        sample_size: number of feature points sampled for estimation.
        crossover_fraction: see :class:`SelectivityEstimator`.
        seed: sampling seed (fixed for reproducible plans).
    """

    def __init__(
        self,
        engine: "SimilarityEngine",
        sample_size: int = 128,
        crossover_fraction: float = 0.15,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self._estimator = SelectivityEstimator(
            engine.points,
            sample_size=sample_size,
            crossover_fraction=crossover_fraction,
            seed=seed,
        )

    @property
    def crossover_fraction(self) -> float:
        return self._estimator.crossover_fraction

    # ------------------------------------------------------------------
    def _mapping(self, transformation: Optional[Transformation]) -> AffineMap:
        space = self.engine.space
        if transformation is None:
            return AffineMap.identity(space.dim)
        return space.affine_map(transformation)

    def estimate_candidate_fraction(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> float:
        """Estimated fraction of the relation the index filter would pass."""
        _, q_point = self.engine._query_reps(series, transformation, transform_query)
        return self._estimator.fraction(
            self.engine.space, q_point, eps, self._mapping(transformation)
        )

    def choose(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> str:
        """``"index"`` or ``"scan"`` for this query."""
        _, q_point = self.engine._query_reps(series, transformation, transform_query)
        return self._estimator.choose(
            self.engine.space, q_point, eps, self._mapping(transformation)
        )

    def execute(
        self,
        series: ArrayLike,
        eps: float,
        transformation: Optional[Transformation] = None,
        transform_query: bool = False,
    ) -> tuple[str, list[tuple[int, float]]]:
        """Run the range query through the chosen access path.

        Returns:
            ``(plan, matches)`` — the plan label and the exact answer set
            (identical whichever path ran).
        """
        from repro.core.plan import QuerySpec

        plan = self.engine.plan(
            QuerySpec(
                kind="range",
                series=series,
                eps=eps,
                transformation=transformation,
                transform_query=transform_query,
                method="auto",
            ),
            estimator=self._estimator,
        )
        return plan.logical.access_path, plan.execute()
