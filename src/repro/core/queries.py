"""Query processing: Algorithm 2, multi-step k-NN, and the Table-1 joins.

Every function here follows the paper's three-phase shape:

1. **Preprocessing** — move the query and transformation into the frequency
   domain, truncate to the ``k`` indexed coefficients, build a search
   rectangle (Fig. 7's construction in the polar case).
2. **Search** — traverse the R-tree through a
   :class:`~repro.rtree.transformed.TransformedIndexView` (Algorithm 1),
   applying the safe transformation to every node on the way down.
3. **Post-processing** — fetch each candidate's full record and check its
   exact Euclidean distance (Eq. 12), guaranteeing no false positives;
   Lemma 1 guarantees the candidate set had no false dismissals.

The all-pairs functions implement the four strategies of the paper's
Table 1 (labelled ``a`` to ``d`` there) plus a tree-matching join.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.features import FeatureSpace
from repro.core.similarity import batch_euclidean_within, euclidean_early_abandon
from repro.core.transforms import Transformation
from repro.rtree.join import (
    index_nested_loop_join,
    index_nested_loop_join_pairs,
    tree_matching_join,
    tree_matching_join_pairs,
)
from repro.rtree.kernel import FrontierStats, cached_kernel
from repro.rtree.search import incremental_nearest
from repro.rtree.transformed import AffineMap, TransformedIndexView
from repro.storage.stats import IOStats

ArrayLike = Union[Sequence[float], np.ndarray]

#: A query answer: (record id, exact distance).
Match = tuple[int, float]


def _make_view(
    tree,
    space: FeatureSpace,
    transformation: Optional[Transformation],
) -> TransformedIndexView:
    """Transformed view with the tree's frozen columnar kernel attached.

    The kernel comes from the tree's cache (engines prewarm it at build;
    any insert/delete invalidates it).  Resolution goes through
    :func:`~repro.rtree.kernel.cached_kernel`, which defers the O(tree)
    refreeze of a stale cache — views over a freshly mutated tree simply
    run the recursive reference paths until a query-heavy phase makes
    refreezing worthwhile.
    """
    mapping = (
        AffineMap.identity(space.dim)
        if transformation is None
        else space.affine_map(transformation)
    )
    return TransformedIndexView(
        tree,
        mapping,
        circular_mask=space.circular_mask,
        kernel=cached_kernel(tree),
    )


def range_query(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    query_spectrum: np.ndarray,
    query_point: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
    stats: Optional[IOStats] = None,
    batched: bool = True,
    view: Optional[TransformedIndexView] = None,
) -> list[Match]:
    """Algorithm 2: all records with ``D(T(record), query) <= eps``.

    Args:
        tree: the R-tree over ``space``'s feature points.
        space: the feature space the tree indexes.
        ground_spectra: ``(m, n)`` complex matrix of full record spectra
            (normal-form spectra for a :class:`NormalFormSpace`).
        query_spectrum: full spectrum of the query object.
        query_point: the query's feature point.
        eps: similarity threshold.
        transformation: safe transformation applied to the data side;
            ``None`` (or the identity) reproduces a plain [AFS93] query.
        aux_bounds: optional intervals constraining auxiliary dimensions.
        stats: counter bundle for candidate/distance accounting.
        batched: verify all candidates as one blocked matrix computation
            (matrix-level early abandoning); the scalar per-candidate loop
            is kept as the reference path.
        view: prebuilt transformed view (batch APIs share one across
            queries); built from ``transformation`` when ``None``.

    Returns:
        ``(record id, exact distance)`` pairs, sorted by distance.
    """
    if view is None:
        view = _make_view(tree, space, transformation)
    qrect = space.search_rect(query_point, eps, aux_bounds=aux_bounds)
    out: list[Match] = []
    if batched:
        # Kernel-backed id probe (level-at-a-time frontier) plus blocked
        # matrix verification; the scalar branch below is the reference.
        cand_ids = view.search_ids(qrect)
        n_candidates = int(cand_ids.shape[0])
        abandoned = 0
        completed = 0
        if n_candidates:
            kept, dists, abandoned = space.ground_distances_within_many(
                ground_spectra[cand_ids], query_spectrum, eps, transformation
            )
            out = [(int(cand_ids[i]), float(d)) for i, d in zip(kept, dists)]
            completed = len(kept)
    else:
        candidates = view.search(qrect)
        n_candidates = len(candidates)
        completed = 0
        for entry in candidates:
            d = space.ground_distance_within(
                ground_spectra[entry.child], query_spectrum, eps, transformation
            )
            if d is not None:
                out.append((entry.child, d))
                completed += 1
        abandoned = n_candidates - completed
    if stats is not None:
        stats.candidate_count += n_candidates
        stats.distance_computations += n_candidates
        stats.verifications_completed += completed
        stats.verifications_abandoned += abandoned
    out.sort(key=lambda m: (m[1], m[0]))
    return out


def knn_query(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    query_spectrum: np.ndarray,
    query_point: np.ndarray,
    k: int,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
    batched: bool = True,
    view: Optional[TransformedIndexView] = None,
    frontier_stats: Optional[FrontierStats] = None,
    budget=None,
) -> list[Match]:
    """Exact k-nearest-neighbours under a safe transformation.

    Multi-step scheme: entries stream out of the index in non-decreasing
    order of the *feature-space lower bound* (Lemma 1's partial-energy
    bound, via MINDIST pruning in the tree); each is verified against its
    full record; the stream stops when the next lower bound already
    exceeds the ``k``-th best exact distance — at that point no unseen
    record can improve the answer, so the result is exact.

    With ``batched`` (the default) the traversal scores each node's child
    MBRs with one vectorised lower-bound call
    (:meth:`FeatureSpace.rect_mindist_many` / ``point_dist_many``) instead
    of one Python call per entry; with a frozen kernel on the view it runs
    through the fused frontier (:func:`knn_query_fused`) — entry blocks
    verified in one matrix step per pop instead of one heap item and one
    ground distance per entry.

    Edge cases (defined once, in the kernel): ``k == 0`` and an empty
    relation return ``[]``; ``k`` exceeding the relation returns every
    record.  Negative ``k`` raises.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return []
    if view is None:
        view = _make_view(tree, space, transformation)
    if batched and view.kernel is not None:
        return knn_query_fused(
            tree, space, ground_spectra,
            np.asarray(query_spectrum)[None, :],
            np.asarray(query_point, dtype=np.float64)[None, :],
            k, transformation=transformation, stats=stats, view=view,
            frontier_stats=frontier_stats, budget=budget,
        )[0]
    q = np.asarray(query_point, dtype=np.float64)
    best: list[tuple[float, int]] = []  # max-heap by negated distance
    examined = 0
    many_kwargs = (
        {
            "rect_dist_many": space.rect_mindist_many,
            "point_dist_many": space.point_dist_many,
        }
        if batched
        else {}
    )
    for bound, entry in incremental_nearest(
        view,
        q,
        rect_dist=space.rect_mindist,
        point_dist=space.point_dist,
        budget=budget,
        **many_kwargs,
    ):
        if len(best) == k and bound > -best[0][0]:
            break
        if budget is not None and budget.exceeded(0) is not None:
            # k-NN truncates instead of raising: results so far are exact,
            # just possibly incomplete.  The stream also enforces the
            # budget inside its frontier loop (with the real heap size);
            # this outer check covers the per-candidate verify cost.
            budget.truncated = True
            break
        d = space.ground_distance(
            ground_spectra[entry.child], query_spectrum, transformation
        )
        examined += 1
        if len(best) < k:
            heapq.heappush(best, (-d, entry.child))
        elif d < -best[0][0]:
            heapq.heapreplace(best, (-d, entry.child))
    if stats is not None:
        stats.candidate_count += examined
        stats.distance_computations += examined
        stats.verifications_completed += examined
    return sorted(((rid, -nd) for nd, rid in best), key=lambda m: (m[1], m[0]))


def knn_query_fused(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    query_spectra: np.ndarray,
    query_points: np.ndarray,
    k: int,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
    view: Optional[TransformedIndexView] = None,
    frontier_stats: Optional["FrontierStats"] = None,
    budget=None,
    executor=None,
) -> list[list[Match]]:
    """Fused multi-step exact k-NN for a whole batch of queries.

    All queries traverse the index together through the columnar kernel's
    round-synchronous best-first frontier
    (:meth:`repro.rtree.kernel.FrozenRTree.knn_batch`), each with its own
    pruning radius; exact verifications are performed for all queries in
    one matrix operation per round.  Answers match per-query
    :func:`knn_query` calls: identical ids, distances equal to floating-
    point tolerance (the matrix verification accumulates in a different
    order than the scalar reference's BLAS norm, like every batched
    verification path in this codebase, so the last ulp may differ — on
    degenerate data where two exact distances straddle the k-th boundary
    within one ulp, either valid neighbour set may be returned).

    Args:
        query_spectra: ``(m, n)`` full query spectra (verification side).
        query_points: ``(m, dim)`` query feature points (index side).
        (remaining arguments as in :func:`knn_query`)

    Returns:
        one ``(record id, exact distance)`` list per query, in order.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if view is None:
        view = _make_view(tree, space, transformation)
    q_points = np.asarray(query_points, dtype=np.float64)
    m = q_points.shape[0]
    if k == 0 or m == 0:
        return [[] for _ in range(m)]
    if view.kernel is None:
        return [
            knn_query(
                tree, space, ground_spectra, query_spectra[i], q_points[i], k,
                transformation=transformation, stats=stats, view=view,
                budget=budget,
            )
            for i in range(m)
        ]
    q_specs = np.asarray(query_spectra)

    def verify_many(qidx: np.ndarray, rids: np.ndarray) -> np.ndarray:
        spec = ground_spectra[rids]
        tx = spec if transformation is None else transformation.apply_spectrum(spec)
        diff = tx - q_specs[qidx]
        if stats is not None:
            # Locked add: under the parallel executor this closure runs
            # concurrently from several kernel workers on the one shared
            # engine-level IOStats, where bare += would lose counts.
            stats.add(
                candidate_count=int(rids.shape[0]),
                distance_computations=int(rids.shape[0]),
                verifications_completed=int(rids.shape[0]),
            )
        return np.sqrt(np.sum(diff.real**2 + diff.imag**2, axis=1))

    if executor is not None:
        return executor.knn_batch(
            view.kernel, q_points, k, verify_many,
            view.mapping.scale, view.mapping.offset,
            rect_dist_rows=space.rect_mindist_rows,
            point_dist_rows=space.point_dist_rows,
            fstats=frontier_stats, io=view.tree.store.stats,
            budget=budget,
        )
    return view.kernel.knn_batch(
        q_points, k, verify_many,
        view.mapping.scale, view.mapping.offset,
        rect_dist_rows=space.rect_mindist_rows,
        point_dist_rows=space.point_dist_rows,
        fstats=frontier_stats, io=view.tree.store.stats,
        budget=budget,
    )


# ----------------------------------------------------------------------
# All-pairs (Table 1)
# ----------------------------------------------------------------------
def _transformed_spectra(
    ground_spectra: np.ndarray, transformation: Optional[Transformation]
) -> np.ndarray:
    """The whole relation's transformed spectra, computed once (O(m))."""
    if transformation is None:
        return ground_spectra
    return transformation.apply_spectrum(ground_spectra)


def _verify_pairs(
    tspec: np.ndarray,
    pair_iter: Iterator[tuple[int, int]],
    eps: float,
    block: int = 1024,
) -> tuple[list[tuple[int, int, float]], int]:
    """Exact-distance check of streamed candidate pairs, a block at a time.

    Consumes ``pair_iter`` in fixed-size chunks so a dense join never
    materialises its whole O(m²) candidate set.  Returns the surviving
    ``(i, j, distance)`` triples and the number of candidates seen.
    """
    out: list[tuple[int, int, float]] = []
    candidates = 0
    while True:
        chunk = list(itertools.islice(pair_iter, block))
        if not chunk:
            break
        candidates += len(chunk)
        ii = np.fromiter((p[0] for p in chunk), dtype=np.intp, count=len(chunk))
        jj = np.fromiter((p[1] for p in chunk), dtype=np.intp, count=len(chunk))
        out.extend(_verify_pair_block(tspec, ii, jj, eps))
    return out, candidates


def _verify_pair_block(
    tspec: np.ndarray, ii: np.ndarray, jj: np.ndarray, eps: float
) -> list[tuple[int, int, float]]:
    """Exact distances of one block of candidate pairs, filtered to eps."""
    diff = tspec[ii] - tspec[jj]
    d = np.sqrt(np.sum(diff.real**2 + diff.imag**2, axis=1))
    return [
        (int(ii[t]), int(jj[t]), float(d[t])) for t in np.nonzero(d <= eps)[0]
    ]


def _verify_pairs_arrays(
    tspec: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    eps: float,
    block: int = 8192,
) -> tuple[list[tuple[int, int, float]], int]:
    """Array form of :func:`_verify_pairs` for kernel-produced pair sets.

    The kernel's frontier-pair join materialises its candidate pairs as two
    id arrays; verification still proceeds block-by-block so a dense join
    never allocates an O(pairs × n) spectra matrix at once.
    """
    out: list[tuple[int, int, float]] = []
    for s in range(0, int(ii.shape[0]), block):
        out.extend(_verify_pair_block(tspec, ii[s : s + block], jj[s : s + block], eps))
    return out, int(ii.shape[0])

def all_pairs_scan(
    ground_spectra: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    early_abandon: bool = False,
    stats: Optional[IOStats] = None,
    batched: bool = True,
) -> list[tuple[int, int, float]]:
    """Table 1 methods *a* (``early_abandon=False``) and *b* (``True``).

    Scans the relation of Fourier coefficients sequentially, comparing
    every sequence to all sequences after it, applying the transformation
    to both sides during the comparison.  Method *b* stops each distance
    computation as soon as it exceeds ``eps`` — the paper measured this
    one optimisation alone to be worth a factor of 10.  Both methods share
    the same blocked distance loop so that the a-vs-b comparison isolates
    the early-abandon optimisation, exactly as in the paper.

    The transformation is applied to the whole relation once up front
    (O(m) applications, not the O(m²) of re-transforming the inner side on
    every comparison).  With ``batched`` each outer row is compared against
    all later rows in one blocked matrix computation — method *b* drops
    rows from the active set as their partial sums exceed ``eps²``, method
    *a* runs the same blocks to completion.
    """
    m = ground_spectra.shape[0]
    tspec = _transformed_spectra(ground_spectra, transformation)
    out: list[tuple[int, int, float]] = []
    computations = 0
    abandon_at = eps if early_abandon else float("inf")
    for i in range(m):
        ti = tspec[i]
        if batched:
            rest = tspec[i + 1 :]
            computations += rest.shape[0]
            kept, dists, _ = batch_euclidean_within(rest, ti, abandon_at)
            for j_off, d in zip(kept, dists):
                if d <= eps:
                    out.append((i, i + 1 + int(j_off), float(d)))
        else:
            for j in range(i + 1, m):
                computations += 1
                d = euclidean_early_abandon(ti, tspec[j], abandon_at)
                if d is not None and d <= eps:
                    out.append((i, j, d))
    if stats is not None:
        stats.distance_computations += computations
    return out


def all_pairs_index(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    points: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
    batched: bool = True,
    frontier_stats: Optional[FrontierStats] = None,
    executor=None,
) -> list[tuple[int, int, float]]:
    """Table 1 methods *c* (no transformation) and *d* (with it).

    Scans the relation sequentially; for every sequence builds a search
    rectangle around its (transformed) feature point and poses it to the
    (transformed) index as a range query, then verifies candidates against
    full records.  Each unordered pair is reported once — the paper's
    method *d* reports both orientations, which is why its Table-1 answer
    counts are doubled; see EXPERIMENTS.md.

    The relation's spectra are transformed once up front; candidate pairs
    are verified in matrix blocks when ``batched``.  With ``batched`` and
    a frozen kernel the whole outer relation descends the inner index as
    one frontier-pair traversal
    (:func:`repro.rtree.join.index_nested_loop_join_pairs`) instead of one
    recursive range query per outer record; candidate pair sets are
    identical either way, and results are returned sorted by
    ``(outer, inner)``.
    """
    view = _make_view(tree, space, transformation)
    mapping = view.mapping
    tpoints = points * mapping.scale + mapping.offset
    tspec = _transformed_spectra(ground_spectra, transformation)

    if batched and view.kernel is not None:
        m = tpoints.shape[0]
        qlows, qhighs = space.search_rect_many(tpoints, eps)
        out = []
        candidates = 0
        # The outer relation descends in chunks so a dense join (large eps)
        # never materialises its whole O(m²) candidate-pair set — the
        # frontier-pair arrays and the verification stay O(chunk × hits).
        chunk = 1024
        for s in range(0, m, chunk):
            e = min(s + chunk, m)
            outer_ids, inner_ids = index_nested_loop_join_pairs(
                view, qlows[s:e], qhighs[s:e],
                np.arange(s, e, dtype=np.int64),
                self_join=True, fstats=frontier_stats,
                executor=executor,
            )
            chunk_out, n = _verify_pairs_arrays(tspec, outer_ids, inner_ids, eps)
            out.extend(chunk_out)
            candidates += n
    else:

        def outer() -> Iterable[tuple[int, object]]:
            from repro.rtree.geometry import Rect

            for i in range(tpoints.shape[0]):
                yield i, Rect.from_point(tpoints[i])

        pair_iter = index_nested_loop_join(
            outer(),
            view,
            make_search_rect=lambda pr: space.search_rect(pr.lows, eps),
            self_join=True,
        )
        if batched:
            out, candidates = _verify_pairs(tspec, pair_iter, eps)
        else:
            candidates = 0
            out = []
            for i, j in pair_iter:
                candidates += 1
                d = float(np.linalg.norm(tspec[i] - tspec[j]))
                if d <= eps:
                    out.append((i, j, d))
    if stats is not None:
        stats.candidate_count += candidates
        stats.distance_computations += candidates
        stats.verifications_completed += candidates
    out.sort(key=lambda t: (t[0], t[1]))
    return out


def all_pairs_tree_join(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
    batched: bool = True,
    executor=None,
) -> list[tuple[int, int, float]]:
    """Self-join by synchronized tree descent (not in the paper; ablation).

    With ``batched`` and a frozen kernel the join runs as one
    frontier-pair traversal over the columnar arrays
    (:func:`repro.rtree.join.tree_matching_join_pairs`): the whole leaf
    relation is expanded by the join radius in one
    :meth:`~repro.core.features.FeatureSpace.expand_rect_many` pass and
    descends the kernel together, with candidates verified in matrix
    blocks.  Otherwise the recursive
    :func:`repro.rtree.join.tree_matching_join` reference runs with the
    space's per-rect ``eps`` expansion — the two produce the same
    verified answer set.
    """
    view = _make_view(tree, space, transformation)
    tspec = _transformed_spectra(ground_spectra, transformation)
    if batched and view.kernel is not None:
        outer_ids, inner_ids = tree_matching_join_pairs(
            view,
            view,
            expand_many=lambda lo, hi: space.expand_rect_many(lo, hi, eps),
            self_join=True,
            executor=executor,
        )
        out, candidates = _verify_pairs_arrays(tspec, outer_ids, inner_ids, eps)
    else:
        pair_iter = tree_matching_join(
            view, view, expand=lambda r: space.expand_rect(r, eps), self_join=True
        )
        if batched:
            out, candidates = _verify_pairs(tspec, pair_iter, eps)
        else:
            candidates = 0
            out = []
            for i, j in pair_iter:
                candidates += 1
                d = float(np.linalg.norm(tspec[i] - tspec[j]))
                if d <= eps:
                    out.append((i, j, d))
    if stats is not None:
        stats.candidate_count += candidates
        stats.distance_computations += candidates
        stats.verifications_completed += candidates
    out.sort(key=lambda t: (t[0], t[1]))
    return out
