"""Query processing: Algorithm 2, multi-step k-NN, and the Table-1 joins.

Every function here follows the paper's three-phase shape:

1. **Preprocessing** — move the query and transformation into the frequency
   domain, truncate to the ``k`` indexed coefficients, build a search
   rectangle (Fig. 7's construction in the polar case).
2. **Search** — traverse the R-tree through a
   :class:`~repro.rtree.transformed.TransformedIndexView` (Algorithm 1),
   applying the safe transformation to every node on the way down.
3. **Post-processing** — fetch each candidate's full record and check its
   exact Euclidean distance (Eq. 12), guaranteeing no false positives;
   Lemma 1 guarantees the candidate set had no false dismissals.

The all-pairs functions implement the four strategies of the paper's
Table 1 (labelled ``a`` to ``d`` there) plus a tree-matching join.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.features import FeatureSpace
from repro.core.similarity import euclidean_early_abandon
from repro.core.transforms import Transformation
from repro.rtree.join import index_nested_loop_join, tree_matching_join
from repro.rtree.search import incremental_nearest
from repro.rtree.transformed import AffineMap, TransformedIndexView
from repro.storage.stats import IOStats

ArrayLike = Union[Sequence[float], np.ndarray]

#: A query answer: (record id, exact distance).
Match = tuple[int, float]


def _make_view(
    tree,
    space: FeatureSpace,
    transformation: Optional[Transformation],
) -> TransformedIndexView:
    mapping = (
        AffineMap.identity(space.dim)
        if transformation is None
        else space.affine_map(transformation)
    )
    return TransformedIndexView(tree, mapping, circular_mask=space.circular_mask)


def range_query(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    query_spectrum: np.ndarray,
    query_point: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    aux_bounds: Optional[Sequence[tuple[float, float]]] = None,
    stats: Optional[IOStats] = None,
) -> list[Match]:
    """Algorithm 2: all records with ``D(T(record), query) <= eps``.

    Args:
        tree: the R-tree over ``space``'s feature points.
        space: the feature space the tree indexes.
        ground_spectra: ``(m, n)`` complex matrix of full record spectra
            (normal-form spectra for a :class:`NormalFormSpace`).
        query_spectrum: full spectrum of the query object.
        query_point: the query's feature point.
        eps: similarity threshold.
        transformation: safe transformation applied to the data side;
            ``None`` (or the identity) reproduces a plain [AFS93] query.
        aux_bounds: optional intervals constraining auxiliary dimensions.
        stats: counter bundle for candidate/distance accounting.

    Returns:
        ``(record id, exact distance)`` pairs, sorted by distance.
    """
    view = _make_view(tree, space, transformation)
    qrect = space.search_rect(query_point, eps, aux_bounds=aux_bounds)
    candidates = view.search(qrect)
    out: list[Match] = []
    for entry in candidates:
        d = space.ground_distance_within(
            ground_spectra[entry.child], query_spectrum, eps, transformation
        )
        if d is not None:
            out.append((entry.child, d))
    if stats is not None:
        stats.candidate_count += len(candidates)
        stats.distance_computations += len(candidates)
    out.sort(key=lambda m: (m[1], m[0]))
    return out


def knn_query(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    query_spectrum: np.ndarray,
    query_point: np.ndarray,
    k: int,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
) -> list[Match]:
    """Exact k-nearest-neighbours under a safe transformation.

    Multi-step scheme: entries stream out of the index in non-decreasing
    order of the *feature-space lower bound* (Lemma 1's partial-energy
    bound, via MINDIST pruning in the tree); each is verified against its
    full record; the stream stops when the next lower bound already
    exceeds the ``k``-th best exact distance — at that point no unseen
    record can improve the answer, so the result is exact.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    view = _make_view(tree, space, transformation)
    q = np.asarray(query_point, dtype=np.float64)
    best: list[tuple[float, int]] = []  # max-heap by negated distance
    examined = 0
    for bound, entry in incremental_nearest(
        view, q, rect_dist=space.rect_mindist, point_dist=space.point_dist
    ):
        if len(best) == k and bound > -best[0][0]:
            break
        d = space.ground_distance(
            ground_spectra[entry.child], query_spectrum, transformation
        )
        examined += 1
        if len(best) < k:
            heapq.heappush(best, (-d, entry.child))
        elif d < -best[0][0]:
            heapq.heapreplace(best, (-d, entry.child))
    if stats is not None:
        stats.candidate_count += examined
        stats.distance_computations += examined
    return sorted(((rid, -nd) for nd, rid in best), key=lambda m: (m[1], m[0]))


# ----------------------------------------------------------------------
# All-pairs (Table 1)
# ----------------------------------------------------------------------
def all_pairs_scan(
    ground_spectra: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    early_abandon: bool = False,
    stats: Optional[IOStats] = None,
) -> list[tuple[int, int, float]]:
    """Table 1 methods *a* (``early_abandon=False``) and *b* (``True``).

    Scans the relation of Fourier coefficients sequentially, comparing
    every sequence to all sequences after it, applying the transformation
    to both sides during the comparison.  Method *b* stops each distance
    computation as soon as it exceeds ``eps`` — the paper measured this
    one optimisation alone to be worth a factor of 10.  Both methods share
    the same blocked distance loop so that the a-vs-b comparison isolates
    the early-abandon optimisation, exactly as in the paper.
    """
    m = ground_spectra.shape[0]
    out: list[tuple[int, int, float]] = []
    computations = 0
    abandon_at = eps if early_abandon else float("inf")
    for i in range(m):
        ti = (
            ground_spectra[i]
            if transformation is None
            else transformation.apply_spectrum(ground_spectra[i])
        )
        for j in range(i + 1, m):
            tj = (
                ground_spectra[j]
                if transformation is None
                else transformation.apply_spectrum(ground_spectra[j])
            )
            computations += 1
            d = euclidean_early_abandon(ti, tj, abandon_at)
            if d is not None and d <= eps:
                out.append((i, j, d))
    if stats is not None:
        stats.distance_computations += computations
    return out


def all_pairs_index(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    points: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
) -> list[tuple[int, int, float]]:
    """Table 1 methods *c* (no transformation) and *d* (with it).

    Scans the relation sequentially; for every sequence builds a search
    rectangle around its (transformed) feature point and poses it to the
    (transformed) index as a range query, then verifies candidates against
    full records.  Each unordered pair is reported once — the paper's
    method *d* reports both orientations, which is why its Table-1 answer
    counts are doubled; see EXPERIMENTS.md.
    """
    view = _make_view(tree, space, transformation)
    mapping = view.mapping

    def outer() -> Iterable[tuple[int, object]]:
        from repro.rtree.geometry import Rect

        for i in range(points.shape[0]):
            yield i, Rect.from_point(mapping.apply_point(points[i]))

    candidates = 0
    out: list[tuple[int, int, float]] = []
    for i, j in index_nested_loop_join(
        outer(),
        view,
        make_search_rect=lambda pr: space.search_rect(pr.lows, eps),
        self_join=True,
    ):
        candidates += 1
        ti = (
            ground_spectra[i]
            if transformation is None
            else transformation.apply_spectrum(ground_spectra[i])
        )
        tj = (
            ground_spectra[j]
            if transformation is None
            else transformation.apply_spectrum(ground_spectra[j])
        )
        d = float(np.linalg.norm(ti - tj))
        if d <= eps:
            out.append((i, j, d))
    if stats is not None:
        stats.candidate_count += candidates
        stats.distance_computations += candidates
    return out


def all_pairs_tree_join(
    tree,
    space: FeatureSpace,
    ground_spectra: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
) -> list[tuple[int, int, float]]:
    """Self-join by synchronized tree descent (not in the paper; ablation).

    Uses :func:`repro.rtree.join.tree_matching_join` with the space's
    ``eps`` rectangle expansion, then verifies candidates exactly.
    """
    view = _make_view(tree, space, transformation)
    candidates = 0
    out: list[tuple[int, int, float]] = []
    for i, j in tree_matching_join(
        view, view, expand=lambda r: space.expand_rect(r, eps), self_join=True
    ):
        candidates += 1
        ti = (
            ground_spectra[i]
            if transformation is None
            else transformation.apply_spectrum(ground_spectra[i])
        )
        tj = (
            ground_spectra[j]
            if transformation is None
            else transformation.apply_spectrum(ground_spectra[j])
        )
        d = float(np.linalg.norm(ti - tj))
        if d <= eps:
            out.append((i, j, d))
    if stats is not None:
        stats.candidate_count += candidates
        stats.distance_computations += candidates
    return out
