"""Distance measures, including the transformation-closure distance of Eq. 10.

Besides plain Euclidean and city-block distances, this module provides:

* :func:`euclidean_early_abandon` — the tuned distance the paper's
  sequential-scan competitor uses ("we stop the distance computation
  process as soon as the distance exceeds eps"), and
* :class:`TransformationClosureDistance` — a terminating implementation of
  the recursive dissimilarity definition (Eq. 10): the cheapest way to make
  ``x`` and ``y`` match, where each transformation application charges its
  cost and the total cost is bounded.  The paper notes the bound is what
  stops "any two series becoming similar" under repeated smoothing
  (Example 2.3); here it also guarantees termination.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.transforms import Transformation
from repro.dft import dft

ArrayLike = Union[Sequence[float], np.ndarray]


def euclidean(x: ArrayLike, y: ArrayLike) -> float:
    """Euclidean distance ``D(x, y)`` between equal-length sequences."""
    a = np.asarray(x, dtype=np.complex128)
    b = np.asarray(y, dtype=np.complex128)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


def cityblock(x: ArrayLike, y: ArrayLike) -> float:
    """City-block (L1) distance, mentioned in the paper's introduction."""
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return float(np.sum(np.abs(a - b)))


def euclidean_early_abandon(
    x: ArrayLike, y: ArrayLike, eps: float, block: int = 8
) -> Optional[float]:
    """Euclidean distance, abandoned once it provably exceeds ``eps``.

    Processes coordinates block-wise, accumulating squared differences, and
    returns ``None`` as soon as the partial sum exceeds ``eps**2`` — for
    spectra (whose energy concentrates in the leading coefficients) most
    non-matches are rejected within the first block, which is the paper's
    "good implementation of the sequential scan".

    Returns:
        the exact distance when it is ``<= eps``, else ``None``.
    """
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    a = np.asarray(x, dtype=np.complex128)
    b = np.asarray(y, dtype=np.complex128)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    limit = eps * eps
    acc = 0.0
    n = a.shape[0]
    for start in range(0, n, block):
        seg = a[start : start + block] - b[start : start + block]
        acc += float(np.sum(seg.real**2 + seg.imag**2))
        if acc > limit:
            return None
    return float(np.sqrt(acc))


def batch_euclidean_within(
    matrix: ArrayLike, q: ArrayLike, eps: float, block: int = 8
) -> tuple[np.ndarray, np.ndarray, int]:
    """Batched :func:`euclidean_early_abandon` of many rows against ``q``.

    Matrix-level early abandoning: squared differences are accumulated
    block-by-block across columns for *all still-active rows at once*, and a
    row is dropped from the active set as soon as its partial sum exceeds
    ``eps**2`` — the same abandonment rule as the scalar path, evaluated as
    a handful of numpy calls instead of one Python loop per row.

    Real-valued inputs (e.g. raw subsequence windows rather than spectra)
    stay in float64 throughout — same accumulation order and results as
    the complex path with a zero imaginary part, at half the memory
    traffic.

    Returns:
        ``(indices, distances, abandoned)`` where ``indices`` are the rows
        whose full distance is ``<= eps`` (ascending), ``distances`` their
        exact distances, and ``abandoned`` how many rows were dropped early.
    """
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    is_complex = np.iscomplexobj(matrix) or np.iscomplexobj(q)
    dtype = np.complex128 if is_complex else np.float64
    a = np.asarray(matrix, dtype=dtype)
    b = np.asarray(q, dtype=dtype)
    if a.ndim != 2 or b.ndim != 1 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} rows vs query {b.shape}")
    m, n = a.shape
    limit = eps * eps
    active = np.arange(m)
    acc = np.zeros(m)
    for start in range(0, n, block):
        if active.size == 0:
            break
        seg = a[active, start : start + block] - b[start : start + block]
        sq = seg.real**2 + seg.imag**2 if is_complex else np.square(seg)
        acc[active] += np.sum(sq, axis=1)
        keep = acc[active] <= limit
        if not np.all(keep):
            active = active[keep]
    abandoned = m - active.size
    return active, np.sqrt(acc[active]), abandoned


class TransformationClosureDistance:
    """Cost-bounded dissimilarity under a set of transformations (Eq. 10).

    ``D(x, y)`` is the minimum over all (possibly empty) sequences of
    transformations applied to either side of

        ``total cost + D0(T_i(...T_1(x)), U_j(...U_1(y)))``

    subject to ``total cost <= budget`` and at most ``max_steps``
    applications per side.  Computed as a uniform-cost search over pairs of
    transformed spectra; with zero-cost transformations the ``max_steps``
    bound alone guarantees termination.

    Args:
        transformations: the set ``t`` of usable transformations.
        budget: inclusive bound on summed transformation costs.
        max_steps: bound on applications per side.
    """

    def __init__(
        self,
        transformations: Sequence[Transformation],
        budget: float = float("inf"),
        max_steps: int = 2,
    ) -> None:
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.transformations = list(transformations)
        self.budget = budget
        self.max_steps = max_steps

    def __call__(self, x: ArrayLike, y: ArrayLike) -> float:
        """The dissimilarity ``D(x, y)``; also available as ``distance``."""
        return self.distance(x, y)

    def distance(self, x: ArrayLike, y: ArrayLike) -> float:
        """Evaluate Eq. 10 on two time-domain sequences."""
        spec_x = dft(np.asarray(x, dtype=np.float64))
        spec_y = dft(np.asarray(y, dtype=np.float64))
        return self.distance_spectra(spec_x, spec_y)

    def distance_spectra(self, spec_x: np.ndarray, spec_y: np.ndarray) -> float:
        """Evaluate Eq. 10 on two spectra (frequency domain)."""
        if spec_x.shape != spec_y.shape:
            raise ValueError(
                f"length mismatch: {spec_x.shape} vs {spec_y.shape}"
            )
        best = float(np.linalg.norm(spec_x - spec_y))
        counter = itertools.count()
        # State: (accumulated cost, steps on x side, steps on y side, specs).
        heap: list = [(0.0, next(counter), 0, 0, spec_x, spec_y)]
        seen: set[tuple] = set()
        while heap:
            cost, _, sx, sy, cx, cy = heapq.heappop(heap)
            if cost >= best:
                break  # no cheaper completion is possible
            d = cost + float(np.linalg.norm(cx - cy))
            if d < best:
                best = d
            for t in self.transformations:
                new_cost = cost + t.cost
                if new_cost > self.budget or new_cost >= best:
                    continue
                if sx < self.max_steps:
                    nx = t.apply_spectrum(cx)
                    key = (sx + 1, sy, round(new_cost, 12), nx.tobytes(), cy.tobytes())
                    if key not in seen:
                        seen.add(key)
                        heapq.heappush(
                            heap, (new_cost, next(counter), sx + 1, sy, nx, cy)
                        )
                if sy < self.max_steps:
                    ny = t.apply_spectrum(cy)
                    key = (sx, sy + 1, round(new_cost, 12), cx.tobytes(), ny.tobytes())
                    if key not in seen:
                        seen.add(key)
                        heapq.heappush(
                            heap, (new_cost, next(counter), sx, sy + 1, cx, ny)
                        )
        return best

    def explain(self, x: ArrayLike, y: ArrayLike) -> dict:
        """Like :meth:`distance` but also reports the winning recipe.

        Returns a dict with ``distance``, ``cost``, ``x_chain`` and
        ``y_chain`` (transformation names applied to each side).
        """
        spec_x = dft(np.asarray(x, dtype=np.float64))
        spec_y = dft(np.asarray(y, dtype=np.float64))
        best = {
            "distance": float(np.linalg.norm(spec_x - spec_y)),
            "cost": 0.0,
            "x_chain": [],
            "y_chain": [],
        }
        counter = itertools.count()
        heap: list = [(0.0, next(counter), [], [], spec_x, spec_y)]
        while heap:
            cost, _, chain_x, chain_y, cx, cy = heapq.heappop(heap)
            if cost >= best["distance"]:
                break
            d = cost + float(np.linalg.norm(cx - cy))
            if d < best["distance"]:
                best = {
                    "distance": d,
                    "cost": cost,
                    "x_chain": [t.name for t in chain_x],
                    "y_chain": [t.name for t in chain_y],
                }
            for t in self.transformations:
                new_cost = cost + t.cost
                if new_cost > self.budget or new_cost >= best["distance"]:
                    continue
                if len(chain_x) < self.max_steps:
                    heapq.heappush(
                        heap,
                        (
                            new_cost,
                            next(counter),
                            chain_x + [t],
                            chain_y,
                            t.apply_spectrum(cx),
                            cy,
                        ),
                    )
                if len(chain_y) < self.max_steps:
                    heapq.heappush(
                        heap,
                        (
                            new_cost,
                            next(counter),
                            chain_x,
                            chain_y + [t],
                            cx,
                            t.apply_spectrum(cy),
                        ),
                    )
        return best
