"""The paper's transformation class ``T = (a, b)`` and its named instances.

A transformation in an n-dimensional space is a pair of vectors ``(a, b)``:
applied to a point ``X`` (here: the unitary DFT spectrum of a time series)
it yields ``a * X + b``, where ``*`` is elementwise multiplication
(Section 3).  Everything the paper formulates is a special case:

* ``identity(n)`` — ``(1, 0)``; used for the controlled comparisons of
  Figures 8 and 9.
* ``shift(n, c)`` — adds the constant ``c`` to every value of the series;
  in the spectrum this is ``b_0 = c * sqrt(n)`` (unitary DFT of a constant).
* ``scale(n, c)`` — multiplies every value by ``c`` (``a = c``); negative
  ``c`` is allowed — the paper explicitly drops [GK95]'s positive-scale
  restriction.
* ``reverse(n)`` — ``a = -1`` (Example 2.2's opposite-movement queries).
* ``moving_average(n, l)`` — circular l-day moving average (Section 3.2):
  ``a`` is the *standard* DFT of the weight vector ``(1/l, ..., 1/l, 0...)``
  so that ``a * X`` is the spectrum of ``conv(x, w)``.
* ``time_warp(n, m)`` — Appendix A: ``a_f = sum_{t<m} exp(-j 2 pi t f/(m n))``
  maps the first coefficients of a length-``n`` series to those of its
  ``m``-fold time-stretched version of length ``m * n``.

Safety (Definition 1) is what makes a transformation indexable through
Algorithm 1.  :meth:`Transformation.is_safe_rect` checks Theorem 2's
condition (``a`` real, ``b`` arbitrary complex) and
:meth:`Transformation.is_safe_polar` checks Theorem 3's (``a`` arbitrary
complex, ``b = 0``); lowering to a per-dimension affine map happens in
:mod:`repro.core.features`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.dft import dft, idft

ArrayLike = Union[Sequence[float], Sequence[complex], np.ndarray]

#: Tolerance for "is this coefficient real / zero" safety checks.
SAFETY_TOL = 1e-9


class Transformation:
    """A linear transformation ``T = (a, b)`` on length-``n`` spectra.

    Args:
        a: stretch vector (complex, length n).
        b: translation vector (complex, length n).
        cost: the cost charged when this transformation is used inside the
            closure distance of Eq. 10 (the paper assigns costs to bound
            how much massaging two series may undergo).
        name: human-readable label used by ``repr`` and the query language.
        mean_map: optional ``(scale, offset)`` describing how the
            transformation acts on the *mean* auxiliary index dimension of
            a normal-form feature space (identity by default).
        std_map: ditto for the *standard deviation* dimension.
    """

    __slots__ = ("a", "b", "cost", "name", "mean_map", "std_map")

    def __init__(
        self,
        a: ArrayLike,
        b: ArrayLike,
        cost: float = 0.0,
        name: Optional[str] = None,
        mean_map: tuple[float, float] = (1.0, 0.0),
        std_map: tuple[float, float] = (1.0, 0.0),
    ) -> None:
        self.a = np.asarray(a, dtype=np.complex128).copy()
        self.b = np.asarray(b, dtype=np.complex128).copy()
        if self.a.shape != self.b.shape or self.a.ndim != 1 or self.a.size == 0:
            raise ValueError(
                f"a and b must be non-empty 1-D vectors of equal length, "
                f"got {self.a.shape} and {self.b.shape}"
            )
        if cost < 0:
            raise ValueError(f"cost must be non-negative, got {cost}")
        self.cost = float(cost)
        self.name = name if name is not None else "T"
        self.mean_map = (float(mean_map[0]), float(mean_map[1]))
        self.std_map = (float(std_map[0]), float(std_map[1]))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Spectrum length this transformation applies to."""
        return self.a.shape[0]

    def apply_spectrum(self, spectrum: ArrayLike) -> np.ndarray:
        """``T(X) = a * X + b`` on a full or truncated spectrum.

        A truncated spectrum (the first ``k`` coefficients) is transformed
        with the first ``k`` components of ``a`` and ``b`` — exactly the
        ``T_k`` of Algorithm 2's preprocessing step.
        """
        X = np.asarray(spectrum, dtype=np.complex128)
        k = X.shape[-1]
        if k > self.n:
            raise ValueError(f"spectrum has {k} coefficients, transformation {self.n}")
        return self.a[:k] * X + self.b[:k]

    def apply_series(self, series: ArrayLike) -> np.ndarray:
        """Apply in the time domain: ``idft(T(dft(x)))``.

        Returns a real array when the result is real to rounding (which it
        is whenever ``T`` maps conjugate-symmetric spectra to
        conjugate-symmetric spectra, e.g. all the named transformations
        except ``time_warp``).
        """
        x = np.asarray(series, dtype=np.float64)
        if x.shape[0] != self.n:
            raise ValueError(f"series length {x.shape[0]} != transformation n {self.n}")
        out = idft(self.apply_spectrum(dft(x)))
        if np.allclose(out.imag, 0.0, atol=1e-8):
            return out.real
        return out

    # ------------------------------------------------------------------
    def then(self, outer: "Transformation") -> "Transformation":
        """Composition ``outer after self``: ``x -> outer(self(x))``.

        Costs add; the auxiliary mean/std maps compose likewise.
        """
        if outer.n != self.n:
            raise ValueError(f"length mismatch: {self.n} vs {outer.n}")
        c1, d1 = self.mean_map
        c2, d2 = outer.mean_map
        e1, f1 = self.std_map
        e2, f2 = outer.std_map
        return Transformation(
            outer.a * self.a,
            outer.a * self.b + outer.b,
            cost=self.cost + outer.cost,
            name=f"{outer.name}({self.name})",
            mean_map=(c2 * c1, c2 * d1 + d2),
            std_map=(e2 * e1, e2 * f1 + f2),
        )

    def power(self, times: int) -> "Transformation":
        """``T`` composed with itself ``times`` times (Example 2.3's
        repeated moving averages)."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        out = self
        for _ in range(times - 1):
            out = out.then(self)
        return out

    # ------------------------------------------------------------------
    def is_identity(self, tol: float = SAFETY_TOL) -> bool:
        """True when ``T`` is (within ``tol``) the identity ``(1, 0)``."""
        return bool(
            np.allclose(self.a, 1.0, atol=tol) and np.allclose(self.b, 0.0, atol=tol)
        )

    def is_safe_rect(self, tol: float = SAFETY_TOL) -> bool:
        """Theorem 2's condition: ``a`` real (``b`` may be complex)."""
        return bool(np.allclose(self.a.imag, 0.0, atol=tol))

    def is_safe_polar(self, tol: float = SAFETY_TOL) -> bool:
        """Theorem 3's condition: ``b = 0`` (``a`` may be complex)."""
        return bool(np.allclose(self.b, 0.0, atol=tol))

    def __repr__(self) -> str:
        return f"Transformation({self.name}, n={self.n}, cost={self.cost})"


# ----------------------------------------------------------------------
# named constructors
# ----------------------------------------------------------------------
def identity(n: int, cost: float = 0.0) -> Transformation:
    """The identity ``T_i = (1, 0)`` of Section 5's controlled experiments."""
    return Transformation(np.ones(n), np.zeros(n), cost=cost, name="identity")


def shift(n: int, amount: float, cost: float = 0.0) -> Transformation:
    """Add ``amount`` to every value of the series.

    Under the unitary DFT a constant series ``c`` has spectrum
    ``c * sqrt(n)`` at ``f = 0`` and zero elsewhere, so the translation
    vector is ``b = (amount * sqrt(n), 0, ..., 0)``.
    """
    b = np.zeros(n, dtype=np.complex128)
    b[0] = amount * math.sqrt(n)
    return Transformation(
        np.ones(n),
        b,
        cost=cost,
        name=f"shift({amount:g})",
        mean_map=(1.0, amount),
    )


def scale(n: int, factor: float, cost: float = 0.0) -> Transformation:
    """Multiply every value by ``factor`` (negative factors allowed)."""
    return Transformation(
        np.full(n, factor, dtype=np.complex128),
        np.zeros(n),
        cost=cost,
        name=f"scale({factor:g})",
        mean_map=(factor, 0.0),
        std_map=(abs(factor), 0.0),
    )


def reverse(n: int, cost: float = 0.0) -> Transformation:
    """``T_rev = (-1, 0)``: multiply every closing price by -1 (Ex. 2.2)."""
    t = scale(n, -1.0, cost=cost)
    t.name = "reverse"
    return t


def moving_average(
    n: int,
    window: int,
    weights: Optional[Sequence[float]] = None,
    cost: float = 0.0,
) -> Transformation:
    """The circular ``window``-day moving average ``T_mavg`` (Eq. 11).

    The stretch vector is the *standard* (unnormalised) DFT of the weight
    vector ``w = (w_1, ..., w_window, 0, ..., 0)``; with it,
    ``a * X`` is the unitary spectrum of the circular convolution
    ``conv(x, w)`` — the paper's moving average that wraps the window
    around the end of the sequence.

    Args:
        n: series length.
        window: number of days averaged.
        weights: optional per-day weights; equal weights ``1/window`` by
            default.  The paper notes trend-prediction uses end-heavy
            weights — any weights are accepted.
        cost: closure-distance cost.
    """
    if not 1 <= window <= n:
        raise ValueError(f"window must be in [1, {n}], got {window}")
    w = np.zeros(n, dtype=np.float64)
    if weights is None:
        w[:window] = 1.0 / window
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (window,):
            raise ValueError(
                f"weights must have length {window}, got {weights.shape}"
            )
        w[:window] = weights
    a = np.fft.fft(w)  # standard DFT: the multiplier that realises conv(x, w)
    return Transformation(
        a, np.zeros(n), cost=cost, name=f"mavg{window}",
        # Averaging a series leaves its mean unchanged (circular window),
        # while the std generally shrinks in a data-dependent way; the std
        # auxiliary dimension therefore keeps the identity map and must not
        # be constrained in queries that use this transformation.
        mean_map=(1.0, 0.0),
    )


def difference(n: int, cost: float = 0.0) -> Transformation:
    """Circular first difference ``x_t - x_{t-1 mod n}``.

    Expressed as convolution with ``(1, -1, 0, ..., 0)``; a detrending
    transformation in the same family as the moving average (Section 3.2's
    framework admits arbitrary convolution weights).  Note the first output
    value wraps: it is ``x_0 - x_{n-1}``, consistent with the paper's
    circular moving-average convention.
    """
    w = np.zeros(n, dtype=np.float64)
    w[0] = 1.0
    w[1] = -1.0
    a = np.fft.fft(w)
    return Transformation(
        a,
        np.zeros(n),
        cost=cost,
        name="difference",
        mean_map=(0.0, 0.0),  # differencing removes the level
    )


def exponential_smoothing(
    n: int, alpha: float, window: Optional[int] = None, cost: float = 0.0
) -> Transformation:
    """Exponentially weighted (circular) moving average.

    Weights ``alpha * (1-alpha)^j`` over a truncated window (normalised to
    sum to one), the classic trend-following smoother from technical stock
    analysis; Section 3.2 notes that trend-prediction uses unequal,
    recency-heavy weights — this is that transformation, packaged.

    Args:
        n: series length.
        alpha: smoothing factor in ``(0, 1]``; larger tracks the latest
            values more closely.
        window: weight-truncation length; defaults to covering 99.9% of
            the mass (capped at ``n``).
        cost: closure-distance cost.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if window is None:
        if alpha == 1.0:
            window = 1
        else:
            window = min(n, max(1, int(np.ceil(np.log(1e-3) / np.log(1.0 - alpha)))))
    if not 1 <= window <= n:
        raise ValueError(f"window must be in [1, {n}], got {window}")
    weights = alpha * (1.0 - alpha) ** np.arange(window)
    weights = weights / weights.sum()
    t = moving_average(n, window, weights=weights, cost=cost)
    t.name = f"expsmooth({alpha:g})"
    return t


def time_warp(n: int, m: int, cost: float = 0.0) -> Transformation:
    """Appendix A's time-warp spectrum map.

    For a series ``s`` of length ``n`` and integer ``m >= 1``, the warped
    series ``s'`` of length ``m * n`` repeats every value ``m`` times
    (Eq. 16).  Eq. 19 gives the stretch vector

        ``a_f = sum_{t=0}^{m-1} exp(-j 2 pi t f / (m n))``

    with which ``a_f * S_f = S'_f`` for the retained coefficients — so a
    k-index over length-``n`` series can answer queries posed against their
    ``m``-fold stretched versions without touching the data.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    f = np.arange(n)
    t = np.arange(m).reshape(-1, 1)
    a = np.exp(-2j * np.pi * t * f / (m * n)).sum(axis=0)
    return Transformation(a, np.zeros(n), cost=cost, name=f"warp(x{m})")


def warp_series(series: ArrayLike, m: int) -> np.ndarray:
    """Literal time warping in the time domain (Eq. 16): repeat each value
    ``m`` times.  Used to validate :func:`time_warp` and in Example 1.2."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return np.repeat(np.asarray(series, dtype=np.float64), m)
