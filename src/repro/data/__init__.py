"""Data sets and generators used by the experiments.

* :class:`~repro.data.relation.SequenceRelation` — the unary relation of
  time sequences that queries run against (Section 3: "we assume relations
  are unary, that is, they are simply sets of sequences").
* :mod:`~repro.data.synthetic` — the paper's Section 5 random-walk
  generator.
* :mod:`~repro.data.stocks` — a synthetic stock-market model standing in
  for the 1067-series ftp.ai.mit.edu archive (see DESIGN.md for the
  substitution rationale).
* :mod:`~repro.data.examples` — the sequences printed verbatim in the
  paper (Examples 1.1 and 1.2).
"""

from repro.data.examples import EX11_S1, EX11_S2, EX12_P, EX12_S
from repro.data.relation import SequenceRelation
from repro.data.stocks import make_stock_universe
from repro.data.synthetic import random_walks

__all__ = [
    "EX11_S1",
    "EX11_S2",
    "EX12_P",
    "EX12_S",
    "SequenceRelation",
    "make_stock_universe",
    "random_walks",
]
