"""Sequences printed verbatim in the paper.

These drive exact reproductions of Examples 1.1 and 1.2 (including the
quoted Euclidean distances) in tests and the quickstart example.

A note on sources: the paper prints ``s1`` of Example 1.1 and ``s`` of
Example 1.2 twice each — once in the running text and once in the figure
captions — with small discrepancies.  The figure-caption versions are used
here because they are the ones consistent with the quoted numbers:
``D(s1, s2) = 11.92`` holds for the caption's ``s1``, and warping
``p = (20, 21, 20, 23)`` by 2 reproduces the caption's
``s = (20, 20, 21, 21, 20, 20, 23, 23)`` exactly (the text's variant
``(20, 21, 21, 21, 20, 21, 23, 23)`` is not a 2-fold warp of any length-4
series).
"""

from __future__ import annotations

import numpy as np

#: Example 1.1, Figure 1(a): closing prices of the first stock.
EX11_S1 = np.array(
    [36, 38, 40, 38, 42, 38, 36, 36, 37, 38, 39, 38, 40, 38, 37],
    dtype=np.float64,
)

#: Example 1.1, Figure 1(b): closing prices of the second stock.
EX11_S2 = np.array(
    [40, 37, 37, 42, 41, 35, 40, 35, 34, 42, 38, 35, 45, 36, 34],
    dtype=np.float64,
)

#: Example 1.2, Figure 2(a): the daily-sampled series.
EX12_S = np.array([20, 20, 21, 21, 20, 20, 23, 23], dtype=np.float64)

#: Example 1.2, Figure 2(b): the every-other-day-sampled series.
EX12_P = np.array([20, 21, 20, 23], dtype=np.float64)
