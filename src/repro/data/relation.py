"""The unary relation of time sequences that similarity queries run over.

Section 3 of the paper: "we assume relations are unary, that is, they are
simply sets of sequences; in practice of course they may have other
attributes, such as source of the data, time period covered, etc.".
:class:`SequenceRelation` keeps exactly that: equal-length sequences with a
dense integer record id, an optional name, and a free-form attribute dict —
plus a cached spectra matrix since every query pipeline needs DFTs.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.dft import dft

ArrayLike = Union[Sequence[float], np.ndarray]


class SequenceRelation:
    """An append-only collection of equal-length real time sequences.

    Args:
        length: the common sequence length (fixed at creation).
    """

    def __init__(self, length: int) -> None:
        if length < 2:
            raise ValueError(f"length must be >= 2, got {length}")
        self.length = length
        self._rows: list[np.ndarray] = []
        self._names: list[str] = []
        self._attrs: list[dict] = []
        self._matrix: Optional[np.ndarray] = None
        self._spectra: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        matrix: ArrayLike,
        names: Optional[Sequence[str]] = None,
    ) -> "SequenceRelation":
        """Build a relation from an ``(m, n)`` matrix of sequences."""
        rows = np.asarray(matrix, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {rows.shape}")
        rel = cls(rows.shape[1])
        for i, row in enumerate(rows):
            rel.add(row, name=None if names is None else names[i])
        return rel

    def add(
        self,
        series: ArrayLike,
        name: Optional[str] = None,
        **attrs,
    ) -> int:
        """Append a sequence; returns its record id."""
        row = np.asarray(series, dtype=np.float64).copy()
        if row.shape != (self.length,):
            raise ValueError(
                f"series must have length {self.length}, got shape {row.shape}"
            )
        record_id = len(self._rows)
        self._rows.append(row)
        self._names.append(name if name is not None else f"seq{record_id}")
        self._attrs.append(dict(attrs))
        self._matrix = None
        self._spectra = None
        return record_id

    # ------------------------------------------------------------------
    def get(self, record_id: int) -> np.ndarray:
        """The sequence stored under ``record_id`` (a copy-safe view)."""
        self._check(record_id)
        return self._rows[record_id]

    def name(self, record_id: int) -> str:
        """Display name of a record."""
        self._check(record_id)
        return self._names[record_id]

    def attrs(self, record_id: int) -> dict:
        """Free-form attributes of a record."""
        self._check(record_id)
        return self._attrs[record_id]

    def id_of(self, name: str) -> int:
        """Record id of the first sequence with this name."""
        try:
            return self._names.index(name)
        except ValueError:
            raise KeyError(f"no sequence named {name!r}") from None

    @property
    def matrix(self) -> np.ndarray:
        """All sequences as an ``(m, n)`` matrix (cached)."""
        if self._matrix is None or self._matrix.shape[0] != len(self._rows):
            self._matrix = (
                np.stack(self._rows)
                if self._rows
                else np.empty((0, self.length))
            )
        return self._matrix

    @property
    def spectra(self) -> np.ndarray:
        """Unitary DFT of every sequence, as an ``(m, n)`` complex matrix."""
        if self._spectra is None or self._spectra.shape[0] != len(self._rows):
            if not self._rows:
                self._spectra = np.empty((0, self.length), dtype=np.complex128)
            else:
                self._spectra = np.fft.fft(self.matrix, axis=1) / np.sqrt(self.length)
        return self._spectra

    def spectrum(self, record_id: int) -> np.ndarray:
        """Unitary DFT of one sequence."""
        self._check(record_id)
        return self.spectra[record_id]

    # ------------------------------------------------------------------
    def subset(self, record_ids: Sequence[int]) -> "SequenceRelation":
        """A new relation containing the chosen records (ids renumbered)."""
        rel = SequenceRelation(self.length)
        for rid in record_ids:
            self._check(rid)
            rel.add(self._rows[rid], name=self._names[rid], **self._attrs[rid])
        return rel

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        for i, row in enumerate(self._rows):
            yield i, row

    def __repr__(self) -> str:
        return f"SequenceRelation(count={len(self)}, length={self.length})"

    def _check(self, record_id: int) -> None:
        if not 0 <= record_id < len(self._rows):
            raise KeyError(f"record id {record_id} out of range [0, {len(self._rows)})")

    @staticmethod
    def _unitary(x: np.ndarray) -> np.ndarray:
        return dft(x)
