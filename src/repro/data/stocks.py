"""Synthetic stock market: the substitute for the paper's real stock data.

The paper's real-data experiments (Figures 3-5 and 12, Table 1) use 1067
daily-closing-price series of length 128 from the ftp.ai.mit.edu stock
archive, which no longer exists.  This module generates a market with the
statistical features those experiments depend on:

* geometric random-walk prices driven by a market factor, sector factors
  and idiosyncratic noise, so spectra concentrate energy in low
  frequencies (the k-index premise);
* a spread of price levels and volatilities (so means/stds separate in the
  index, as with BBA vs ZTR in Example 2.1);
* *correlated pairs* within sectors (so range queries and the Table-1
  self-join have non-trivial answers);
* *anti-correlated pairs* — stocks with negative market beta — so
  Example 2.2's reverse-movement queries (``T_rev``) find matches;
* a band of low-volatility mean-reverting "funds" mimicking closed-end
  funds like ZTR.

Prices are positive and rounded to cents.  Everything is driven by one
seed, so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np

from repro.data.relation import SequenceRelation

#: sector labels used for synthetic tickers
_SECTORS = (
    "TECH", "RETL", "ENRG", "FINL", "HLTH", "INDU", "UTIL", "MATR",
)


@dataclass
class StockSpec:
    """Generation parameters of one synthetic stock (kept as attributes)."""

    ticker: str
    sector: str
    beta: float
    volatility: float
    start_price: float
    is_fund: bool


def make_stock_universe(
    count: int = 1067,
    length: int = 128,
    seed: int = 19970525,
    fund_fraction: float = 0.08,
    inverse_fraction: float = 0.05,
) -> SequenceRelation:
    """Generate the synthetic stand-in for the paper's stock relation.

    Args:
        count: number of series (paper: 1067).
        length: days per series (paper: 128).
        seed: RNG seed; the default fixes the universe used throughout the
            test-suite and benchmarks.
        fund_fraction: share of low-volatility mean-reverting funds.
        inverse_fraction: share of negative-beta (inverse) instruments.

    Returns:
        a relation whose record attributes carry each stock's
        :class:`StockSpec` fields (``sector``, ``beta``, ...).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    rng = np.random.default_rng(seed)

    # Common daily return factors.  The sector factors are strong relative
    # to the idiosyncratic noise so that same-sector stocks genuinely track
    # each other — real markets cluster the same way, and the paper's
    # selective queries (small answer sets at small eps, Figure 12) and
    # Table-1 join pairs depend on such clusters existing.
    market = rng.normal(0.0, 0.008, size=length - 1)
    sector_factors = {
        s: rng.normal(0.0, 0.010, size=length - 1) for s in _SECTORS
    }

    rel = SequenceRelation(length)
    n_funds = int(round(fund_fraction * count))
    n_inverse = int(round(inverse_fraction * count))

    for i in range(count):
        sector = _SECTORS[int(rng.integers(0, len(_SECTORS)))]
        is_fund = i < n_funds
        is_inverse = n_funds <= i < n_funds + n_inverse
        sector_load = 1.0
        if is_fund:
            beta = float(rng.uniform(0.05, 0.2))
            vol = float(rng.uniform(0.0005, 0.002))
            start = float(rng.uniform(8.0, 15.0))
            sector_load = 0.1
        else:
            beta = float(rng.uniform(0.9, 1.1))
            vol = float(rng.uniform(0.002, 0.008))
            start = float(rng.lognormal(np.log(20.0), 0.6))
            if is_inverse:
                beta = -beta
                sector_load = -1.0
        drift = float(rng.normal(0.0002, 0.0010))
        noise = rng.normal(0.0, vol, size=length - 1)
        returns = (
            drift + beta * market + sector_load * sector_factors[sector] + noise
        )
        log_price = np.log(start) + np.concatenate([[0.0], np.cumsum(returns)])
        # Daily observation jitter (bid-ask bounce): high-frequency noise a
        # moving average removes, giving Section 2's smoothing behaviour.
        log_price = log_price + rng.normal(0.0, 0.5 * vol + 0.004, size=length)
        price = np.exp(log_price)
        if is_fund:
            # Mean-revert toward the start price, like a closed-end fund
            # trading in a narrow band (cf. ZTR in Example 2.1).
            price = start + 0.15 * (price - start)
        price = np.maximum(np.round(price, 2), 0.01)
        ticker = f"{sector[:3]}{i:04d}"
        rel.add(
            price,
            name=ticker,
            sector=sector,
            beta=beta,
            volatility=vol,
            start_price=start,
            is_fund=is_fund,
        )
    return rel


def paired_stocks(
    length: int = 128, seed: int = 42
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Three related series for the Section 2 demonstrations.

    Returns ``(base, correlated, inverse)``: a stock, a same-sector stock
    tracking it with noise, and an anti-correlated instrument — the raw
    material for reproducing the *shape* of Examples 2.1 and 2.2 without
    the original BBA/ZTR/CC/VAR data.
    """
    rng = np.random.default_rng(seed)
    market = np.concatenate(
        [[0.0], np.cumsum(rng.normal(0.0005, 0.012, size=length - 1))]
    )
    # Idiosyncrasy enters as two components: a small independent return
    # stream (slow divergence) and daily observation jitter (bid-ask
    # bounce).  The jitter is what a 20-day moving average removes, which
    # is how the paper's Example 2.1 gets its large distance reduction.
    def one(level: float, beta: float) -> np.ndarray:
        slow = np.concatenate(
            [[0.0], np.cumsum(rng.normal(0.0, 0.002, size=length - 1))]
        )
        jitter = rng.normal(0.0, 0.008, size=length)
        return np.round(level * np.exp(beta * market + slow + jitter), 2)

    base = one(12.0, 1.0)
    correlated = one(30.0, 0.9)
    inverse = one(18.0, -0.95)
    return base, correlated, inverse
