"""The paper's synthetic random-walk generator (Section 5).

"Each synthetic sequence ``x = [x_t]`` was a random sequence produced as
follows: ``x_0 = y``, ``x_i = x_{i-1} + z_i`` where ``y`` was a normally
distributed random number in the range ``[20, 99]`` and ``z_t`` was a
random number in the range ``[-4, 4]``."

The paper does not pin down either distribution precisely ("normally
distributed ... in the range" is self-contradictory); following the
standard reading of this generator in the follow-on literature, ``y`` is
drawn uniformly from ``[20, 99]`` and the steps ``z_t`` uniformly from
``[-4, 4]``.  Random walks of this kind have spectra dominated by the low
frequencies, which is exactly the property the k-index exploits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.relation import SequenceRelation


def random_walks(
    count: int,
    length: int,
    seed: Optional[int] = None,
    start_range: tuple[float, float] = (20.0, 99.0),
    step_range: tuple[float, float] = (-4.0, 4.0),
) -> np.ndarray:
    """Generate ``count`` random walks of ``length`` as an ``(m, n)`` matrix.

    Args:
        count: number of sequences.
        length: points per sequence.
        seed: RNG seed for reproducibility.
        start_range: bounds of the uniform starting value ``y``.
        step_range: bounds of the uniform step ``z_t``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    rng = np.random.default_rng(seed)
    starts = rng.uniform(start_range[0], start_range[1], size=(count, 1))
    steps = rng.uniform(step_range[0], step_range[1], size=(count, length - 1))
    walks = np.concatenate([starts, steps], axis=1)
    return np.cumsum(walks, axis=1)


def random_walk_relation(
    count: int, length: int, seed: Optional[int] = None
) -> SequenceRelation:
    """A :class:`SequenceRelation` of paper-style random walks."""
    return SequenceRelation.from_matrix(
        random_walks(count, length, seed=seed),
        names=[f"walk{i}" for i in range(count)],
    )
