"""Discrete Fourier transform toolkit (Section 1.1 of the paper).

Uses the *unitary* convention of the paper (and of [AFS93]/[FRM94]): a
``1/sqrt(n)`` factor in front of **both** the forward and inverse
transforms, so that Parseval's relation reads ``E(x) = E(X)`` with no extra
constant and Euclidean distances are preserved exactly (Eq. 8).

:mod:`repro.dft.reference` contains a direct O(n^2) evaluation of Eq. 1
used by the test-suite to validate the FFT-based implementation.
"""

from repro.dft.dft import (
    circular_convolve,
    dft,
    dft_many,
    distance,
    energy,
    energy_concentration,
    idft,
    power_spectrum,
)

__all__ = [
    "circular_convolve",
    "dft",
    "dft_many",
    "distance",
    "energy",
    "energy_concentration",
    "idft",
    "power_spectrum",
]
