"""Unitary DFT, energy, convolution and distance (Eqs. 1-8 of the paper).

All functions accept any 1-D array-like of real or complex values and
return float64/complex128 numpy arrays.  The forward and inverse transforms
carry the symmetric ``1/sqrt(n)`` normalisation, following the convention
of [AFS93] and [FRM94] that the paper adopts; under it the DFT is a unitary
map, so energy (Eq. 7) and Euclidean distance (Eq. 8) are preserved with no
scale factor.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], Sequence[complex], np.ndarray]


def _as_1d(x: ArrayLike, name: str = "x") -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def dft(x: ArrayLike) -> np.ndarray:
    """Unitary discrete Fourier transform (Eq. 1).

    ``X_f = (1/sqrt(n)) * sum_t x_t * exp(-2*pi*j*t*f/n)``
    """
    arr = _as_1d(x)
    return np.fft.fft(arr) / np.sqrt(arr.size)


def dft_many(matrix: ArrayLike) -> np.ndarray:
    """Unitary DFT of every row of an ``(m, n)`` matrix (batched Eq. 1).

    A single ``np.fft.fft`` call over ``axis=1``; agrees with :func:`dft`
    applied row by row.  An empty ``(0, n)`` matrix yields ``(0, n)``.
    """
    rows = np.asarray(matrix)
    if rows.ndim != 2 or rows.shape[1] == 0:
        raise ValueError(
            f"matrix must be 2-D with non-empty rows, got shape {rows.shape}"
        )
    return np.fft.fft(rows, axis=1) / np.sqrt(rows.shape[1])


def idft(X: ArrayLike) -> np.ndarray:
    """Unitary inverse DFT (Eq. 2).  ``idft(dft(x)) == x`` up to rounding."""
    arr = _as_1d(X, "X")
    return np.fft.ifft(arr) * np.sqrt(arr.size)


def energy(x: ArrayLike) -> float:
    """Signal energy ``E(x) = sum |x_t|^2`` (Eq. 3)."""
    arr = _as_1d(x)
    return float(np.sum(np.abs(arr) ** 2))


def distance(x: ArrayLike, y: ArrayLike) -> float:
    """Euclidean distance between two equal-length signals (Eq. 8).

    Works identically in the time and frequency domains by Parseval.
    """
    a = _as_1d(x)
    b = _as_1d(y, "y")
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    return float(np.sqrt(np.sum(np.abs(a - b) ** 2)))


def circular_convolve(x: ArrayLike, y: ArrayLike) -> np.ndarray:
    """Circular convolution (Eq. 4): ``conv(x, y)_i = sum_k x_k * y_{i-k mod n}``.

    Computed in the frequency domain through the convolution-multiplication
    property (Eq. 6); under the unitary convention that property reads
    ``DFT(conv(x, y)) = sqrt(n) * X * Y``, so a compensating ``sqrt(n)``
    appears here.  The result is real when both inputs are real.
    """
    a = _as_1d(x)
    b = _as_1d(y, "y")
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    out = np.fft.ifft(np.fft.fft(a) * np.fft.fft(b))
    if not np.iscomplexobj(a) and not np.iscomplexobj(b):
        return out.real
    return out


def power_spectrum(x: ArrayLike) -> np.ndarray:
    """Per-coefficient energy ``|X_f|^2`` of the unitary DFT."""
    return np.abs(dft(x)) ** 2


def energy_concentration(x: ArrayLike, k: int) -> float:
    """Fraction of total energy captured by DFT coefficients ``0..k-1``.

    This is the quantity behind the paper's remark that "for a large family
    of sequences [the DFT] concentrates the energy in the first few
    coefficients", which is what makes the k-index filter selective.
    For real signals the symmetric tail coefficients ``n-1, n-2, ...``
    mirror coefficients ``1, 2, ...``; this function counts only the
    leading ``k``, matching what the k-index stores.
    """
    arr = _as_1d(x)
    if not 0 < k <= arr.size:
        raise ValueError(f"k must be in [1, {arr.size}], got {k}")
    spec = power_spectrum(arr)
    total = float(np.sum(spec))
    if total == 0.0:
        return 1.0
    return float(np.sum(spec[:k])) / total
