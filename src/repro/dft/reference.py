"""Direct O(n^2) reference implementations of Eqs. 1, 2 and 4.

These exist purely to validate the FFT-based fast paths in
:mod:`repro.dft.dft`; the test-suite cross-checks the two on random
signals.  Never use these in benchmarks — they are deliberately literal
transcriptions of the paper's formulas.
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np


def dft_reference(x: Sequence[complex]) -> np.ndarray:
    """Literal evaluation of Eq. 1: ``X_f = (1/sqrt(n)) sum_t x_t e^{-j2pi t f / n}``."""
    n = len(x)
    if n == 0:
        raise ValueError("x must be non-empty")
    scale = 1.0 / math.sqrt(n)
    out = np.empty(n, dtype=np.complex128)
    for f in range(n):
        acc = 0j
        for t in range(n):
            acc += complex(x[t]) * cmath.exp(-2j * math.pi * t * f / n)
        out[f] = scale * acc
    return out


def idft_reference(X: Sequence[complex]) -> np.ndarray:
    """Literal evaluation of Eq. 2: ``x_t = (1/sqrt(n)) sum_f X_f e^{j2pi t f / n}``."""
    n = len(X)
    if n == 0:
        raise ValueError("X must be non-empty")
    scale = 1.0 / math.sqrt(n)
    out = np.empty(n, dtype=np.complex128)
    for t in range(n):
        acc = 0j
        for f in range(n):
            acc += complex(X[f]) * cmath.exp(2j * math.pi * t * f / n)
        out[t] = scale * acc
    return out


def circular_convolve_reference(
    x: Sequence[complex], y: Sequence[complex]
) -> np.ndarray:
    """Literal evaluation of Eq. 4: ``conv(x, y)_i = sum_k x_k y_{(i-k) mod n}``."""
    n = len(x)
    if len(y) != n:
        raise ValueError(f"length mismatch: {n} vs {len(y)}")
    out = np.empty(n, dtype=np.complex128)
    for i in range(n):
        acc = 0j
        for k in range(n):
            acc += complex(x[k]) * complex(y[(i - k) % n])
        out[i] = acc
    if not any(isinstance(v, complex) and v.imag for v in x) and not any(
        isinstance(v, complex) and v.imag for v in y
    ):
        if np.allclose(out.imag, 0.0):
            return out.real.astype(np.float64)
    return out
