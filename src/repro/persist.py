"""Persisting an engine: relation, feature-space config and index pages.

``save_engine`` writes four artifacts into a directory:

* ``relation.npy`` + ``relation.json`` — the sequence matrix with names
  and attributes,
* ``meta.json`` — feature-space and tree configuration,
* ``index.pages`` — every R-tree node serialised into a disk-resident
  page file (node ids are remapped to page ids in breadth-first order,
  so the saved index is compact regardless of the source store),
* ``index_columnar.npz`` — the frozen columnar kernel
  (:class:`~repro.rtree.kernel.FrozenRTree`) saved as plain arrays, so a
  reloaded engine starts with its frontier engine ready instead of
  refreezing (and paging in) the whole node tree on the first query.

``load_engine`` reopens the directory into a fully functional
:class:`~repro.core.engine.SimilarityEngine` whose tree reads nodes
through a buffer pool over the saved page file — i.e. the loaded index
does *real paged I/O* against the file, it is not rebuilt in memory —
while batch traversals run through the deserialised kernel arrays.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Optional

import numpy as np

from repro.core.engine import SimilarityEngine
from repro.core.features import FeatureSpace, NormalFormSpace, PlainDFTSpace
from repro.data.relation import SequenceRelation
from repro.rtree.base import RTreeBase
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.kernel import FrozenRTree, attach_kernel, frozen_kernel
from repro.rtree.node import Entry, Node, PagedNodeStore
from repro.rtree.rstar import RStarTree
from repro.storage.pager import PageFile

_TREE_CLASSES = {"RStarTree": RStarTree, "GuttmanRTree": GuttmanRTree}
_SPACE_CLASSES = {"NormalFormSpace": NormalFormSpace, "PlainDFTSpace": PlainDFTSpace}


def save_engine(engine: SimilarityEngine, directory: str) -> None:
    """Write the engine's relation, configuration and index pages."""
    os.makedirs(directory, exist_ok=True)
    rel = engine.relation
    np.save(os.path.join(directory, "relation.npy"), rel.matrix)
    with open(os.path.join(directory, "relation.json"), "w") as f:
        json.dump(
            {
                "names": [rel.name(i) for i in range(len(rel))],
                "attrs": [rel.attrs(i) for i in range(len(rel))],
            },
            f,
        )

    space = engine.space
    tree = engine.tree
    meta = {
        "space": {
            "class": type(space).__name__,
            "n": space.n,
            "k": space.k,
            "coord": space.coord,
            "exploit_symmetry": space.exploit_symmetry,
        },
        "tree": {
            "class": type(tree).__name__,
            "dim": tree.dim,
            "max_entries": tree.max_entries,
            "size": tree.size,
            "root_level": tree._root_level,
        },
    }

    # Walk the tree breadth-first, remapping node ids to fresh page ids.
    pages_path = os.path.join(directory, "index.pages")
    if os.path.exists(pages_path):
        os.remove(pages_path)
    with PageFile(path=pages_path) as pagefile:
        store = PagedNodeStore(tree.dim, pagefile=pagefile, buffer_capacity=0)
        id_map: dict[int, int] = {}
        order: list[Node] = []
        queue = deque([tree.root_id])
        while queue:
            node_id = queue.popleft()
            if node_id in id_map:
                continue
            node = tree.store.read(node_id)
            id_map[node_id] = store.allocate()
            order.append(node)
            if not node.is_leaf:
                queue.extend(e.child for e in node.entries)
        for node in order:
            children = (
                [Entry(e.rect, id_map[e.child]) for e in node.entries]
                if not node.is_leaf
                else list(node.entries)
            )
            store.write(
                Node(node_id=id_map[node.node_id], level=node.level, entries=children)
            )
        store.flush()
        meta["tree"]["root_id"] = id_map[tree.root_id]

    # The frozen columnar kernel is saved as-is: its arrays are the query-
    # time representation, so the loaded engine never has to refreeze.
    np.savez(
        os.path.join(directory, "index_columnar.npz"),
        **frozen_kernel(tree).to_arrays(),
    )
    meta["kernel"] = {"format": 1}

    with open(os.path.join(directory, "meta.json"), "w") as f:
        json.dump(meta, f)


def load_engine(
    directory: str,
    buffer_capacity: int = 128,
) -> SimilarityEngine:
    """Reopen a saved engine; its index reads pages from ``index.pages``."""
    with open(os.path.join(directory, "meta.json")) as f:
        meta = json.load(f)
    matrix = np.load(os.path.join(directory, "relation.npy"))
    with open(os.path.join(directory, "relation.json")) as f:
        rel_meta = json.load(f)
    relation = SequenceRelation(matrix.shape[1] if matrix.size else meta["space"]["n"])
    for i in range(matrix.shape[0]):
        relation.add(matrix[i], name=rel_meta["names"][i], **rel_meta["attrs"][i])

    space = _space_from_meta(meta["space"])
    tree = _tree_from_meta(meta["tree"], directory, buffer_capacity)

    # Assemble the engine around the existing tree (bypass __init__'s
    # index build but reuse its feature/spectra preparation).
    engine = SimilarityEngine.__new__(SimilarityEngine)
    engine.relation = relation
    engine.space = space
    engine.stats = tree.store.stats
    engine.points = (
        space.extract_many(relation.matrix)
        if len(relation)
        else np.empty((0, space.dim))
    )
    engine.ground_spectra = (
        np.stack([space.series_spectrum(row) for row in relation.matrix])
        if len(relation)
        else np.empty((0, relation.length), dtype=np.complex128)
    )
    engine.tree = tree
    kernel_path = os.path.join(directory, "index_columnar.npz")
    if os.path.exists(kernel_path):
        with np.load(kernel_path) as arrays:
            attach_kernel(tree, FrozenRTree.from_arrays(arrays))
    return engine


def _space_from_meta(meta: dict) -> FeatureSpace:
    cls = _SPACE_CLASSES.get(meta["class"])
    if cls is None:
        raise ValueError(f"unknown feature space class {meta['class']!r}")
    return cls(
        meta["n"],
        meta["k"],
        coord=meta["coord"],
        exploit_symmetry=meta["exploit_symmetry"],
    )


def _tree_from_meta(meta: dict, directory: str, buffer_capacity: int) -> RTreeBase:
    cls = _TREE_CLASSES.get(meta["class"])
    if cls is None:
        raise ValueError(f"unknown tree class {meta['class']!r}")
    pagefile = PageFile(path=os.path.join(directory, "index.pages"))
    store = PagedNodeStore(
        meta["dim"], pagefile=pagefile, buffer_capacity=buffer_capacity
    )
    # Fill RTreeBase's attributes by hand: __init__ would allocate a fresh
    # empty root, but the root already lives in the page file.
    tree = cls.__new__(cls)
    tree.dim = meta["dim"]
    tree.store = store
    tree.max_entries = meta["max_entries"]
    tree.min_entries = max(2, int(np.ceil(0.4 * meta["max_entries"])))
    tree.size = meta["size"]
    tree.root_id = meta["root_id"]
    tree._root_level = meta["root_level"]
    if cls is RStarTree:
        tree.reinsert_fraction = 0.3
    else:
        tree.split = "quadratic"
    return tree
