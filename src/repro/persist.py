"""Persisting an engine: validated, atomically committed index images.

``save_engine`` writes five artifacts into a directory:

* ``relation.npy`` + ``relation.json`` — the sequence matrix with names
  and attributes,
* ``meta.json`` — feature-space and tree configuration,
* ``index.pages`` — every R-tree node serialised into a disk-resident
  page file (node ids are remapped to page ids in breadth-first order,
  so the saved index is compact regardless of the source store),
* ``index_columnar.npz`` — the frozen columnar kernel
  (:class:`~repro.rtree.kernel.FrozenRTree`) saved as plain arrays, so a
  reloaded engine starts with its frontier engine ready instead of
  refreezing (and paging in) the whole node tree on the first query,
* ``MANIFEST.json`` — schema version, per-file size + CRC32 checksum and
  per-array shape/dtype specs, written *last* as the commit point.

Every artifact is written to a temp file, fsynced and ``os.replace``d
into place; the manifest commits the whole save.  A crash at any earlier
moment leaves either the previous consistent image (old manifest, old
files, checksums still match) or a detectable mismatch that ``load_engine``
reports as a typed error — never a silently-wrong engine.

``load_engine`` verifies each artifact against the manifest before
trusting it.  Damage to the core artifacts (relation, metadata) raises
:class:`~repro.storage.manifest.CorruptIndexError`; damage confined to
the index pages or the kernel arrays *degrades* instead — the engine
loads with ``_index_failed`` / ``tree._kernel_disabled`` set, the planner
reroutes queries to the surviving access path (recording
``degraded_from`` in EXPLAIN), and ``engine.health()`` reports which
components were lost.  ``strict=True`` turns every degradation into the
typed error instead.

A loaded index reads nodes through a buffer pool over the saved page
file — i.e. it does *real paged I/O* against the file, it is not rebuilt
in memory — while batch traversals run through the deserialised kernel
arrays.  Directories saved by earlier builds (no manifest) still load,
flagged ``degraded`` in the health report because nothing vouches for
their bytes.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from collections import deque
from typing import Optional

import numpy as np

from repro.core.engine import SimilarityEngine
from repro.core.features import FeatureSpace, NormalFormSpace, PlainDFTSpace
from repro.data.relation import SequenceRelation
from repro.rtree.base import RTreeBase
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.kernel import FrozenRTree, attach_kernel, frozen_kernel
from repro.rtree.node import Entry, Node, PagedNodeStore
from repro.rtree.rstar import RStarTree
from repro.storage import faults
from repro.storage import manifest as mf
from repro.storage.manifest import (
    CorruptIndexError,
    PersistError,
    SchemaVersionError,
)
from repro.storage.pager import PageFile

__all__ = [
    "save_engine",
    "load_engine",
    "PersistError",
    "SchemaVersionError",
    "CorruptIndexError",
]

_TREE_CLASSES = {"RStarTree": RStarTree, "GuttmanRTree": GuttmanRTree}
_SPACE_CLASSES = {"NormalFormSpace": NormalFormSpace, "PlainDFTSpace": PlainDFTSpace}


def save_engine(
    engine: SimilarityEngine, directory: str, manifest: bool = True
) -> None:
    """Write the engine's relation, configuration and index pages.

    With ``manifest=True`` (the default) every artifact goes through
    write-to-temp + fsync + ``os.replace`` and the save commits by
    writing ``MANIFEST.json`` last; with ``manifest=False`` the legacy
    unvalidated layout is written in place (used by the persistence
    benchmarks to price the validation overhead, and to produce
    old-style images for the compatibility tests).
    """
    os.makedirs(directory, exist_ok=True)
    rel = engine.relation
    entries: dict[str, dict] = {}

    buf = io.BytesIO()
    np.save(buf, rel.matrix)
    relation_npy = buf.getvalue()
    relation_json = json.dumps(
        {
            "names": [rel.name(i) for i in range(len(rel))],
            "attrs": [rel.attrs(i) for i in range(len(rel))],
        }
    ).encode()

    space = engine.space
    tree = engine.tree
    meta = {
        "space": {
            "class": type(space).__name__,
            "n": space.n,
            "k": space.k,
            "coord": space.coord,
            "exploit_symmetry": space.exploit_symmetry,
        },
        "tree": {
            "class": type(tree).__name__,
            "dim": tree.dim,
            "max_entries": tree.max_entries,
            "size": tree.size,
            "root_level": tree._root_level,
        },
    }

    _write_artifact(directory, "relation.npy", relation_npy, manifest, entries)
    _write_artifact(directory, "relation.json", relation_json, manifest, entries)

    meta["tree"]["root_id"] = _save_pages(directory, tree, manifest, entries)

    # The frozen columnar kernel is saved as-is: its arrays are the query-
    # time representation, so the loaded engine never has to refreeze.  A
    # tree whose kernel failed validation has nothing trustworthy to save.
    if not getattr(tree, "_kernel_disabled", False):
        arrays = frozen_kernel(tree).to_arrays()
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        _write_artifact(
            directory, "index_columnar.npz", buf.getvalue(), manifest, entries,
            arrays=mf.array_specs(arrays),
        )
        meta["kernel"] = {"format": 1}

    meta_json = json.dumps(meta).encode()
    _write_artifact(directory, "meta.json", meta_json, manifest, entries)

    if manifest:
        mf.write_manifest(directory, entries)  # the commit point
    else:
        # A stale manifest from a previous validated save must not vouch
        # for the freshly written unvalidated files.
        stale = os.path.join(directory, mf.MANIFEST_NAME)
        if os.path.exists(stale):
            os.remove(stale)


def _write_artifact(
    directory: str,
    name: str,
    data: bytes,
    manifest: bool,
    entries: dict,
    arrays: Optional[dict] = None,
) -> None:
    if manifest:
        entries[name] = mf.bytes_entry(data, arrays=arrays)
        mf.write_atomic(directory, name, data)
    else:
        with open(os.path.join(directory, name), "wb") as f:
            f.write(data)


def _save_pages(
    directory: str, tree: RTreeBase, manifest: bool, entries: dict
) -> int:
    """Write the BFS-remapped node pages; returns the saved root's page id.

    The page file cannot be serialised to memory first (it is the paged
    store's own on-disk format), so atomicity comes from writing the
    whole file at ``index.pages.tmp``, fsyncing it, and replacing —
    mirroring :func:`repro.storage.manifest.write_atomic` by hand.  The
    manifest checksum is accumulated over the *intended* page payloads
    rather than read back from disk, so a write that silently corrupts
    the file (lying firmware, a torn page) is still caught at load time.
    """
    pages_path = os.path.join(directory, "index.pages")
    target = pages_path + ".tmp" if manifest else pages_path
    if os.path.exists(target):
        os.remove(target)
    with PageFile(path=target) as pagefile:
        store = PagedNodeStore(tree.dim, pagefile=pagefile, buffer_capacity=0)
        id_map: dict[int, int] = {}
        order: list[Node] = []
        queue = deque([tree.root_id])
        while queue:
            node_id = queue.popleft()
            if node_id in id_map:
                continue
            node = tree.store.read(node_id)
            id_map[node_id] = store.allocate()
            order.append(node)
            if not node.is_leaf:
                queue.extend(e.child for e in node.entries)
        crc = 0
        size = 0
        for node in order:
            children = (
                [Entry(e.rect, id_map[e.child]) for e in node.entries]
                if not node.is_leaf
                else list(node.entries)
            )
            remapped = Node(
                node_id=id_map[node.node_id], level=node.level, entries=children
            )
            if manifest:
                # Pages land at ids 0..n-1 in write order, so the file is
                # exactly the concatenation of the padded page payloads.
                payload = store._ser.encode_node(
                    remapped, tree.dim, store.page_size
                ).ljust(store.page_size, b"\x00")
                crc = zlib.crc32(payload, crc)
                size += len(payload)
            store.write(remapped)
        store.flush(sync=manifest)
    if manifest:
        entries["index.pages"] = {"size": size, "crc32": crc & 0xFFFFFFFF}
        faults.trigger("persist.replace:index.pages")
        os.replace(target, pages_path)
    return id_map[tree.root_id]


def load_engine(
    directory: str,
    buffer_capacity: int = 128,
    strict: bool = False,
) -> SimilarityEngine:
    """Reopen a saved engine; its index reads pages from ``index.pages``.

    Every artifact listed in the image's manifest is checksum-verified
    before use.  Corruption of the relation or metadata raises
    :class:`CorruptIndexError` (there is nothing left to serve queries
    from); corruption confined to the index pages or the kernel arrays
    degrades the engine instead — queries reroute to the surviving path
    and ``engine.health()`` says what was lost.  ``strict=True`` raises
    for those too.

    Raises:
        PersistError: the directory is not a saved engine (missing or
            malformed artifact, unknown class name).
        SchemaVersionError: the image was written by a newer build.
        CorruptIndexError: a core artifact fails its checksum, or — under
            ``strict=True`` — any artifact does.
    """
    man = mf.read_manifest(directory)
    index_detail: Optional[str] = None
    kernel_detail: Optional[str] = None
    if man is not None:
        files = man["files"]
        for name in ("meta.json", "relation.npy", "relation.json"):
            if name not in files:
                raise PersistError(
                    f"manifest in {directory!r} has no entry for {name!r}"
                )
            mf.verify_file(directory, name, files[name])
        index_detail = _verify_optional(directory, "index.pages", files, strict)
        kernel_detail = _verify_optional(
            directory, "index_columnar.npz", files, strict
        )

    meta = _load_json(directory, "meta.json")
    rel_meta = _load_json(directory, "relation.json")
    try:
        matrix = np.load(os.path.join(directory, "relation.npy"))
    except FileNotFoundError as exc:
        raise PersistError(
            f"saved image {directory!r} is missing 'relation.npy'"
        ) from exc
    except Exception as exc:
        raise PersistError(
            f"unreadable 'relation.npy' in {directory!r}: {exc}"
        ) from exc

    try:
        relation = SequenceRelation(
            matrix.shape[1] if matrix.size else meta["space"]["n"]
        )
        for i in range(matrix.shape[0]):
            relation.add(
                matrix[i], name=rel_meta["names"][i], **rel_meta["attrs"][i]
            )
        space = _space_from_meta(meta["space"])
    except PersistError:
        raise
    except Exception as exc:
        raise PersistError(
            f"malformed saved engine in {directory!r}: {exc}"
        ) from exc

    # The index must describe exactly the loaded relation: a saved tree
    # whose leaf-id range disagrees with the row count would return ids
    # pointing at the wrong (or no) records.
    tree_size = int(meta["tree"]["size"])
    if tree_size != len(relation):
        detail = (
            f"index covers {tree_size} records but 'relation.npy' holds "
            f"{len(relation)} rows"
        )
        if strict:
            raise CorruptIndexError(f"{detail} (in {directory!r})")
        index_detail = index_detail or detail

    tree = _tree_from_meta(
        meta["tree"], directory, buffer_capacity, degraded=index_detail is not None
    )

    # Assemble the engine around the existing tree (bypass __init__'s
    # index build but reuse its feature/spectra preparation).
    engine = SimilarityEngine.__new__(SimilarityEngine)
    engine.relation = relation
    engine.space = space
    engine.stats = tree.store.stats
    engine.points = (
        space.extract_many(relation.matrix)
        if len(relation)
        else np.empty((0, space.dim))
    )
    engine.ground_spectra = (
        np.stack([space.series_spectrum(row) for row in relation.matrix])
        if len(relation)
        else np.empty((0, relation.length), dtype=np.complex128)
    )
    engine.tree = tree

    if index_detail is not None:
        # A broken node index takes the kernel down with it: the kernel's
        # leaf ids are only meaningful against a trusted index image.
        engine._index_failed = index_detail
        tree._kernel_disabled = True
        engine._kernel_detail = "unavailable: " + index_detail
    elif kernel_detail is not None:
        tree._kernel_disabled = True
        engine._kernel_detail = kernel_detail
    else:
        kernel_detail = _attach_saved_kernel(
            directory, tree, man, len(relation), strict
        )
        if kernel_detail is not None:
            tree._kernel_disabled = True
            engine._kernel_detail = kernel_detail

    if man is None:
        engine._persist_health = (
            "degraded",
            "loaded without a manifest (legacy image, checksums unverified)",
        )
    else:
        engine._persist_health = ("ok", "manifest verified (crc32)")
    return engine


def _verify_optional(
    directory: str, name: str, files: dict, strict: bool
) -> Optional[str]:
    """Verify a degradable artifact; returns the failure detail (or None)."""
    if name not in files:
        return None
    try:
        mf.verify_file(directory, name, files[name])
    except CorruptIndexError as exc:
        if strict:
            raise
        return str(exc)
    return None


def _load_json(directory: str, name: str) -> dict:
    path = os.path.join(directory, name)
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError as exc:
        raise PersistError(
            f"saved image {directory!r} is missing {name!r}"
        ) from exc
    except Exception as exc:
        raise PersistError(f"unreadable {name!r} in {directory!r}: {exc}") from exc


def _attach_saved_kernel(
    directory: str,
    tree: RTreeBase,
    man: Optional[dict],
    relation_size: int,
    strict: bool,
) -> Optional[str]:
    """Deserialise + validate the saved kernel; returns failure detail."""
    kernel_path = os.path.join(directory, "index_columnar.npz")
    if not os.path.exists(kernel_path):
        return None
    try:
        with np.load(kernel_path) as arrays:
            if man is not None:
                specs = man["files"].get("index_columnar.npz", {}).get("arrays")
                if specs:
                    mf.verify_arrays("index_columnar.npz", arrays, specs)
            kernel = FrozenRTree.from_arrays(arrays, validate=True)
        if kernel.size != relation_size:
            raise CorruptIndexError(
                f"kernel in {directory!r} covers {kernel.size} records, "
                f"relation holds {relation_size}"
            )
    except CorruptIndexError as exc:
        if strict:
            raise
        return str(exc)
    except Exception as exc:  # repro: allow(REP006): non-strict verify reports corruption as a string
        detail = f"unreadable 'index_columnar.npz' in {directory!r}: {exc}"
        if strict:
            raise CorruptIndexError(detail) from exc
        return detail
    attach_kernel(tree, kernel)
    return None


def _space_from_meta(meta: dict) -> FeatureSpace:
    cls = _SPACE_CLASSES.get(meta["class"])
    if cls is None:
        raise PersistError(f"unknown feature space class {meta['class']!r}")
    return cls(
        meta["n"],
        meta["k"],
        coord=meta["coord"],
        exploit_symmetry=meta["exploit_symmetry"],
    )


def _tree_from_meta(
    meta: dict, directory: str, buffer_capacity: int, degraded: bool = False
) -> RTreeBase:
    cls = _TREE_CLASSES.get(meta["class"])
    if cls is None:
        raise PersistError(f"unknown tree class {meta['class']!r}")
    # A failed index never serves reads: back the store with an empty
    # in-memory page file instead of opening (or creating!) the damaged
    # one — the planner routes every query to the sequential scan.
    pagefile = (
        PageFile()
        if degraded
        else PageFile(path=os.path.join(directory, "index.pages"))
    )
    store = PagedNodeStore(
        meta["dim"], pagefile=pagefile, buffer_capacity=buffer_capacity
    )
    # Fill RTreeBase's attributes by hand: __init__ would allocate a fresh
    # empty root, but the root already lives in the page file.
    tree = cls.__new__(cls)
    tree.dim = meta["dim"]
    tree.store = store
    tree.max_entries = meta["max_entries"]
    tree.min_entries = max(2, int(np.ceil(0.4 * meta["max_entries"])))
    tree.size = meta["size"]
    tree.root_id = meta["root_id"]
    tree._root_level = meta["root_level"]
    if cls is RStarTree:
        tree.reinsert_fraction = 0.3
    else:
        tree.split = "quadratic"
    return tree
