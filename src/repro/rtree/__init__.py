"""R-tree family spatial indexes.

This package is a from-scratch implementation of the index substrate the
paper builds on:

* :class:`~repro.rtree.rstar.RStarTree` — Beckmann et al. (1990) R*-tree
  (the paper's experiments run on "Norbert Beckmann's Version 2
  implementation of the R*-tree"), with ChooseSubtree, the R* topological
  split and forced reinsertion,
* :class:`~repro.rtree.guttman.GuttmanRTree` — the original Guttman (1984)
  R-tree with linear and quadratic splits, kept as an index-quality baseline,
* :mod:`~repro.rtree.bulk` — sort-tile-recursive (STR) bulk loading,
* :mod:`~repro.rtree.search` — range search, branch-and-bound nearest
  neighbour (Roussopoulos et al. 1995 MINDIST/MINMAXDIST) and spatial join,
* :class:`~repro.rtree.transformed.TransformedIndexView` — the paper's
  **Algorithm 1**: a lazy view of the index under a safe transformation,
  built on the fly during search with no extra disk,
* :mod:`~repro.rtree.kernel` — the columnar kernel: a built tree frozen
  into struct-of-arrays storage plus the iterative frontier engine that
  runs range, fused multi-query range, block-yield incremental nearest,
  fused batched k-NN and the frontier-pair join over it.

Trees store point entries (feature vectors) at the leaves and can be backed
either by an in-memory node store or by the paged storage engine of
:mod:`repro.storage` for countable disk accesses.
"""

from repro.rtree.geometry import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.kernel import FrontierStats, FrozenRTree, frozen_kernel
from repro.rtree.node import Entry, MemoryNodeStore, Node, PagedNodeStore
from repro.rtree.rstar import RStarTree
from repro.rtree.transformed import AffineMap, TransformedIndexView

__all__ = [
    "AffineMap",
    "Entry",
    "FrontierStats",
    "FrozenRTree",
    "GuttmanRTree",
    "MemoryNodeStore",
    "Node",
    "PagedNodeStore",
    "RStarTree",
    "Rect",
    "TransformedIndexView",
    "frozen_kernel",
]
