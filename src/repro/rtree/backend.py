"""The array-API backend seam: ``xp`` is the active array namespace.

Every hot-path module (the frozen kernel, the physical operators, the
sliding-window featurizer, the ST-index fast paths, geometry, bulk
loading and the feature spaces) imports its array namespace from here —

::

    from repro.rtree.backend import xp

— instead of importing :mod:`numpy` directly.  The static contract
checker enforces this as rule **REP003** (``python -m repro.analysis``),
so the indirection cannot silently erode.

Today ``xp`` *is* NumPy, resolved once at import time, and the shim adds
zero overhead: ``xp.foo`` is the same attribute lookup ``np.foo`` always
was, on the same module object.  The point of the seam is the scale-out
arc (ROADMAP item 2): a CuPy/JAX/torch namespace can be swapped in for
the whole frontier engine by changing this one module — none of the
kernel code names ``numpy`` anymore.

Selection is environment-driven so experiments need no code edits:
``REPRO_ARRAY_BACKEND=numpy`` (the default) is the only backend baked
into the image; asking for ``cupy`` or ``jax`` imports them if present
and fails with a clear error otherwise.  Swapping must happen before the
kernel modules are imported — they bind ``xp`` at import time, which is
exactly what keeps the indirection free on the hot paths.
"""

from __future__ import annotations

import importlib
import os
from types import ModuleType

#: Backends that may be requested via ``REPRO_ARRAY_BACKEND``.  Only
#: ``numpy`` ships with the project; the others are optional accelerator
#: namespaces resolved at import time when installed.
SUPPORTED_BACKENDS = ("numpy", "cupy", "jax.numpy", "torch")


def _resolve(name: str) -> ModuleType:
    """Import the requested array namespace, failing with a typed error."""
    if name not in SUPPORTED_BACKENDS:
        raise ValueError(
            f"unknown array backend {name!r}; expected one of "
            f"{SUPPORTED_BACKENDS}"
        )
    try:
        return importlib.import_module(name)
    except ImportError as exc:
        raise ImportError(
            f"array backend {name!r} was requested via REPRO_ARRAY_BACKEND "
            f"but is not installed: {exc}"
        ) from exc


#: The name of the active backend (``"numpy"`` unless overridden).
BACKEND_NAME: str = os.environ.get("REPRO_ARRAY_BACKEND", "numpy")

#: The active array namespace.  Hot-path modules must import this — and
#: only this — as their array API (contract REP003).
xp: ModuleType = _resolve(BACKEND_NAME)


def array_namespace() -> ModuleType:
    """The active array namespace (late-bound accessor for cold paths)."""
    return xp
