"""The array-API backend seam: ``xp`` is the active array namespace.

Every hot-path module (the frozen kernel, the physical operators, the
sliding-window featurizer, the ST-index fast paths, geometry, bulk
loading and the feature spaces) imports its array namespace from here —

::

    from repro.rtree.backend import xp

— instead of importing :mod:`numpy` directly.  The static contract
checker enforces this as rule **REP003** (``python -m repro.analysis``),
so the indirection cannot silently erode.

Today ``xp`` *is* NumPy, resolved once at import time, and the shim adds
zero overhead: ``xp.foo`` is the same attribute lookup ``np.foo`` always
was, on the same module object.  The point of the seam is the scale-out
arc (ROADMAP item 2): a CuPy/JAX/torch namespace can be swapped in for
the whole frontier engine by changing this one module — none of the
kernel code names ``numpy`` anymore.

Selection is environment-driven so experiments need no code edits:
``REPRO_ARRAY_BACKEND=numpy`` (the default) is the only backend baked
into the image; asking for ``cupy`` or ``jax`` imports them if present
and fails with a clear error otherwise.  Swapping must happen before the
kernel modules are imported — they bind ``xp`` at import time, which is
exactly what keeps the indirection free on the hot paths.
"""

from __future__ import annotations

import importlib
import os
from types import ModuleType

#: Backends that may be requested via ``REPRO_ARRAY_BACKEND``.  Only
#: ``numpy`` ships with the project; the others are optional accelerator
#: namespaces resolved at import time when installed.
SUPPORTED_BACKENDS = ("numpy", "cupy", "jax.numpy", "torch")


def _resolve(name: str) -> ModuleType:
    """Import the requested array namespace, failing with a typed error."""
    if name not in SUPPORTED_BACKENDS:
        raise ValueError(
            f"unknown array backend {name!r}; expected one of "
            f"{SUPPORTED_BACKENDS}"
        )
    try:
        return importlib.import_module(name)
    except ImportError as exc:
        raise ImportError(
            f"array backend {name!r} was requested via REPRO_ARRAY_BACKEND "
            f"but is not installed: {exc}"
        ) from exc


#: The name of the active backend (``"numpy"`` unless overridden).
BACKEND_NAME: str = os.environ.get("REPRO_ARRAY_BACKEND", "numpy")

#: The active array namespace.  Hot-path modules must import this — and
#: only this — as their array API (contract REP003).
xp: ModuleType = _resolve(BACKEND_NAME)


def array_namespace() -> ModuleType:
    """The active array namespace (late-bound accessor for cold paths)."""
    return xp


#: Environment variable naming the kernel worker count (see below).
KERNEL_THREADS_VAR = "REPRO_KERNEL_THREADS"


def resolve_worker_count(spec: "str | int | None" = None) -> int:
    """Resolve a kernel worker-count request to a concrete thread count.

    The sibling knob to the array-backend selection above: where
    ``REPRO_ARRAY_BACKEND`` picks *what* runs the frontier math,
    ``REPRO_KERNEL_THREADS`` picks *how many* threads the parallel
    executor (:mod:`repro.rtree.parallel`) shards fused batches across.

    ``spec`` falls back to the environment variable when ``None``:

    * ``1`` / unset      — today's serial path (no thread pool at all);
    * ``0`` / ``"auto"`` — one worker per available CPU;
    * any other positive integer — that many workers.

    Unlike the backend, this is resolved *per call* rather than at import
    time — worker count changes execution schedule, never results, so it
    is safe (and handy for tests) to vary between engine constructions
    without reloading modules.
    """
    source = "worker count"
    if spec is None:
        spec = os.environ.get(KERNEL_THREADS_VAR, "1")
        source = f"{KERNEL_THREADS_VAR} value"
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in ("", "auto"):
            spec = 0
        else:
            try:
                spec = int(text)
            except ValueError:
                raise ValueError(
                    f"invalid kernel {source} {spec!r}; expected a "
                    f"non-negative integer or 'auto'"
                ) from None
    if spec < 0:
        raise ValueError(
            f"invalid kernel {source} {spec!r}; expected a "
            f"non-negative integer or 'auto'"
        )
    if spec == 0:
        return max(1, os.cpu_count() or 1)
    return spec


#: Environment variable naming the supervisor's watchdog grace (ms).
WATCHDOG_GRACE_VAR = "REPRO_KERNEL_WATCHDOG_GRACE_MS"

#: Default watchdog grace: how far past a query's budget deadline the
#: execution supervisor waits for an in-flight block before declaring
#: the worker wedged and abandoning the pool.
DEFAULT_WATCHDOG_GRACE_MS = 50.0


def resolve_watchdog_grace(spec: "str | float | None" = None) -> float:
    """Resolve the supervisor's watchdog grace period to milliseconds.

    The third knob of this seam, next to ``REPRO_ARRAY_BACKEND`` (what
    runs the frontier math) and ``REPRO_KERNEL_THREADS`` (how many
    threads shard it): ``REPRO_KERNEL_WATCHDOG_GRACE_MS`` sets how long
    the supervisor in :mod:`repro.rtree.parallel` lets a block run past
    its query's ``ResourceBudget`` deadline before treating the worker
    as wedged.  Grace changes only *when* a watchdog trips, never any
    query result.  ``spec`` falls back to the environment variable when
    ``None``; the value must be a non-negative number of milliseconds.
    """
    source = "watchdog grace"
    if spec is None:
        spec = os.environ.get(WATCHDOG_GRACE_VAR, "")
        source = f"{WATCHDOG_GRACE_VAR} value"
        if isinstance(spec, str) and not spec.strip():
            return DEFAULT_WATCHDOG_GRACE_MS
    if isinstance(spec, str):
        try:
            spec = float(spec.strip())
        except ValueError:
            raise ValueError(
                f"invalid kernel {source} {spec!r}; expected a "
                f"non-negative number of milliseconds"
            ) from None
    if spec < 0:
        raise ValueError(
            f"invalid kernel {source} {spec!r}; expected a "
            f"non-negative number of milliseconds"
        )
    return float(spec)
