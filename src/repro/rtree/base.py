"""Shared R-tree machinery: insertion framework, deletion, validation.

Concrete trees (:class:`~repro.rtree.rstar.RStarTree`,
:class:`~repro.rtree.guttman.GuttmanRTree`) override two policy points:

* :meth:`RTreeBase._choose_subtree` — which child absorbs a new entry, and
* :meth:`RTreeBase._split_entries` — how an overflowing node's entries are
  partitioned into two groups,

plus optionally :meth:`RTreeBase._handle_overflow` (the R*-tree uses it to
implement forced reinsertion).  Everything else — path maintenance, MBR
adjustment, root growth/shrink, deletion with condense, and structural
validation — lives here and is policy-independent.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, MemoryNodeStore, Node, NodeStore, PagedNodeStore


class RTreeError(Exception):
    """Raised on structural misuse (bad dimension, missing record, ...)."""


class RTreeBase:
    """Common base for R-tree variants storing rectangle/point entries.

    Args:
        dim: dimensionality of indexed rectangles.
        store: node store; an in-memory store is created when omitted.
        max_entries: node fanout cap; for paged stores this is additionally
            clamped to what a page can hold.
        min_fill: minimum fill fraction (Guttman's ``m``); nodes below
            ``ceil(min_fill * max_entries)`` entries are condensed away.
    """

    def __init__(
        self,
        dim: int,
        store: Optional[NodeStore] = None,
        max_entries: Optional[int] = None,
        min_fill: float = 0.4,
    ) -> None:
        if dim <= 0:
            raise RTreeError(f"dim must be positive, got {dim}")
        if not 0.0 < min_fill <= 0.5:
            raise RTreeError(f"min_fill must be in (0, 0.5], got {min_fill}")
        self.dim = dim
        self.store: NodeStore = store if store is not None else MemoryNodeStore()
        cap = max_entries if max_entries is not None else 32
        if isinstance(self.store, PagedNodeStore):
            # A node transiently holds max_entries + 1 entries between the
            # overflow and the split, and that state is written to its page,
            # so one slot of page capacity is kept in reserve.
            cap = min(cap, self.store.max_entries - 1)
        if cap < 4:
            raise RTreeError(f"max_entries must be at least 4, got {cap}")
        self.max_entries = cap
        self.min_entries = max(2, int(np.ceil(min_fill * cap)))
        self.size = 0
        #: bumped by every insert/delete; the columnar kernel
        #: (:func:`repro.rtree.kernel.frozen_kernel`) caches against it so a
        #: frozen image is refrozen after any structural mutation.
        self._mutations = 0
        root = Node(node_id=self.store.allocate(), level=0, entries=[])
        self.store.write(root)
        self.root_id = root.node_id
        self._root_level = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        return self._root_level + 1

    def insert_point(self, point: Sequence[float], record_id: int) -> None:
        """Insert a point entry (a degenerate rectangle) for ``record_id``."""
        self.insert(Rect.from_point(point), record_id)

    def insert(self, rect: Rect, record_id: int) -> None:
        """Insert a rectangle entry for ``record_id``."""
        if rect.dim != self.dim:
            raise RTreeError(f"rect dim {rect.dim} does not match tree dim {self.dim}")
        self._reinserted_levels: set[int] = set()
        self._mutations += 1
        self._insert_entry(Entry(rect, record_id), level=0)
        self.size += 1

    def delete(self, rect: Rect, record_id: int) -> bool:
        """Delete the entry matching ``rect`` and ``record_id``.

        Returns ``True`` when an entry was found and removed.  Underfull
        nodes are condensed: their surviving entries are reinserted at the
        appropriate level (Guttman's CondenseTree).
        """
        if rect.dim != self.dim:
            raise RTreeError(f"rect dim {rect.dim} does not match tree dim {self.dim}")
        path = self._find_leaf(self.root_id, rect, record_id, [])
        if path is None:
            return False
        self._mutations += 1
        leaf = path[-1]
        leaf.entries = [
            e
            for e in leaf.entries
            if not (e.child == record_id and e.rect.approx_equal(rect))
        ]
        self.store.write(leaf)
        self._condense(path)
        self.size -= 1
        # Shrink the root while it is an internal node with one child.
        root = self.store.read(self.root_id)
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].child
            self.store.free(root.node_id)
            self.root_id = child_id
            root = self.store.read(child_id)
            self._root_level = root.level
        return True

    def delete_point(self, point: Sequence[float], record_id: int) -> bool:
        """Delete a point entry inserted via :meth:`insert_point`."""
        return self.delete(Rect.from_point(point), record_id)

    def search(self, query: Rect) -> list[Entry]:
        """All leaf entries whose rectangle intersects ``query``."""
        out: list[Entry] = []
        self._search(self.root_id, query, out)
        return out

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Entry]:
        """Iterate over every leaf entry in the tree."""
        yield from self._iter_node(self.root_id)

    def root_mbr(self) -> Optional[Rect]:
        """MBR of the whole tree, or ``None`` when empty."""
        root = self.store.read(self.root_id)
        if not root.entries:
            return None
        return root.mbr()

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """Index of the child entry that should absorb ``rect``."""
        raise NotImplementedError

    def _split_entries(
        self, entries: list[Entry], level: int
    ) -> tuple[list[Entry], list[Entry]]:
        """Partition an overflowing entry list into two non-empty groups."""
        raise NotImplementedError

    def _overflow_entries(self, node: Node, is_root: bool) -> Optional[list[Entry]]:
        """Hook called on an overflowing node *before* splitting.

        May remove entries from ``node`` (mutating it) and return them for
        reinsertion at ``node.level`` — the R*-tree's forced reinsertion.
        Returning ``None`` (the default) requests a split instead.
        """
        return None

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: Entry, level: int) -> None:
        """Insert ``entry`` at tree ``level`` (0 = leaf level)."""
        if level > self._root_level:
            raise RTreeError(
                f"cannot insert at level {level}; tree height is {self.height}"
            )
        path: list[tuple[Node, int]] = []  # (node, chosen child index)
        node = self.store.read(self.root_id)
        while node.level > level:
            idx = self._choose_subtree(node, entry.rect)
            path.append((node, idx))
            node = self.store.read(node.entries[idx].child)
        node.entries.append(entry)
        self.store.write(node)
        self._propagate(node, path)

    def _propagate(self, node: Node, path: list[tuple[Node, int]]) -> None:
        """Fix MBRs and resolve overflows from ``node`` up to the root.

        ``chain[d]`` is the node at depth ``d`` (root first); ``idxs[d]`` is
        the index of ``chain[d+1]``'s entry inside ``chain[d]``.
        """
        chain = [p for p, _ in path] + [node]
        idxs = [i for _, i in path]
        pending: Optional[Node] = None  # split sibling awaiting registration
        for d in range(len(chain) - 1, -1, -1):
            cur = chain[d]
            if pending is not None:
                cur.entries.append(Entry(pending.mbr(), pending.node_id))
                pending = None
                self.store.write(cur)
            if len(cur.entries) > self.max_entries:
                reinserts = self._overflow_entries(cur, is_root=(d == 0))
                if reinserts is not None:
                    # Forced reinsertion: tighten the ancestors of the
                    # shrunken node, then re-insert the evicted entries.
                    self.store.write(cur)
                    for dd in range(d - 1, -1, -1):
                        chain[dd].entries[idxs[dd]].rect = chain[dd + 1].mbr()
                        self.store.write(chain[dd])
                    for e in reinserts:
                        self._insert_entry(e, cur.level)
                    return
                pending = self._split_node(cur)
            if d > 0:
                chain[d - 1].entries[idxs[d - 1]].rect = cur.mbr()
                self.store.write(chain[d - 1])
        if pending is not None:
            self._grow_root(chain[0], pending)

    def _split_node(self, node: Node) -> Node:
        """Split ``node`` in place; return the freshly written sibling."""
        group_a, group_b = self._split_entries(node.entries, node.level)
        if not group_a or not group_b:
            raise RTreeError("split produced an empty group")
        node.entries = group_a
        self.store.write(node)
        sibling = Node(node_id=self.store.allocate(), level=node.level, entries=group_b)
        self.store.write(sibling)
        return sibling

    def _grow_root(self, old_root: Node, sibling: Node) -> None:
        """Create a new root above ``old_root`` and ``sibling``."""
        new_root = Node(
            node_id=self.store.allocate(),
            level=old_root.level + 1,
            entries=[
                Entry(old_root.mbr(), old_root.node_id),
                Entry(sibling.mbr(), sibling.node_id),
            ],
        )
        self.store.write(new_root)
        self.root_id = new_root.node_id
        self._root_level = new_root.level

    # ------------------------------------------------------------------
    # deletion helpers
    # ------------------------------------------------------------------
    def _find_leaf(
        self, node_id: int, rect: Rect, record_id: int, path: list[Node]
    ) -> Optional[list[Node]]:
        node = self.store.read(node_id)
        path = path + [node]
        if node.is_leaf:
            for e in node.entries:
                if e.child == record_id and e.rect.approx_equal(rect):
                    return path
            return None
        for e in node.entries:
            if e.rect.intersects(rect):
                found = self._find_leaf(e.child, rect, record_id, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: list[Node]) -> None:
        """Guttman's CondenseTree: prune underfull nodes, reinsert orphans."""
        orphans: list[tuple[Entry, int]] = []  # (entry, level)
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            child_idx = next(
                i for i, e in enumerate(parent.entries) if e.child == node.node_id
            )
            if len(node.entries) < self.min_entries:
                orphans.extend((e, node.level) for e in node.entries)
                del parent.entries[child_idx]
                self.store.free(node.node_id)
            else:
                parent.entries[child_idx].rect = node.mbr()
            self.store.write(parent)
        for entry, level in orphans:
            self._reinserted_levels = set()
            if level > self._root_level:
                # The tree shrank below the orphan's level; push its leaves.
                for leaf_entry in self._collect_leaf_entries(entry):
                    self._insert_entry(leaf_entry, 0)
            else:
                self._insert_entry(entry, level)

    def _collect_leaf_entries(self, entry: Entry) -> list[Entry]:
        """All leaf entries beneath an orphaned internal entry."""
        node = self.store.read(entry.child)
        out: list[Entry] = []
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                out.extend(n.entries)
            else:
                for e in n.entries:
                    stack.append(self.store.read(e.child))
            self.store.free(n.node_id)
        return out

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def _search(self, node_id: int, query: Rect, out: list[Entry]) -> None:
        node = self.store.read(node_id)
        if node.is_leaf:
            out.extend(e for e in node.entries if query.intersects(e.rect))
            return
        for e in node.entries:
            if e.rect.intersects(query):
                self._search(e.child, query, out)

    def _iter_node(self, node_id: int) -> Iterator[Entry]:
        node = self.store.read(node_id)
        if node.is_leaf:
            yield from node.entries
            return
        for e in node.entries:
            yield from self._iter_node(e.child)

    # ------------------------------------------------------------------
    # validation (used heavily by the test-suite)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant; raise :class:`RTreeError` if broken."""
        root = self.store.read(self.root_id)
        if root.level != self._root_level:
            raise RTreeError("root level bookkeeping is stale")
        count = self._validate_node(root, is_root=True)
        if count != self.size:
            raise RTreeError(f"size mismatch: counted {count}, recorded {self.size}")

    def _validate_node(self, node: Node, is_root: bool) -> int:
        if not is_root and len(node.entries) < self.min_entries:
            raise RTreeError(
                f"node {node.node_id} underfull: {len(node.entries)} < {self.min_entries}"
            )
        if len(node.entries) > self.max_entries:
            raise RTreeError(
                f"node {node.node_id} overfull: {len(node.entries)} > {self.max_entries}"
            )
        if node.is_leaf:
            return len(node.entries)
        count = 0
        for e in node.entries:
            child = self.store.read(e.child)
            if child.level != node.level - 1:
                raise RTreeError(
                    f"child {child.node_id} at level {child.level}, parent at {node.level}"
                )
            actual = child.mbr()
            if not e.rect.approx_equal(actual, tol=1e-7):
                if not e.rect.contains(actual):
                    raise RTreeError(
                        f"parent MBR of node {child.node_id} does not cover the child"
                    )
            count += self._validate_node(child, is_root=False)
        return count

    def node_count(self) -> int:
        """Total number of nodes in the tree (walks the whole structure)."""
        total = 0
        stack = [self.root_id]
        while stack:
            node = self.store.read(stack.pop())
            total += 1
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)
        return total
