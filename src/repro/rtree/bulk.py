"""Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., 1997).

Building a tree by repeated insertion is what the paper did; STR packing is
provided as the standard fast alternative for the benchmark setup phase and
as an index-quality ablation (packed trees have near-minimal node counts
and no dead space, which bounds how much of the R*-tree's advantage comes
from its insertion policies).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.rtree.backend import xp

from repro.rtree.base import RTreeBase
from repro.rtree.geometry import Rect, union_all
from repro.rtree.node import Entry, Node, NodeStore
from repro.rtree.rstar import RStarTree


def str_pack(
    points: Sequence[Sequence[float]],
    record_ids: Optional[Sequence[int]] = None,
    store: Optional[NodeStore] = None,
    max_entries: int = 32,
    tree_cls: type[RTreeBase] = RStarTree,
) -> RTreeBase:
    """Build a packed tree over ``points`` using sort-tile-recursive order.

    Args:
        points: array-like of shape ``(n, dim)``.
        record_ids: ids stored at the leaves; defaults to ``0..n-1``.
        store: node store for the new tree.
        max_entries: node capacity (clamped by the page size for paged stores).
        tree_cls: tree class to instantiate; only its search/insert/delete
            policies matter after packing, the packed structure is identical.

    Returns:
        a tree of ``tree_cls`` whose leaves are filled tile-by-tile.
    """
    pts = xp.asarray(points, dtype=xp.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D (n, dim), got shape {pts.shape}")
    return str_pack_rects(
        pts, pts, record_ids=record_ids, store=store,
        max_entries=max_entries, tree_cls=tree_cls,
    )


def str_pack_rects(
    lows: Sequence[Sequence[float]],
    highs: Sequence[Sequence[float]],
    record_ids: Optional[Sequence[int]] = None,
    store: Optional[NodeStore] = None,
    max_entries: int = 32,
    tree_cls: type[RTreeBase] = RStarTree,
) -> RTreeBase:
    """Build a packed tree over leaf *rectangles* (STR on their centers).

    The general form of :func:`str_pack` for payloads whose leaf entries
    are true boxes rather than degenerate points — e.g. the ST-index's
    sub-trail MBRs, bulk-loaded with their ``(series, offset range)`` ids.
    Tiling order sorts by rectangle center per axis, which reduces to the
    classic point ordering when ``lows == highs``.

    Args:
        lows, highs: ``(n, dim)`` leaf rectangle bounds.
        record_ids: ids stored at the leaves; defaults to ``0..n-1``.
        store: node store for the new tree.
        max_entries: node capacity (clamped by the page size for paged stores).
        tree_cls: tree class to instantiate.

    Returns:
        a tree of ``tree_cls`` whose leaves are filled tile-by-tile.
    """
    los = xp.asarray(lows, dtype=xp.float64)
    his = xp.asarray(highs, dtype=xp.float64)
    if los.ndim != 2 or los.shape != his.shape:
        raise ValueError(
            f"lows/highs must be matching 2-D (n, dim), got {los.shape} vs {his.shape}"
        )
    n, dim = los.shape
    ids = xp.arange(n) if record_ids is None else xp.asarray(record_ids)
    if len(ids) != n:
        raise ValueError(f"{n} rectangles but {len(ids)} record ids")

    tree = tree_cls(dim, store=store, max_entries=max_entries)
    if n == 0:
        return tree
    cap = tree.max_entries

    entries = [Entry(Rect(los[i], his[i]), int(ids[i])) for i in range(n)]
    level = 0
    while len(entries) > cap:
        entries = _pack_level(
            entries, cap, tree.min_entries, dim, level, tree.store
        )
        level += 1
    root = Node(node_id=tree.root_id, level=level, entries=entries)
    tree.store.write(root)
    tree._root_level = level
    tree.size = n
    return tree


def _pack_level(
    entries: list[Entry],
    cap: int,
    min_entries: int,
    dim: int,
    level: int,
    store: NodeStore,
) -> list[Entry]:
    """Group one level of entries into parent entries via STR tiling."""
    groups = _fixup_groups(_str_tile(entries, cap, dim, axis=0), min_entries, cap)
    parents: list[Entry] = []
    for group in groups:
        node = Node(node_id=store.allocate(), level=level, entries=group)
        store.write(node)
        parents.append(Entry(union_all(e.rect for e in group), node.node_id))
    return parents


def _fixup_groups(
    groups: list[list[Entry]], min_entries: int, cap: int
) -> list[list[Entry]]:
    """Repair STR remainder tiles so every group satisfies the fill bounds.

    Plain STR can leave the trailing tile of a slab with fewer than the
    tree's minimum entry count.  Working right to left, an underfull group
    either borrows from its left neighbour (when the neighbour can spare),
    merges into it (when the union fits a node), or the union is split in
    half (both halves then satisfy the minimum because ``cap >= 2 * m``-ish
    fill policies make each half at least ``(cap + 1) // 2``).
    """
    if len(groups) <= 1:
        return groups
    out = [list(g) for g in groups]
    i = len(out) - 1
    while i >= 1:
        if len(out[i]) >= min_entries:
            i -= 1
            continue
        left = out[i - 1]
        deficit = min_entries - len(out[i])
        if len(left) - deficit >= min_entries:
            out[i] = left[len(left) - deficit :] + out[i]
            del left[len(left) - deficit :]
        elif len(left) + len(out[i]) <= cap:
            left.extend(out[i])
            del out[i]
        else:
            merged = left + out[i]
            half = len(merged) // 2
            out[i - 1] = merged[:half]
            out[i] = merged[half:]
        i -= 1
    return out


def _str_tile(
    entries: list[Entry], cap: int, dim: int, axis: int
) -> list[list[Entry]]:
    """Sort-and-tile entries into groups of at most ``cap``.

    Iterative over an explicit worklist (one frame per slab, ordered so
    output matches the textbook depth-first formulation) — kernel-scoped
    modules never recurse (REP004).
    """
    out: list[list[Entry]] = []
    work: list[tuple[list[Entry], int]] = [(entries, axis)]
    while work:
        chunk, ax = work.pop()
        n = len(chunk)
        if n <= cap:
            out.append(chunk)
            continue
        num_leaves = math.ceil(n / cap)
        ordered = sorted(chunk, key=lambda e: float(e.rect.center[ax]))
        if ax == dim - 1:
            out.extend(ordered[i : i + cap] for i in range(0, n, cap))
            continue
        # Number of slabs along this axis: ceil((#leaves)^(1/(remaining dims))).
        remaining = dim - ax
        slabs = math.ceil(num_leaves ** (1.0 / remaining))
        slab_size = math.ceil(n / slabs)
        work.extend(
            (ordered[i : i + slab_size], ax + 1)
            for i in reversed(range(0, n, slab_size))
        )
    return out
