"""Axis-aligned rectangles and the metrics R-trees are built from.

Everything an R-tree variant needs lives here: areas, margins, enlargement,
pairwise overlap, unions, and the MINDIST / MINMAXDIST point-to-rectangle
metrics of Roussopoulos, Kelley & Vincent (1995) used for nearest-neighbour
pruning.

One extension beyond the paper: *circular dimensions*.  The polar feature
space stores phase angles, which live on a circle of period ``2*pi``.  The
paper's search rectangles implicitly assume angles do not wrap; to keep the
no-false-dismissal guarantee watertight near the ``±pi`` boundary this
module offers wrap-aware interval intersection (:func:`intersects_circular`)
that the query engine enables on phase dimensions.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.rtree.backend import xp

__all__ = [
    "Rect",
    "union_all",
    "intersects_circular",
    "intersects_circular_many",
    "intersects_circular_pairwise",
    "intersects_circular_rows",
    "TWO_PI",
]

TWO_PI = 2.0 * math.pi


class Rect:
    """An axis-aligned hyper-rectangle ``[lows, highs]`` (closed on both ends).

    Points are represented as degenerate rectangles with ``lows == highs``;
    this is how leaf entries store feature vectors.

    The class is immutable in spirit: methods return new rectangles.  The
    underlying arrays are float64 and never aliased to caller data.
    """

    __slots__ = ("lows", "highs")

    def __init__(self, lows: Sequence[float], highs: Sequence[float]) -> None:
        self.lows = xp.asarray(lows, dtype=xp.float64).copy()
        self.highs = xp.asarray(highs, dtype=xp.float64).copy()
        if self.lows.shape != self.highs.shape or self.lows.ndim != 1:
            raise ValueError(
                f"lows/highs must be 1-D and equal length, got {self.lows.shape} "
                f"and {self.highs.shape}"
            )
        if xp.any(self.lows > self.highs):
            raise ValueError(f"lows must not exceed highs: {self.lows} > {self.highs}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """A degenerate rectangle at ``point``."""
        arr = xp.asarray(point, dtype=xp.float64)
        return cls(arr, arr)

    @classmethod
    def around(cls, center: Sequence[float], radius: float) -> "Rect":
        """The L-infinity ball of ``radius`` around ``center``.

        This is the minimum bounding rectangle of the Euclidean
        ``radius``-ball used to build search rectangles in the rectangular
        coordinate system (Section 3.1).
        """
        c = xp.asarray(center, dtype=xp.float64)
        return cls(c - radius, c + radius)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return self.lows.shape[0]

    @property
    def center(self) -> xp.ndarray:
        """Geometric centre of the rectangle."""
        return (self.lows + self.highs) / 2.0

    @property
    def extents(self) -> xp.ndarray:
        """Per-dimension side lengths."""
        return self.highs - self.lows

    def is_point(self, tol: float = 0.0) -> bool:
        """True when every side is no longer than ``tol``."""
        return bool(xp.all(self.extents <= tol))

    def area(self) -> float:
        """Product of side lengths (volume in d dimensions)."""
        return float(xp.prod(self.extents))

    def margin(self) -> float:
        """Sum of side lengths — the R* split's perimeter surrogate."""
        return float(xp.sum(self.extents))

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point."""
        return bool(
            xp.all(self.lows <= other.highs) and xp.all(other.lows <= self.highs)
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside ``self`` (closed)."""
        return bool(
            xp.all(self.lows <= other.lows) and xp.all(other.highs <= self.highs)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside the closed rectangle."""
        p = xp.asarray(point, dtype=xp.float64)
        return bool(xp.all(self.lows <= p) and xp.all(p <= self.highs))

    def strictly_contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies in the open interior."""
        p = xp.asarray(point, dtype=xp.float64)
        return bool(xp.all(self.lows < p) and xp.all(p < self.highs))

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """Minimum bounding rectangle of both rectangles."""
        return Rect(
            xp.minimum(self.lows, other.lows), xp.maximum(self.highs, other.highs)
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlapping region, or ``None`` when disjoint."""
        lows = xp.maximum(self.lows, other.lows)
        highs = xp.minimum(self.highs, other.highs)
        if xp.any(lows > highs):
            return None
        return Rect(lows, highs)

    def overlap_area(self, other: "Rect") -> float:
        """Volume of the intersection (0 when disjoint)."""
        sides = xp.minimum(self.highs, other.highs) - xp.maximum(
            self.lows, other.lows
        )
        if xp.any(sides < 0):
            return 0.0
        return float(xp.prod(sides))

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (Guttman's criterion)."""
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------
    # RKV95 metrics
    # ------------------------------------------------------------------
    def mindist(self, point: Sequence[float]) -> float:
        """MINDIST: least possible distance from ``point`` to this rectangle.

        Zero when the point is inside.  This is an optimistic bound: no
        object in the subtree rooted at this MBR can be closer.
        """
        p = xp.asarray(point, dtype=xp.float64)
        clamped = xp.clip(p, self.lows, self.highs)
        return float(xp.linalg.norm(p - clamped))

    @staticmethod
    def mindist_many(
        lows: xp.ndarray, highs: xp.ndarray, point: Sequence[float]
    ) -> xp.ndarray:
        """MINDIST from ``point`` to many rectangles at once.

        ``lows``/``highs`` are stacked ``(m, d)`` bounds (one row per
        rectangle, e.g. :meth:`repro.rtree.node.Node.stacked_rects`);
        returns the ``(m,)`` distances — one numpy call per node instead
        of one :meth:`mindist` call per entry.
        """
        p = xp.asarray(point, dtype=xp.float64)
        clamped = xp.clip(p, lows, highs)
        return xp.linalg.norm(p - clamped, axis=1)

    @staticmethod
    def intersects_many(
        lows: xp.ndarray,
        highs: xp.ndarray,
        qlo: Sequence[float],
        qhi: Sequence[float],
    ) -> xp.ndarray:
        """Closed-rectangle intersection of many rectangles with one query.

        The plain (non-circular) counterpart of
        :func:`intersects_circular_many`; returns a boolean ``(m,)`` mask.
        """
        qlo = xp.asarray(qlo, dtype=xp.float64)
        qhi = xp.asarray(qhi, dtype=xp.float64)
        return xp.all(lows <= qhi, axis=1) & xp.all(qlo <= highs, axis=1)

    def minmaxdist(self, point: Sequence[float]) -> float:
        """MINMAXDIST of Roussopoulos et al. (1995).

        The smallest over dimensions k of the largest distance to the face
        nearest in dimension k; an upper bound on the distance to the
        closest object *guaranteed* to exist inside the MBR.
        """
        p = xp.asarray(point, dtype=xp.float64)
        # rm: nearer edge per dimension; rM: farther edge per dimension.
        mid = (self.lows + self.highs) / 2.0
        rm = xp.where(p <= mid, self.lows, self.highs)
        rM = xp.where(p >= mid, self.lows, self.highs)
        far_sq = (p - rM) ** 2
        near_sq = (p - rm) ** 2
        # For each k: swap the k-th farther-edge term for the nearer edge.
        # Summed per candidate (O(d^2), d is small) rather than as
        # ``total_far - far_sq + near_sq``: the subtraction cancels
        # catastrophically when one dimension's extent dwarfs the others,
        # which could push MINMAXDIST (an upper bound) below MINDIST.
        d = p.shape[0]
        candidates = xp.tile(far_sq, (d, 1))
        xp.fill_diagonal(candidates, near_sq)
        return float(math.sqrt(float(xp.min(candidates.sum(axis=1)))))

    def max_dist(self, point: Sequence[float]) -> float:
        """Largest possible distance from ``point`` to anywhere in the MBR."""
        p = xp.asarray(point, dtype=xp.float64)
        far = xp.maximum(xp.abs(p - self.lows), xp.abs(p - self.highs))
        return float(xp.linalg.norm(far))

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return bool(
            xp.array_equal(self.lows, other.lows)
            and xp.array_equal(self.highs, other.highs)
        )

    def __hash__(self) -> int:
        return hash((self.lows.tobytes(), self.highs.tobytes()))

    def approx_equal(self, other: "Rect", tol: float = 1e-9) -> bool:
        """Equality up to ``tol`` per coordinate."""
        return bool(
            xp.allclose(self.lows, other.lows, atol=tol)
            and xp.allclose(self.highs, other.highs, atol=tol)
        )

    def __repr__(self) -> str:
        return f"Rect({self.lows.tolist()}, {self.highs.tolist()})"


def union_all(rects: Iterable[Rect]) -> Rect:
    """Minimum bounding rectangle of a non-empty collection."""
    it = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("union_all() requires at least one rectangle") from None
    lows = first.lows.copy()
    highs = first.highs.copy()
    for r in it:
        xp.minimum(lows, r.lows, out=lows)
        xp.maximum(highs, r.highs, out=highs)
    return Rect(lows, highs)


def _interval_intersects_circular(
    lo_a: float, hi_a: float, lo_b: float, hi_b: float, period: float
) -> bool:
    """Wrap-aware 1-D interval intersection on a circle of ``period``.

    Intervals are given by a start point and an implicit width
    (``hi - lo``); one whose width is >= period covers the whole circle.
    Two intervals ``[a0, a0+wa]`` and ``[b0, b0+wb]`` on the circle
    intersect iff ``(b0 - a0) mod period <= wa`` or
    ``(a0 - b0) mod period <= wb``.  The reduction is applied to the
    *differences*, never endpoint by endpoint — folding an endpoint that
    sits a denormal below zero rounds it onto 0 and silently moves the
    interval — so this scalar reference and the vectorised closed forms
    (:func:`intersects_circular_many` and friends) evaluate literally the
    same IEEE operations and agree bit-for-bit.
    """
    wa = hi_a - lo_a
    wb = hi_b - lo_b
    if wa >= period or wb >= period:
        return True
    return (lo_b - lo_a) % period <= wa or (lo_a - lo_b) % period <= wb


def intersects_circular_many(
    lows: xp.ndarray,
    highs: xp.ndarray,
    qlo: xp.ndarray,
    qhi: xp.ndarray,
    circular_mask: Optional[xp.ndarray] = None,
    period: float = TWO_PI,
) -> xp.ndarray:
    """Vectorised rectangle-vs-query intersection with circular dimensions.

    Args:
        lows, highs: ``(m, d)`` per-rectangle bounds.
        qlo, qhi: ``(d,)`` query bounds.
        circular_mask: boolean ``(d,)`` mask of wrap-around dimensions.
        period: circumference of circular dimensions.

    Returns:
        boolean array of length ``m``: which rectangles meet the query.

    Two intervals ``[a0, a0+wa]`` and ``[b0, b0+wb]`` on a circle intersect
    iff ``(b0 - a0) mod period <= wa`` or ``(a0 - b0) mod period <= wb``
    (or either covers the whole circle); that closed form is what the
    vectorised path evaluates, and the scalar :func:`intersects_circular`
    cross-checks it in the property tests.
    """
    m = lows.shape[0]
    out = xp.ones(m, dtype=bool)
    if circular_mask is None:
        circular_mask = xp.zeros(lows.shape[1], dtype=bool)
    linear = ~circular_mask
    if xp.any(linear):
        out &= xp.all(lows[:, linear] <= qhi[linear], axis=1)
        out &= xp.all(qlo[linear] <= highs[:, linear], axis=1)
    for d in xp.nonzero(circular_mask)[0]:
        wa = highs[:, d] - lows[:, d]
        wb = qhi[d] - qlo[d]
        hit = _circular_offsets_hit(lows[:, d], qlo[d], wa, wb, period)
        out &= hit
    return out


def _circular_offsets_hit(a0, b0, wa, wb, period):
    """Closed-form circular interval intersection from raw start points.

    The offsets are reduced *as differences* — ``(b0 - a0) % period`` —
    never endpoint by endpoint: folding an endpoint that sits a denormal
    below zero rounds it onto 0 and silently widens the interval, which
    is the one place the closed form used to disagree with the scalar
    split-segment reference.  A difference that itself rounds to exactly
    ``period`` means "almost a full circle away", not "touching", and the
    opposite-direction disjunct covers the true near-touch case.
    """
    return (
        (wa >= period)
        | (wb >= period)
        | ((b0 - a0) % period <= wa)
        | ((a0 - b0) % period <= wb)
    )


def intersects_circular_pairwise(
    lows: xp.ndarray,
    highs: xp.ndarray,
    qlows: xp.ndarray,
    qhighs: xp.ndarray,
    circular_mask: Optional[xp.ndarray] = None,
    period: float = TWO_PI,
) -> xp.ndarray:
    """All-pairs rectangle intersection: many rectangles × many queries.

    The two-sided generalisation of :func:`intersects_circular_many`, used
    by the multi-query R-tree descent to test one node's entries against a
    whole batch of search rectangles in a single broadcast.

    Args:
        lows, highs: ``(f, d)`` per-rectangle bounds.
        qlows, qhighs: ``(m, d)`` per-query bounds.
        circular_mask: boolean ``(d,)`` mask of wrap-around dimensions.
        period: circumference of circular dimensions.

    Returns:
        boolean ``(f, m)`` matrix; entry ``[i, j]`` is ``True`` when
        rectangle ``i`` meets query ``j`` (closed, wrap-aware on circular
        dimensions).  Column ``j`` equals
        ``intersects_circular_many(lows, highs, qlows[j], qhighs[j], mask)``.
    """
    f, m = lows.shape[0], qlows.shape[0]
    out = xp.ones((f, m), dtype=bool)
    if circular_mask is None:
        circular_mask = xp.zeros(lows.shape[1], dtype=bool)
    linear = ~circular_mask
    if xp.any(linear):
        lo, hi = lows[:, linear], highs[:, linear]
        qlo, qhi = qlows[:, linear], qhighs[:, linear]
        out &= xp.all(lo[:, None, :] <= qhi[None, :, :], axis=2)
        out &= xp.all(qlo[None, :, :] <= hi[:, None, :], axis=2)
    for d in xp.nonzero(circular_mask)[0]:
        wa = (highs[:, d] - lows[:, d])[:, None]
        wb = (qhighs[:, d] - qlows[:, d])[None, :]
        a0 = lows[:, d][:, None]
        b0 = qlows[:, d][None, :]
        out &= _circular_offsets_hit(a0, b0, wa, wb, period)
    return out


def intersects_circular_rows(
    lows: xp.ndarray,
    highs: xp.ndarray,
    qlows: xp.ndarray,
    qhighs: xp.ndarray,
    circular_mask: Optional[xp.ndarray] = None,
    period: float = TWO_PI,
) -> xp.ndarray:
    """Row-aligned rectangle intersection: rectangle ``i`` vs query ``i``.

    The aligned counterpart of :func:`intersects_circular_many` (one query
    for all rows) and :func:`intersects_circular_pairwise` (all rows × all
    queries): here every row carries its *own* query rectangle.  This is
    the test the columnar frontier engine runs over a ``(node, query)``
    pair frontier, where gathered entries are already expanded against the
    query each pair descends with.

    Args:
        lows, highs: ``(m, d)`` per-rectangle bounds.
        qlows, qhighs: ``(m, d)`` per-row query bounds.
        circular_mask: boolean ``(d,)`` mask of wrap-around dimensions.
        period: circumference of circular dimensions.

    Returns:
        boolean array of length ``m``; row ``i`` equals
        ``intersects_circular(Rect(lows[i], highs[i]),
        Rect(qlows[i], qhighs[i]), mask)``.
    """
    m = lows.shape[0]
    out = xp.ones(m, dtype=bool)
    if circular_mask is None:
        circular_mask = xp.zeros(lows.shape[1], dtype=bool)
    linear = ~circular_mask
    if xp.any(linear):
        out &= xp.all(lows[:, linear] <= qhighs[:, linear], axis=1)
        out &= xp.all(qlows[:, linear] <= highs[:, linear], axis=1)
    for d in xp.nonzero(circular_mask)[0]:
        wa = highs[:, d] - lows[:, d]
        wb = qhighs[:, d] - qlows[:, d]
        out &= _circular_offsets_hit(lows[:, d], qlows[:, d], wa, wb, period)
    return out


def intersects_circular(
    a: Rect,
    b: Rect,
    circular_mask: Optional[xp.ndarray] = None,
    period: float = TWO_PI,
) -> bool:
    """Rectangle intersection with selected dimensions treated circularly.

    Args:
        a, b: rectangles of the same dimensionality.
        circular_mask: boolean array; ``True`` marks a wrap-around dimension
            (e.g. a phase angle).  ``None`` means plain intersection.
        period: circumference of the circular dimensions.
    """
    if circular_mask is None or not xp.any(circular_mask):
        return a.intersects(b)
    if a.dim != b.dim:
        raise ValueError(f"dimension mismatch: {a.dim} vs {b.dim}")
    for i in range(a.dim):
        if circular_mask[i]:
            if not _interval_intersects_circular(
                float(a.lows[i]), float(a.highs[i]),
                float(b.lows[i]), float(b.highs[i]),
                period,
            ):
                return False
        else:
            if a.lows[i] > b.highs[i] or b.lows[i] > a.highs[i]:
                return False
    return True
