"""The original R-tree of Guttman (SIGMOD 1984).

Kept as an index-quality baseline for the ablation benchmarks: same search
code as the R*-tree, but with Guttman's ChooseLeaf (least area enlargement)
and his *linear* or *quadratic* node-split algorithms instead of the R*
policies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.rtree.base import RTreeBase, RTreeError
from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node


class GuttmanRTree(RTreeBase):
    """Classic R-tree with ``split="quadratic"`` (default) or ``"linear"``."""

    def __init__(
        self,
        dim: int,
        store=None,
        max_entries: Optional[int] = None,
        min_fill: float = 0.4,
        split: str = "quadratic",
    ) -> None:
        if split not in ("quadratic", "linear"):
            raise RTreeError(f"split must be 'quadratic' or 'linear', got {split!r}")
        super().__init__(dim, store=store, max_entries=max_entries, min_fill=min_fill)
        self.split = split

    # ------------------------------------------------------------------
    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """Guttman's ChooseLeaf: least enlargement, ties by least area."""
        best_idx = 0
        best_key: Optional[tuple[float, float]] = None
        for i, e in enumerate(node.entries):
            key = (e.rect.enlargement(rect), e.rect.area())
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx

    # ------------------------------------------------------------------
    def _split_entries(
        self, entries: list[Entry], level: int
    ) -> tuple[list[Entry], list[Entry]]:
        if self.split == "quadratic":
            return self._quadratic_split(entries)
        return self._linear_split(entries)

    # -- quadratic ------------------------------------------------------
    def _quadratic_split(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds_quadratic(remaining)
        # Remove the later index first so the earlier one stays valid.
        for idx in sorted((seed_a, seed_b), reverse=True):
            remaining.pop(idx)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a].rect
        rect_b = entries[seed_b].rect
        m = self.min_entries
        while remaining:
            # If one group must take everything left to reach min fill, do it.
            if len(group_a) + len(remaining) == m:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == m:
                group_b.extend(remaining)
                break
            idx = self._pick_next_quadratic(remaining, rect_a, rect_b)
            e = remaining.pop(idx)
            d_a = rect_a.enlargement(e.rect)
            d_b = rect_b.enlargement(e.rect)
            if (d_a, rect_a.area(), len(group_a)) <= (d_b, rect_b.area(), len(group_b)):
                group_a.append(e)
                rect_a = rect_a.union(e.rect)
            else:
                group_b.append(e)
                rect_b = rect_b.union(e.rect)
        return group_a, group_b

    @staticmethod
    def _pick_seeds_quadratic(entries: list[Entry]) -> tuple[int, int]:
        """The pair wasting the most area when put together."""
        worst = -float("inf")
        pair = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i].rect.union(entries[j].rect).area()
                    - entries[i].rect.area()
                    - entries[j].rect.area()
                )
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    @staticmethod
    def _pick_next_quadratic(
        remaining: list[Entry], rect_a: Rect, rect_b: Rect
    ) -> int:
        """Entry with the strongest preference for one group."""
        best_idx = 0
        best_pref = -1.0
        for i, e in enumerate(remaining):
            pref = abs(rect_a.enlargement(e.rect) - rect_b.enlargement(e.rect))
            if pref > best_pref:
                best_pref = pref
                best_idx = i
        return best_idx

    # -- linear ---------------------------------------------------------
    def _linear_split(self, entries: list[Entry]) -> tuple[list[Entry], list[Entry]]:
        dim = entries[0].rect.dim
        lows = np.array([e.rect.lows for e in entries])
        highs = np.array([e.rect.highs for e in entries])
        widths = highs.max(axis=0) - lows.min(axis=0)
        widths[widths == 0] = 1.0
        # Per axis: entry with the highest low and entry with the lowest high.
        best_axis, best_sep = 0, -float("inf")
        best_pair = (0, 1 if len(entries) > 1 else 0)
        for axis in range(dim):
            hi_low = int(np.argmax(lows[:, axis]))
            lo_high = int(np.argmin(highs[:, axis]))
            if hi_low == lo_high:
                continue
            sep = (lows[hi_low, axis] - highs[lo_high, axis]) / widths[axis]
            if sep > best_sep:
                best_sep = sep
                best_axis = axis
                best_pair = (hi_low, lo_high)
        seed_a, seed_b = best_pair
        if seed_a == seed_b:  # fully degenerate data; arbitrary seeds
            seed_a, seed_b = 0, 1
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a].rect
        rect_b = entries[seed_b].rect
        m = self.min_entries
        for pos, e in enumerate(remaining):
            left = len(remaining) - pos
            if len(group_a) + left == m:
                group_a.extend(remaining[pos:])
                return group_a, group_b
            if len(group_b) + left == m:
                group_b.extend(remaining[pos:])
                return group_a, group_b
            if (rect_a.enlargement(e.rect), rect_a.area()) <= (
                rect_b.enlargement(e.rect),
                rect_b.area(),
            ):
                group_a.append(e)
                rect_a = rect_a.union(e.rect)
            else:
                group_b.append(e)
                rect_b = rect_b.union(e.rect)
        return group_a, group_b
