"""Spatial joins over (transformed) R-tree views.

The paper's last experiment (Table 1) is a spatial self-join: find all
pairs of stock series whose 20-day moving averages are within ``eps``.  Two
index-based strategies are implemented:

* :func:`index_nested_loop_join` — the paper's method *c*/*d*: scan one
  relation, build a search rectangle per sequence and pose it to the
  (transformed) index as a range query.
* :func:`tree_matching_join` — synchronized traversal of both trees
  (Brinkmann-style R-tree join); not in the paper, provided as the
  classical faster alternative and used as an ablation.  Its hot-path
  form is :func:`tree_matching_join_pairs`: the same join over two
  frozen kernels as one frontier-pair traversal, with the recursive
  node-object descent kept as the parity reference.

Both return *candidate* pairs; the caller post-processes them against full
records, exactly like Algorithm 2's step 3.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from repro.rtree.geometry import Rect
from repro.rtree.kernel import FrontierStats
from repro.rtree.transformed import TransformedIndexView

#: builds a search rectangle around a (transformed) point
SearchRectFn = Callable[[Rect], Rect]

#: stacked expansion: (m, d) lows, (m, d) highs -> expanded (lows, highs)
ExpandManyFn = Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]


def tree_matching_join_pairs(
    view_a: TransformedIndexView,
    view_b: TransformedIndexView,
    expand_many: ExpandManyFn,
    self_join: bool = False,
    fstats: Optional[FrontierStats] = None,
    executor=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Tree-matching join reformulated over two frozen kernels.

    The recursive :func:`tree_matching_join` descends both node-object
    trees in lockstep; this form expresses the same join as one
    frontier-pair traversal: kernel A supplies the whole outer leaf
    relation as flat arrays (:meth:`~repro.rtree.kernel.FrozenRTree.leaf_entries`,
    mapped through A's affine view and grown by the join radius via
    ``expand_many``), and those boxes descend kernel B together through
    :meth:`~repro.rtree.kernel.FrozenRTree.join_pairs` — no node objects
    anywhere on the hot path.  Candidate pair sets match the recursive
    form, which stays in-tree as the parity reference.

    Args:
        view_a, view_b: transformed views whose trees carry frozen
            kernels (may wrap the same tree for a self-join).
        expand_many: grows stacked ``(m, dim)`` transformed leaf boxes by
            the join distance (the array form of the recursive join's
            ``expand`` callable).
        self_join: emit each unordered pair once (``inner > outer``).
        fstats: optional frontier counters for the B-side descent.
        executor: optional :class:`repro.rtree.parallel.KernelExecutor`.
            The outer leaf relation arrives in BFS order — grouped by the
            outer tree's top-level subtrees — so the executor's
            contiguous blocks partition those subtrees across workers.

    Returns:
        ``(a ids, b ids)`` candidate-pair arrays, sorted by ``(a, b)``.
    """
    kernel_a = view_a.kernel
    kernel_b = view_b.kernel
    if kernel_a is None or kernel_b is None:
        raise ValueError("tree_matching_join_pairs requires frozen kernels")
    lows, highs, outer_ids = kernel_a.leaf_entries()
    mapping = view_a.mapping
    lo = lows * mapping.scale + mapping.offset
    hi = highs * mapping.scale + mapping.offset
    qlows, qhighs = expand_many(np.minimum(lo, hi), np.maximum(lo, hi))
    if executor is not None:
        return executor.join_pairs(
            kernel_b,
            np.asarray(qlows, dtype=np.float64),
            np.asarray(qhighs, dtype=np.float64),
            np.asarray(outer_ids, dtype=np.int64),
            view_b.mapping.scale,
            view_b.mapping.offset,
            circular_mask=view_b.circular_mask,
            self_join=self_join,
            fstats=fstats,
            io=view_b.tree.store.stats,
        )
    return kernel_b.join_pairs(
        np.asarray(qlows, dtype=np.float64),
        np.asarray(qhighs, dtype=np.float64),
        np.asarray(outer_ids, dtype=np.int64),
        view_b.mapping.scale,
        view_b.mapping.offset,
        circular_mask=view_b.circular_mask,
        self_join=self_join,
        fstats=fstats,
        io=view_b.tree.store.stats,
    )


def index_nested_loop_join_pairs(
    view: TransformedIndexView,
    qlows: np.ndarray,
    qhighs: np.ndarray,
    outer_ids: np.ndarray,
    self_join: bool = True,
    fstats: Optional[FrontierStats] = None,
    executor=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Kernel-backed index nested-loop join (the fused form of methods c/d).

    Instead of posing one recursive range query per outer record
    (:func:`index_nested_loop_join`), all outer search rectangles descend
    the inner index together as one ``(node, query)`` frontier-pair
    traversal (:meth:`repro.rtree.kernel.FrozenRTree.join_pairs`), with
    the self-join filter applied vectorized at the leaves.  Requires the
    view to carry a frozen kernel.

    Args:
        view: transformed view of the indexed (inner) relation.
        qlows, qhighs: stacked ``(m, dim)`` outer search rectangles.
        outer_ids: the outer record id behind each query row.
        self_join: emit each unordered pair once (``inner > outer``).
        fstats: optional frontier counters.

    Returns:
        ``(outer ids, inner ids)`` candidate-pair arrays, sorted by
        ``(outer, inner)`` — the same pair set as the generator form.
    """
    if view.kernel is None:
        raise ValueError("index_nested_loop_join_pairs requires a frozen kernel")
    if executor is not None:
        return executor.join_pairs(
            view.kernel,
            np.asarray(qlows, dtype=np.float64),
            np.asarray(qhighs, dtype=np.float64),
            np.asarray(outer_ids, dtype=np.int64),
            view.mapping.scale,
            view.mapping.offset,
            circular_mask=view.circular_mask,
            self_join=self_join,
            fstats=fstats,
            io=view.tree.store.stats,
        )
    return view.kernel.join_pairs(
        np.asarray(qlows, dtype=np.float64),
        np.asarray(qhighs, dtype=np.float64),
        np.asarray(outer_ids, dtype=np.int64),
        view.mapping.scale,
        view.mapping.offset,
        circular_mask=view.circular_mask,
        self_join=self_join,
        fstats=fstats,
        io=view.tree.store.stats,
    )


def index_nested_loop_join(
    outer: Iterable[tuple[int, Rect]],
    inner_view: TransformedIndexView,
    make_search_rect: SearchRectFn,
    self_join: bool = True,
) -> Iterator[tuple[int, int]]:
    """Join by posing one range query per outer point (paper methods c/d).

    Args:
        outer: ``(record_id, transformed point-rect)`` pairs to probe with.
        inner_view: transformed view of the indexed relation.
        make_search_rect: maps a transformed point to its search rectangle
            (the ``eps``-expansion appropriate for the coordinate system).
        self_join: when true, emit each unordered pair once (``a < b``) and
            skip the trivial ``(a, a)`` match.

    Yields:
        candidate ``(outer_id, inner_id)`` pairs.
    """
    for record_id, point_rect in outer:
        qrect = make_search_rect(point_rect)
        for entry in inner_view.search(qrect):
            if self_join:
                if entry.child <= record_id:
                    continue
                yield record_id, entry.child
            else:
                yield record_id, entry.child


def tree_matching_join(
    view_a: TransformedIndexView,
    view_b: TransformedIndexView,
    expand: Callable[[Rect], Rect],
    self_join: bool = False,
) -> Iterator[tuple[int, int]]:
    """Synchronized-descent join of two transformed views.

    ``expand`` grows a rectangle by the join distance so that plain
    intersection of ``expand(mbr_a)`` with ``mbr_b`` is a superset test for
    "some pair within eps".  Views must share dimensionality but may wrap
    different trees (or the same tree for a self-join).
    """

    def recurse(node_a, node_b) -> Iterator[tuple[int, int]]:
        if node_a.is_leaf and node_b.is_leaf:
            for ea in node_a.entries:
                grown = expand(ea.rect)
                for eb in node_b.entries:
                    if self_join and eb.child <= ea.child:
                        continue
                    if view_a._intersects(grown, eb.rect):
                        yield ea.child, eb.child
            return
        if not node_a.is_leaf and (node_b.is_leaf or node_a.level >= node_b.level):
            for ea in node_a.entries:
                grown = expand(ea.rect)
                if view_a._intersects(grown, node_b.mbr()):
                    yield from recurse(view_a.transformed_node(ea.child), node_b)
            return
        for eb in node_b.entries:
            if view_a._intersects(expand(node_a.mbr()), eb.rect):
                yield from recurse(node_a, view_b.transformed_node(eb.child))

    root_a = view_a.transformed_node(view_a.root_id)
    root_b = view_b.transformed_node(view_b.root_id)
    if not root_a.entries or not root_b.entries:
        return
    yield from recurse(root_a, root_b)
