"""Columnar R-tree kernel: frozen struct-of-arrays storage + frontier engine.

After an R-tree is built (Guttman insertion, R* insertion, or STR bulk
load — the *build-time* representation stays the recursive node-object
tree), it can be **frozen** into contiguous struct-of-arrays storage:

::

    nodes  (BFS order, root = 0)          entries (grouped by owning node)
    ┌────────────┬─────────────┬───────┐  ┌───────────┬────────────┬─────────────┐
    │ node_level │ entry_start │ entry │  │ entry_lows│ entry_highs│ entry_child │
    │   (N,)     │    (N,)     │ count │  │  (E, d)   │   (E, d)   │    (E,)     │
    └────────────┴─────────────┴───────┘  └───────────┴────────────┴─────────────┘

``entry_child`` holds a child *node id* for internal entries and an
opaque *id payload* for leaf entries — a record id for the engine's
point trees (whose leaf rectangles are degenerate points, so
``entry_lows`` doubles as the point matrix), or any other identifier for
box-leaf payloads such as the ST-index's sub-trail MBRs tagged with
sub-trail ids.  The range probes (:meth:`FrozenRTree.range_ids`,
:meth:`FrozenRTree.range_ids_many`, :meth:`FrozenRTree.join_pairs`) test
full ``[lows, highs]`` intersection and therefore serve both payload
kinds; :meth:`FrozenRTree.nearest_stream` scores leaves through
``entry_lows`` and assumes point leaves, while
:meth:`FrozenRTree.knn_batch` also serves box leaves (``box_leaves``
scores them by rectangle MINDIST, and the ``verify_expand`` seam lets
one leaf id fan out into many verifiable items — e.g. a sub-trail into
its windows — with the per-query pruning radius handed to the callback).
Because every leaf sits at level 0, a traversal frontier is always
level-homogeneous, which is what makes level-at-a-time expansion a
handful of numpy calls.

On top of the frozen arrays one **iterative frontier engine** replaces the
per-algorithm recursive descents:

* :meth:`FrozenRTree.range_ids` — vectorized level-at-a-time expansion for
  a single range query;
* :meth:`FrozenRTree.range_ids_many` / :meth:`FrozenRTree.join_pairs` —
  the fused multi-query frontier: a flat ``(node, query)`` pair frontier
  expanded level-at-a-time, with the index nested-loop join expressed as
  the same traversal plus a vectorized pair filter at the leaves;
* :meth:`FrozenRTree.nearest_stream` — best-first incremental nearest
  that pops nodes and pushes *distance-sorted entry blocks* (one heap item
  per block, advanced by position) instead of one heap item per entry;
* :meth:`FrozenRTree.knn_batch` — the fused batched k-NN: all queries
  share one round-synchronous best-first loop with a *per-query pruning
  radius*; node expansion bounds and exact-distance verifications are
  evaluated once per round across the whole batch.

Safe transformations (Algorithm 1) are applied to the gathered MBR
matrices as two fused numpy ops per expansion — the kernel takes the
per-dimension affine ``scale``/``offset`` vectors directly so that it
never has to import the view layer.

Every traversal can record a :class:`FrontierStats` (``nodes_expanded``,
``entries_scanned``, ``frontier_peak``) which the physical operators
surface through ``EXPLAIN``, and bumps the store's logical ``node_reads``
counter so the paper's "node accesses with vs without transformation"
measurements stay meaningful on the kernel path.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.rtree.backend import xp

from repro.rtree.geometry import (
    Rect,
    intersects_circular_many,
    intersects_circular_rows,
)
from repro.storage.budget import ResourceBudget
from repro.storage.manifest import CorruptIndexError
from repro.storage.stats import IOStats

#: batched rect lower bound: (m, d) lows, (m, d) highs, (d,) query -> (m,)
RectDistManyFn = Callable[[xp.ndarray, xp.ndarray, xp.ndarray], xp.ndarray]
#: batched point distance: (m, d) points, (d,) query -> (m,)
PointDistManyFn = Callable[[xp.ndarray, xp.ndarray], xp.ndarray]
#: row-aligned rect lower bound: (m, d) lows/highs, (m, d) queries -> (m,)
RectDistRowsFn = Callable[[xp.ndarray, xp.ndarray, xp.ndarray], xp.ndarray]
#: row-aligned point distance: (m, d) points, (m, d) queries -> (m,)
PointDistRowsFn = Callable[[xp.ndarray, xp.ndarray], xp.ndarray]
#: exact verification: (query indices, record ids) -> exact distances
VerifyManyFn = Callable[[xp.ndarray, xp.ndarray], xp.ndarray]
#: expanding verification: (query indices, leaf payload ids, per-row pruning
#: radii) -> (query indices, item keys, exact distances), any number of rows
#: per input pair — the box-leaf seam where one leaf id (e.g. a sub-trail)
#: fans out into many verifiable items (its windows).
ExpandVerifyFn = Callable[
    [xp.ndarray, xp.ndarray, xp.ndarray],
    tuple[xp.ndarray, xp.ndarray, xp.ndarray],
]

# Heap item kinds for the best-first traversals.
_NODE = 0  # payload: node id
_NODE_BLOCK = 1  # payload: (sorted bounds, child node ids); advanced by pos
_ENTRY_BLOCK = 2  # payload: (sorted bounds, record ids[, points]); by pos


@dataclass
class FrontierStats:
    """Per-traversal counters the frontier engine fills in.

    Attributes:
        nodes_expanded: frontier rows expanded (for fused multi-query
            traversals a node expanded for ``q`` distinct queries counts
            ``q`` times — it is the unit of traversal work).
        entries_scanned: entry slots gathered and tested/scored.
        frontier_peak: largest frontier (pair rows, or total heap items
            across active queries) observed at any expansion step.
    """

    nodes_expanded: int = 0
    entries_scanned: int = 0
    frontier_peak: int = 0

    def observe(self, frontier_size: int) -> None:
        if frontier_size > self.frontier_peak:
            self.frontier_peak = frontier_size

    def merge(self, other: "FrontierStats") -> None:
        """Fold a worker's counters into this instance.

        Work counters sum; ``frontier_peak`` takes the max, so under the
        parallel executor it reports the largest *per-worker* frontier
        (each worker traverses only its query block, never the union).
        """
        self.nodes_expanded += other.nodes_expanded
        self.entries_scanned += other.entries_scanned
        self.observe(other.frontier_peak)

    def __add__(self, other: "FrontierStats") -> "FrontierStats":
        out = FrontierStats()
        out.merge(self)
        out.merge(other)
        return out

    def as_dict(self) -> dict:
        return {
            "nodes_expanded": self.nodes_expanded,
            "entries_scanned": self.entries_scanned,
            "frontier_peak": self.frontier_peak,
        }


class FrozenRTree:
    """A read-only columnar image of a built R-tree (see module docstring).

    Instances are produced by :meth:`freeze` (or :meth:`from_arrays` when
    reloading persisted arrays) and never mutated; the source tree remains
    the authority for inserts/deletes, and :func:`frozen_kernel` refreezes
    lazily when the tree has mutated.
    """

    def __init__(
        self,
        dim: int,
        size: int,
        node_level: xp.ndarray,
        entry_start: xp.ndarray,
        entry_count: xp.ndarray,
        entry_lows: xp.ndarray,
        entry_highs: xp.ndarray,
        entry_child: xp.ndarray,
    ) -> None:
        self.dim = int(dim)
        self.size = int(size)
        self.node_level = node_level
        self.entry_start = entry_start
        self.entry_count = entry_count
        self.entry_lows = entry_lows
        self.entry_highs = entry_highs
        self.entry_child = entry_child
        self.root = 0

    # ------------------------------------------------------------------
    # construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, tree) -> "FrozenRTree":
        """Snapshot a node-object tree into columnar arrays (BFS order)."""
        store = tree.store
        id_map: dict[int, int] = {}
        nodes = []
        queue = [tree.root_id]
        head = 0
        while head < len(queue):
            node_id = queue[head]
            head += 1
            if node_id in id_map:
                continue
            node = store.read(node_id)
            id_map[node_id] = len(nodes)
            nodes.append(node)
            if not node.is_leaf:
                queue.extend(e.child for e in node.entries)

        n = len(nodes)
        dim = tree.dim
        node_level = xp.empty(n, dtype=xp.int32)
        entry_count = xp.empty(n, dtype=xp.int64)
        for i, node in enumerate(nodes):  # repro: allow(REP001): construction walk in freeze, one iteration per tree node
            node_level[i] = node.level
            entry_count[i] = len(node.entries)
        entry_start = xp.concatenate(([0], xp.cumsum(entry_count)[:-1]))
        total = int(entry_count.sum())
        entry_lows = xp.empty((total, dim))
        entry_highs = xp.empty((total, dim))
        entry_child = xp.empty(total, dtype=xp.int64)
        pos = 0
        for node in nodes:
            for e in node.entries:
                entry_lows[pos] = e.rect.lows
                entry_highs[pos] = e.rect.highs
                entry_child[pos] = id_map[e.child] if not node.is_leaf else e.child
                pos += 1
        return cls(
            dim, tree.size, node_level, entry_start, entry_count,
            entry_lows, entry_highs, entry_child,
        )

    def to_arrays(self) -> dict:
        """The frozen image as plain arrays (``xp.savez``-ready)."""
        return {
            "meta": xp.array([self.dim, self.size], dtype=xp.int64),
            "node_level": self.node_level,
            "entry_start": self.entry_start,
            "entry_count": self.entry_count,
            "entry_lows": self.entry_lows,
            "entry_highs": self.entry_highs,
            "entry_child": self.entry_child,
        }

    @classmethod
    def from_arrays(cls, arrays, validate: bool = False) -> "FrozenRTree":
        """Rebuild a frozen tree from :meth:`to_arrays` output (or an npz).

        With ``validate=True`` the structural invariants are checked
        (:meth:`validate`) — the persistence layer always does this, so a
        corrupted image raises
        :class:`~repro.storage.manifest.CorruptIndexError` instead of
        producing garbage traversals.
        """
        try:
            meta = xp.asarray(arrays["meta"], dtype=xp.int64)
            if meta.shape != (2,):
                raise CorruptIndexError(
                    f"kernel meta must have shape (2,), got {meta.shape}"
                )
            tree = cls(
                int(meta[0]),
                int(meta[1]),
                xp.asarray(arrays["node_level"], dtype=xp.int32),
                xp.asarray(arrays["entry_start"], dtype=xp.int64),
                xp.asarray(arrays["entry_count"], dtype=xp.int64),
                xp.asarray(arrays["entry_lows"], dtype=xp.float64),
                xp.asarray(arrays["entry_highs"], dtype=xp.float64),
                xp.asarray(arrays["entry_child"], dtype=xp.int64),
            )
        except CorruptIndexError:
            raise
        except Exception as exc:
            raise CorruptIndexError(f"unreadable kernel arrays: {exc}") from exc
        if validate:
            tree.validate()
        return tree

    def validate(self, tol: float = 1e-9) -> None:
        """Check the structural invariants of the frozen image.

        Verifies — all vectorized, so this is cheap relative to a load —

        * array shapes are mutually consistent and ``entry_start`` is the
          exclusive cumulative sum of ``entry_count``;
        * no NaN/inf coordinates and ``lows <= highs`` everywhere;
        * internal entries point at in-range child nodes exactly one level
          down; leaf entries carry payload ids in ``[0, size)``;
        * every internal entry's MBR contains its child node's own MBR
          (parent ⊇ child, within ``tol``).

        Raises:
            CorruptIndexError: the first violated invariant.
        """

        def bad(msg: str) -> CorruptIndexError:
            return CorruptIndexError(f"frozen kernel invariant violated: {msg}")

        n = self.node_level.shape[0]
        if n == 0:
            raise bad("no nodes")
        if self.entry_start.shape != (n,) or self.entry_count.shape != (n,):
            raise bad("entry_start/entry_count shape mismatch with node_level")
        total = self.entry_child.shape[0]
        if (
            self.entry_lows.shape != (total, self.dim)
            or self.entry_highs.shape != (total, self.dim)
        ):
            raise bad("entry box arrays disagree with entry_child/dim")
        if xp.any(self.entry_count < 0):
            raise bad("negative entry_count")
        expected_start = xp.concatenate(
            ([0], xp.cumsum(self.entry_count)[:-1])
        )
        if not xp.array_equal(self.entry_start, expected_start):
            raise bad("entry_start is not the cumulative sum of entry_count")
        if int(self.entry_count.sum()) != total:
            raise bad("entry_count does not sum to the number of entries")
        if total and not xp.all(xp.isfinite(self.entry_lows)):
            raise bad("non-finite coordinates in entry_lows")
        if total and not xp.all(xp.isfinite(self.entry_highs)):
            raise bad("non-finite coordinates in entry_highs")
        if total and xp.any(self.entry_lows > self.entry_highs + tol):
            raise bad("entry has lows > highs")
        if xp.any(self.node_level < 0):
            raise bad("negative node level")

        owner_level = xp.repeat(self.node_level, self.entry_count)
        internal = owner_level > 0
        children = self.entry_child[internal]
        if children.size:
            if xp.any((children < 0) | (children >= n)):
                raise bad("internal entry child id out of node range")
            if xp.any(
                self.node_level[children] != owner_level[internal] - 1
            ):
                raise bad("child node level is not parent level - 1")
        leaf_ids = self.entry_child[~internal]
        if leaf_ids.size and xp.any((leaf_ids < 0) | (leaf_ids >= self.size)):
            raise bad("leaf entry id outside [0, size)")

        if children.size:
            # Per-node MBRs via reduceat over each node's entry range, then
            # containment of each child's MBR in its parent entry's box.
            nonempty = xp.nonzero(self.entry_count > 0)[0]
            node_low = xp.full((n, self.dim), xp.inf)
            node_high = xp.full((n, self.dim), -xp.inf)
            if nonempty.size:
                starts = self.entry_start[nonempty].astype(xp.intp)
                node_low[nonempty] = xp.minimum.reduceat(self.entry_lows, starts)
                node_high[nonempty] = xp.maximum.reduceat(
                    self.entry_highs, starts
                )
                # reduceat folds to the array end for the last start; nodes
                # with empty tails are already excluded via ``nonempty``.
            has_entries = self.entry_count[children] > 0
            kids = children[has_entries]
            plo = self.entry_lows[internal][has_entries]
            phi = self.entry_highs[internal][has_entries]
            if kids.size and (
                xp.any(node_low[kids] < plo - tol)
                or xp.any(node_high[kids] > phi + tol)
            ):
                raise bad("parent entry MBR does not contain its child's MBR")

    @property
    def height(self) -> int:
        return int(self.node_level[self.root]) + 1 if self.node_level.size else 1

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def _gather(self, nodes: xp.ndarray) -> tuple[xp.ndarray, xp.ndarray]:
        """Entry indices of ``nodes`` as one flat index array.

        Returns ``(idx, counts)``: ``idx`` concatenates each node's entry
        range in node order (the vectorized equivalent of reading each
        node's entry list), ``counts`` the per-node fanouts.
        """
        counts = self.entry_count[nodes]
        total = int(counts.sum())
        if total == 0:
            return xp.empty(0, dtype=xp.int64), counts
        starts = self.entry_start[nodes]
        offsets = xp.cumsum(counts) - counts
        idx = xp.arange(total, dtype=xp.int64) + xp.repeat(starts - offsets, counts)
        return idx, counts

    def _transformed(
        self, idx: xp.ndarray, scale: Optional[xp.ndarray], offset: Optional[xp.ndarray]
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Gathered entry MBRs mapped through the affine transformation."""
        lows = self.entry_lows[idx]
        highs = self.entry_highs[idx]
        if scale is None:
            return lows, highs
        a = lows * scale + offset
        b = highs * scale + offset
        return xp.minimum(a, b), xp.maximum(a, b)

    @staticmethod
    def _affine(scale, offset) -> tuple[Optional[xp.ndarray], Optional[xp.ndarray]]:
        """Normalise the affine vectors; ``None`` scale marks the identity."""
        if scale is None:
            return None, None
        scale = xp.asarray(scale, dtype=xp.float64)
        offset = xp.asarray(offset, dtype=xp.float64)
        if xp.all(scale == 1.0) and xp.all(offset == 0.0):
            return None, None
        return scale, offset

    def leaf_entries(self) -> tuple[xp.ndarray, xp.ndarray, xp.ndarray]:
        """All leaf entry boxes and their id payloads, in BFS leaf order.

        Returns ``(lows, highs, ids)`` — the flat leaf relation a
        two-kernel join uses as its outer side (see
        :func:`repro.rtree.join.tree_matching_join_pairs`).
        """
        leaves = xp.nonzero(self.node_level == 0)[0].astype(xp.int64)
        idx, _ = self._gather(leaves)
        return self.entry_lows[idx], self.entry_highs[idx], self.entry_child[idx]

    # ------------------------------------------------------------------
    # range search (single query)
    # ------------------------------------------------------------------
    def range_ids(
        self,
        qlo: xp.ndarray,
        qhi: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        circular_mask: Optional[xp.ndarray] = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> xp.ndarray:
        """Record ids whose transformed point intersects ``[qlo, qhi]``.

        Level-at-a-time: the whole frontier of surviving nodes is expanded
        per iteration — gather, transform, intersect as three fused numpy
        steps — instead of one recursive call per node.  A ``budget`` is
        checked once per level and raises
        :class:`~repro.storage.budget.QueryBudgetExceeded` when the
        deadline passes or the frontier outgrows its cap.
        """
        qlo = xp.asarray(qlo, dtype=xp.float64)
        qhi = xp.asarray(qhi, dtype=xp.float64)
        if self.entry_count[self.root] == 0:
            return xp.empty(0, dtype=xp.int64)
        scale, offset = self._affine(scale, offset)
        frontier = xp.array([self.root], dtype=xp.int64)
        level = int(self.node_level[self.root])
        while frontier.size:
            if budget is not None:
                budget.check(int(frontier.size), where="range frontier")
            if fstats is not None:
                fstats.nodes_expanded += int(frontier.size)
                fstats.observe(int(frontier.size))
            if io is not None:
                io.node_reads += int(frontier.size)
            idx, _ = self._gather(frontier)
            t_lo, t_hi = self._transformed(idx, scale, offset)
            if circular_mask is None:
                hits = Rect.intersects_many(t_lo, t_hi, qlo, qhi)
            else:
                hits = intersects_circular_many(t_lo, t_hi, qlo, qhi, circular_mask)
            if fstats is not None:
                fstats.entries_scanned += int(idx.size)
            sel = idx[hits]
            if level == 0:
                return self.entry_child[sel]
            frontier = self.entry_child[sel]
            level -= 1
        return xp.empty(0, dtype=xp.int64)

    # ------------------------------------------------------------------
    # fused multi-query range + frontier-pair join
    # ------------------------------------------------------------------
    def _pair_frontier(
        self,
        qlows: xp.ndarray,
        qhighs: xp.ndarray,
        scale: Optional[xp.ndarray],
        offset: Optional[xp.ndarray],
        circular_mask: Optional[xp.ndarray],
        fstats: Optional[FrontierStats],
        io: Optional[IOStats],
        budget: Optional[ResourceBudget] = None,
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Drive a ``(node, query)`` pair frontier down to the leaves.

        Returns the surviving ``(record ids, query indices)`` arrays — the
        flat candidate relation every fused traversal post-processes.
        """
        m = qlows.shape[0]
        if m == 0 or self.entry_count[self.root] == 0:
            empty = xp.empty(0, dtype=xp.int64)
            return empty, empty
        scale, offset = self._affine(scale, offset)
        fnodes = xp.full(m, self.root, dtype=xp.int64)
        fquery = xp.arange(m, dtype=xp.int64)
        level = int(self.node_level[self.root])
        while fnodes.size:
            if budget is not None:
                budget.check(int(fnodes.size), where="pair frontier")
            if fstats is not None:
                fstats.nodes_expanded += int(fnodes.size)
                fstats.observe(int(fnodes.size))
            if io is not None:
                io.node_reads += int(fnodes.size)
            idx, counts = self._gather(fnodes)
            equery = xp.repeat(fquery, counts)
            t_lo, t_hi = self._transformed(idx, scale, offset)
            if circular_mask is None:
                hits = (
                    xp.all(t_lo <= qhighs[equery], axis=1)
                    & xp.all(qlows[equery] <= t_hi, axis=1)
                )
            else:
                hits = intersects_circular_rows(
                    t_lo, t_hi, qlows[equery], qhighs[equery], circular_mask
                )
            if fstats is not None:
                fstats.entries_scanned += int(idx.size)
            sel = xp.nonzero(hits)[0]
            if level == 0:
                return self.entry_child[idx[sel]], equery[sel]
            fnodes = self.entry_child[idx[sel]]
            fquery = equery[sel]
            level -= 1
        empty = xp.empty(0, dtype=xp.int64)
        return empty, empty

    def range_ids_many(
        self,
        qlows: xp.ndarray,
        qhighs: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        circular_mask: Optional[xp.ndarray] = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> list[xp.ndarray]:
        """Fused multi-query range search: one id array per query row.

        All queries descend together as a pair frontier; per-query results
        are regrouped at the end with one stable sort.  Candidate sets are
        identical to ``m`` separate :meth:`range_ids` calls.
        """
        m = qlows.shape[0]
        recs, qidx = self._pair_frontier(
            qlows, qhighs, scale, offset, circular_mask, fstats, io, budget
        )
        order = xp.argsort(qidx, kind="stable")
        recs = recs[order]
        bounds = xp.searchsorted(qidx[order], xp.arange(m + 1, dtype=xp.int64))
        return [recs[bounds[i]:bounds[i + 1]] for i in range(m)]

    def join_pairs(
        self,
        qlows: xp.ndarray,
        qhighs: xp.ndarray,
        outer_ids: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        circular_mask: Optional[xp.ndarray] = None,
        self_join: bool = True,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Index nested-loop join as one frontier-pair traversal.

        Query row ``i`` is the search rectangle of outer record
        ``outer_ids[i]``; the traversal is :meth:`range_ids_many`'s pair
        frontier with the self-join pair filter (each unordered pair once,
        no ``(a, a)``) applied vectorized at the leaf level.

        Returns:
            ``(outer record ids, inner record ids)`` of candidate pairs,
            sorted by outer then inner id.
        """
        recs, qidx = self._pair_frontier(
            qlows, qhighs, scale, offset, circular_mask, fstats, io, budget
        )
        outer = xp.asarray(outer_ids, dtype=xp.int64)[qidx]
        if self_join:
            keep = recs > outer
            outer, recs = outer[keep], recs[keep]
        order = xp.lexsort((recs, outer))
        return outer[order], recs[order]

    # ------------------------------------------------------------------
    # best-first: incremental nearest (block-yield) and fused batched k-NN
    # ------------------------------------------------------------------
    def nearest_stream(
        self,
        query: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        rect_dist_many: Optional[RectDistManyFn] = None,
        point_dist_many: Optional[PointDistManyFn] = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> Iterator[tuple[float, int, xp.ndarray]]:
        """Yield ``(distance, record id, transformed point)`` in order.

        Best-first over the columnar arrays: popping a node scores all its
        children in one vectorized call and pushes a single *sorted block*
        (advanced by position on each yield) instead of one heap item per
        entry, so the heap holds one item per visited node/block rather
        than one per entry.

        Under a ``budget`` the stream follows k-NN truncation semantics:
        when a limit fires the generator stops yielding and sets
        ``budget.truncated`` instead of raising (REP005).
        """
        q = xp.asarray(query, dtype=xp.float64)
        if self.entry_count[self.root] == 0:
            return
        scale, offset = self._affine(scale, offset)
        if rect_dist_many is None:
            rect_dist_many = Rect.mindist_many
        if point_dist_many is None:
            point_dist_many = lambda pts, qq: xp.linalg.norm(pts - qq, axis=1)
        counter = itertools.count()
        heap: list = [(0.0, next(counter), _NODE, self.root, 0)]
        while heap:
            if budget is not None and budget.exceeded(len(heap)) is not None:
                budget.truncated = True
                return
            if fstats is not None:
                fstats.observe(len(heap))
            bound, _, kind, payload, pos = heapq.heappop(heap)
            if kind == _ENTRY_BLOCK:
                bounds, rids, pts = payload
                yield float(bounds[pos]), int(rids[pos]), pts[pos]
                if pos + 1 < bounds.shape[0]:
                    heapq.heappush(
                        heap,
                        (float(bounds[pos + 1]), next(counter), _ENTRY_BLOCK,
                         payload, pos + 1),
                    )
                continue
            if kind == _NODE_BLOCK:
                bounds, children = payload
                node = int(children[pos])
                if pos + 1 < bounds.shape[0]:
                    heapq.heappush(
                        heap,
                        (float(bounds[pos + 1]), next(counter), _NODE_BLOCK,
                         payload, pos + 1),
                    )
            else:
                node = payload
            start = int(self.entry_start[node])
            count = int(self.entry_count[node])
            if count == 0:
                continue
            if fstats is not None:
                fstats.nodes_expanded += 1
                fstats.entries_scanned += count
            if io is not None:
                io.node_reads += 1
            idx = xp.arange(start, start + count, dtype=xp.int64)
            t_lo, t_hi = self._transformed(idx, scale, offset)
            children = self.entry_child[idx]
            if self.node_level[node] == 0:
                ds = point_dist_many(t_lo, q)
                order = xp.argsort(ds, kind="stable")
                block = (ds[order], children[order], t_lo[order])
                heapq.heappush(
                    heap, (float(block[0][0]), next(counter), _ENTRY_BLOCK, block, 0)
                )
            else:
                ds = rect_dist_many(t_lo, t_hi, q)
                order = xp.argsort(ds, kind="stable")
                block = (ds[order], children[order])
                heapq.heappush(
                    heap, (float(block[0][0]), next(counter), _NODE_BLOCK, block, 0)
                )

    def knn_batch(
        self,
        qpoints: xp.ndarray,
        k: int,
        verify_many: Optional[VerifyManyFn] = None,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        rect_dist_rows: Optional[RectDistRowsFn] = None,
        point_dist_rows: Optional[PointDistRowsFn] = None,
        box_leaves: bool = False,
        verify_expand: Optional[ExpandVerifyFn] = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> list[list[tuple[int, float]]]:
        """Fused multi-step exact k-NN for a whole batch of queries.

        Every query runs best-first with its own pruning radius (the k-th
        best *exact* distance found so far), but the expensive steps are
        shared round-synchronously across the batch: each round pops one
        node per active query, scores all popped nodes' children with one
        row-aligned distance call, and verifies all due leaf entries with
        one ``verify_many`` call.  Leaf entries travel as distance-sorted
        blocks; a block is consumed in one step by cutting it at the
        current radius (entries beyond it can never enter the answer,
        because radii only shrink).

        Edge cases are defined here, in one place: ``k == 0``, an empty
        tree, or an empty batch return empty result lists; ``k`` larger
        than the relation returns every record, exactly verified.

        Args:
            qpoints: ``(m, dim)`` query feature points (index space).
            k: neighbours per query.
            verify_many: maps ``(query indices, record ids)`` to exact
                ground distances — the multi-step verification step.
            scale, offset: affine map of the transformed view.
            rect_dist_rows, point_dist_rows: row-aligned lower-bound
                metrics (Euclidean when omitted).
            box_leaves: score leaf entries as *rectangles* (MINDIST via
                ``rect_dist_rows``) instead of points — for trees whose
                leaf payloads are true boxes, e.g. sub-trail MBRs.
            verify_expand: box-leaf verification seam.  Maps ``(query
                indices, leaf payload ids, per-row pruning radii)`` to
                ``(query indices, item keys, exact distances)``, with any
                number of output rows per input pair — one leaf id may fan
                out into many verifiable items.  The per-query pruning
                radius (the k-th best exact distance so far, ``inf`` while
                the heap is short) is handed to the callback so it can
                abandon items early; radii only shrink, so dropping items
                beyond it is safe.  When set, results are ``(item key,
                distance)`` pairs with a deterministic smallest-key
                tie-break at the k-th position, and ``verify_many`` is
                unused.
            fstats, io: counters (see module docstring).
            budget: resource budget, checked once per round.  k-NN does
                not raise on exhaustion — it stops expanding, returns the
                best exact results found so far and sets
                ``budget.truncated`` (verified distances are exact, the
                lists are just possibly incomplete).

        Returns:
            per query, ``(record id, exact distance)`` — or ``(item key,
            exact distance)`` under ``verify_expand`` — sorted by
            ``(distance, id)``, the same contract as ``knn_query``.
        """
        qpoints = xp.asarray(qpoints, dtype=xp.float64)
        m = qpoints.shape[0]
        out: list[list[tuple[int, float]]] = [[] for _ in range(m)]
        if k <= 0 or m == 0 or self.size == 0 or self.entry_count[self.root] == 0:
            return out
        if verify_many is None and verify_expand is None:
            raise ValueError("knn_batch needs verify_many or verify_expand")
        scale, offset = self._affine(scale, offset)
        if rect_dist_rows is None:
            rect_dist_rows = _euclid_rect_rows
        if point_dist_rows is None:
            point_dist_rows = lambda pts, qs: xp.linalg.norm(pts - qs, axis=1)
        counter = itertools.count()
        heaps: list[list] = [
            [(0.0, next(counter), _NODE, self.root, 0)] for _ in range(m)
        ]
        # best[qi]: a size-<=k heap of (-d, rid) — or (-d, -key) under
        # verify_expand, so that among equal k-th distances the *largest*
        # key sits on top and is evicted first (deterministic ties).
        best: list[list[tuple[float, int]]] = [[] for _ in range(m)]
        active = list(range(m))
        while active:
            if budget is not None:
                frontier = (
                    sum(len(heaps[qi]) for qi in active)
                    if budget.max_frontier is not None
                    else 0
                )
                if budget.exceeded(frontier) is not None:
                    budget.truncated = True
                    break
            if fstats is not None:
                fstats.observe(sum(len(heaps[qi]) for qi in active))
            expand_q: list[int] = []
            expand_n: list[int] = []
            verify_q: list[int] = []
            verify_rad: list[float] = []
            verify_r: list[xp.ndarray] = []
            next_active: list[int] = []
            for qi in active:
                h = heaps[qi]
                b = best[qi]
                radius = -b[0][0] if len(b) == k else xp.inf
                node = -1
                while h:
                    bound = h[0][0]
                    if len(b) == k and bound > radius:
                        h.clear()
                        break
                    _, _, kind, payload, pos = heapq.heappop(h)
                    if kind == _NODE:
                        node = payload
                        break
                    if kind == _NODE_BLOCK:
                        bounds, children = payload
                        node = int(children[pos])
                        if pos + 1 < bounds.shape[0]:
                            heapq.heappush(
                                h,
                                (float(bounds[pos + 1]), next(counter),
                                 _NODE_BLOCK, payload, pos + 1),
                            )
                        break
                    # _ENTRY_BLOCK: verify every entry still inside the
                    # radius; the sorted tail beyond it is dead (radii only
                    # shrink, so those entries can never re-qualify).
                    bounds, rids = payload
                    hi = int(xp.searchsorted(bounds, radius, side="right"))
                    if hi > pos:
                        verify_q.append(qi)
                        verify_rad.append(radius)
                        verify_r.append(rids[pos:hi])
                if node >= 0:
                    expand_q.append(qi)
                    expand_n.append(node)
                    next_active.append(qi)
            if verify_r:
                seg_lens = [seg.shape[0] for seg in verify_r]
                rid_arr = xp.concatenate(verify_r)
                if budget is not None:
                    # Soft accounting: the cap is enforced at the next
                    # round boundary by truncating, never by raising.
                    budget.consume(int(rid_arr.shape[0]))
                qidx_arr = xp.repeat(
                    xp.asarray(verify_q, dtype=xp.int64), seg_lens
                )
                if verify_expand is not None:
                    rad_arr = xp.repeat(xp.asarray(verify_rad), seg_lens)
                    eq, keys, dists = verify_expand(qidx_arr, rid_arr, rad_arr)
                    for j in range(keys.shape[0]):  # repro: allow(REP001): k-bounded per-candidate heap update, no vectorized form
                        qi = int(eq[j])
                        item = (-float(dists[j]), -int(keys[j]))
                        b = best[qi]
                        if len(b) < k:
                            heapq.heappush(b, item)
                        elif item > b[0]:
                            # d < k-th distance, or a tie with a smaller key.
                            heapq.heapreplace(b, item)
                else:
                    dists = verify_many(qidx_arr, rid_arr)
                    for j in range(rid_arr.shape[0]):  # repro: allow(REP001): k-bounded per-candidate heap update, no vectorized form
                        qi = int(qidx_arr[j])
                        d = float(dists[j])
                        b = best[qi]
                        if len(b) < k:
                            heapq.heappush(b, (-d, int(rid_arr[j])))
                        elif d < -b[0][0]:
                            heapq.heapreplace(b, (-d, int(rid_arr[j])))
            if expand_n:
                nodes = xp.asarray(expand_n, dtype=xp.int64)
                qidx = xp.asarray(expand_q, dtype=xp.int64)
                idx, counts = self._gather(nodes)
                equery = xp.repeat(qidx, counts)
                t_lo, t_hi = self._transformed(idx, scale, offset)
                levels = self.node_level[nodes]
                leaf_rows = xp.repeat(levels == 0, counts)
                bounds = xp.empty(idx.shape[0])
                if box_leaves:
                    # Leaf entries are true boxes: MINDIST bounds for
                    # internal and leaf rows alike.
                    bounds[:] = rect_dist_rows(t_lo, t_hi, qpoints[equery])
                else:
                    if xp.any(~leaf_rows):
                        bounds[~leaf_rows] = rect_dist_rows(
                            t_lo[~leaf_rows], t_hi[~leaf_rows],
                            qpoints[equery[~leaf_rows]],
                        )
                    if xp.any(leaf_rows):
                        bounds[leaf_rows] = point_dist_rows(
                            t_lo[leaf_rows], qpoints[equery[leaf_rows]]
                        )
                children = self.entry_child[idx]
                offsets = xp.cumsum(counts) - counts
                if fstats is not None:
                    fstats.nodes_expanded += int(nodes.shape[0])
                    fstats.entries_scanned += int(idx.shape[0])
                if io is not None:
                    io.node_reads += int(nodes.shape[0])
                for i in range(nodes.shape[0]):  # repro: allow(REP001): one iteration per expanded node, pushing its sorted block
                    s, c = int(offsets[i]), int(counts[i])
                    if c == 0:
                        continue
                    seg = slice(s, s + c)
                    order = xp.argsort(bounds[seg], kind="stable")
                    blk = (bounds[seg][order], children[seg][order])
                    kind = _ENTRY_BLOCK if levels[i] == 0 else _NODE_BLOCK
                    heapq.heappush(
                        heaps[int(qidx[i])],
                        (float(blk[0][0]), next(counter), kind, blk, 0),
                    )
            active = next_active
        for qi in range(m):
            if verify_expand is not None:
                out[qi] = sorted(
                    ((-nk, -nd) for nd, nk in best[qi]),
                    key=lambda t: (t[1], t[0]),
                )
            else:
                out[qi] = sorted(
                    ((rid, -nd) for nd, rid in best[qi]),
                    key=lambda t: (t[1], t[0]),
                )
        return out


def _euclid_rect_rows(
    lows: xp.ndarray, highs: xp.ndarray, qs: xp.ndarray
) -> xp.ndarray:
    """Row-aligned Euclidean MINDIST (default metric for raw trees)."""
    clamped = xp.clip(qs, lows, highs)
    return xp.linalg.norm(qs - clamped, axis=1)


# ----------------------------------------------------------------------
# cache management
# ----------------------------------------------------------------------
#: stale-cache accesses tolerated before :func:`cached_kernel` refreezes.
#: A mutation invalidates the frozen image; refreezing is O(whole tree),
#: so a workload that interleaves mutations with queries must not pay a
#: full refreeze per query.  Stale accesses run the recursive reference
#: path (O(nodes touched), exactly the pre-kernel behaviour) until the
#: same tree version has been queried this many times — a query-heavy
#: phase refreezes quickly, a write-heavy phase never does.
REFREEZE_AFTER_STALE_READS = 4


def frozen_kernel(tree) -> FrozenRTree:
    """The tree's frozen kernel, (re)built *now* if stale, cached on the tree.

    The cache key is the tree's mutation counter (bumped by every insert
    and delete), so a stale image is never served.  This is the eager
    form used at engine build and by explicit ``engine.kernel`` access;
    query paths go through :func:`cached_kernel`, which defers the O(N)
    refreeze.  :func:`attach_kernel` installs a deserialized image under
    the same contract.
    """
    if getattr(tree, "_kernel_disabled", False):
        raise CorruptIndexError(
            "frozen kernel is disabled on this tree (its persisted image "
            "failed validation); clear tree._kernel_disabled to re-enable"
        )
    mutations = getattr(tree, "_mutations", 0)
    cached = getattr(tree, "_frozen_cache", None)
    if cached is not None and cached[0] == mutations:
        return cached[1]
    kernel = FrozenRTree.freeze(tree)
    tree._frozen_cache = (mutations, kernel)
    return kernel


def cached_kernel(tree) -> Optional[FrozenRTree]:
    """The tree's frozen kernel if fresh, else ``None`` while refreeze defers.

    Returns the cached image when it matches the tree's mutation counter.
    On a stale cache it counts accesses per tree version and only
    refreezes after :data:`REFREEZE_AFTER_STALE_READS` of them, returning
    ``None`` (= caller takes the recursive reference path) in between, so
    interleaved mutate/query workloads never pay O(tree) per query.

    A tree whose ``_kernel_disabled`` flag is set (its persisted kernel
    image failed validation) always gets ``None`` — the graceful-
    degradation tier where every query runs the node-object reference
    path instead of trusting, or expensively rebuilding, the columnar
    image.
    """
    if getattr(tree, "_kernel_disabled", False):
        return None
    mutations = getattr(tree, "_mutations", 0)
    cached = getattr(tree, "_frozen_cache", None)
    if cached is not None and cached[0] == mutations:
        return cached[1]
    pending = getattr(tree, "_refreeze_pending", None)
    count = pending[1] + 1 if pending is not None and pending[0] == mutations else 1
    if count >= REFREEZE_AFTER_STALE_READS:
        tree._refreeze_pending = None
        return frozen_kernel(tree)
    tree._refreeze_pending = (mutations, count)
    return None


def attach_kernel(tree, kernel: FrozenRTree) -> None:
    """Install a prebuilt (e.g. deserialized) kernel as the tree's cache."""
    tree._frozen_cache = (getattr(tree, "_mutations", 0), kernel)
