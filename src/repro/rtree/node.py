"""R-tree nodes, entries and the node stores that persist them.

A :class:`Node` is a flat list of :class:`Entry` objects plus a level
(0 = leaf).  Entries in internal nodes carry the MBR of a child node and its
id; entries in leaves carry a point (degenerate rectangle) and a record id.

Trees never hold the whole structure in Python references — they address
nodes through a *node store*, which is either

* :class:`MemoryNodeStore` — a dict of live node objects (fast; logical
  read/write counters only), or
* :class:`PagedNodeStore` — nodes serialised into fixed-size pages behind a
  buffer pool (:mod:`repro.storage`), so traversals incur countable page
  reads exactly like a disk-resident index.

Both stores satisfy the same small protocol, and the trees always write a
node back after mutating it, which keeps the two backends behaviourally
identical (tests run the full suite against both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from repro.rtree.geometry import Rect, union_all
from repro.storage.buffer import BufferPool
from repro.storage.pager import PageFile
from repro.storage.stats import IOStats


@dataclass
class Entry:
    """One slot of a node: a bounding rectangle plus a child/record id."""

    rect: Rect
    child: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Entry({self.rect!r}, child={self.child})"


@dataclass
class Node:
    """A node of the tree.  ``level == 0`` means leaf."""

    node_id: int
    level: int
    entries: list[Entry] = field(default_factory=list)
    #: lazily-built (lows, highs) stacks of the entry rectangles; traversal
    #: reads them, stores drop them whenever the node is written back after
    #: a mutation (trees always write after mutating).
    _stacked: Optional[tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries (node must be non-empty)."""
        return union_all(e.rect for e in self.entries)

    def stacked_rects(self) -> tuple[np.ndarray, np.ndarray]:
        """The entry MBRs as stacked ``(fanout, dim)`` lows/highs arrays.

        Built once per materialised node and cached — batch traversal does
        one numpy call per node instead of one Python call per entry.  The
        cache is cleared by the node stores on every write-back.
        """
        if self._stacked is None or self._stacked[0].shape[0] != len(self.entries):
            m = len(self.entries)
            if m == 0:
                empty = np.empty((0, 0))
                self._stacked = (empty, empty)
            else:
                dim = self.entries[0].rect.dim
                lows = np.empty((m, dim))
                highs = np.empty((m, dim))
                for i, e in enumerate(self.entries):
                    lows[i] = e.rect.lows
                    highs[i] = e.rect.highs
                self._stacked = (lows, highs)
        return self._stacked

    def invalidate_cache(self) -> None:
        """Drop the stacked-MBR cache (after entry mutation)."""
        self._stacked = None

    def __len__(self) -> int:
        return len(self.entries)


class NodeStore(Protocol):
    """Persistence interface the trees program against."""

    stats: IOStats

    def allocate(self) -> int:
        """Reserve an id for a new node."""
        ...

    def read(self, node_id: int) -> Node:
        """Materialise the node with this id."""
        ...

    def write(self, node: Node) -> None:
        """Persist the node under its id."""
        ...

    def free(self, node_id: int) -> None:
        """Release the node's id (and page, if any)."""
        ...


class MemoryNodeStore:
    """Node store backed by a dict of live objects.

    Reads return the stored object itself; writes are bookkeeping.  The
    logical ``node_reads`` / ``node_writes`` counters still move so that
    algorithmic comparisons (e.g. "same number of node accesses with and
    without transformations") can be made without the paging overhead.
    """

    def __init__(self, stats: Optional[IOStats] = None) -> None:
        self.stats = stats if stats is not None else IOStats()
        self._nodes: dict[int, Node] = {}
        self._next_id = 0

    def allocate(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def read(self, node_id: int) -> Node:
        self.stats.node_reads += 1
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node with id {node_id}") from None

    def write(self, node: Node) -> None:
        self.stats.node_writes += 1
        node.invalidate_cache()
        self._nodes[node.node_id] = node

    def free(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)

    def __len__(self) -> int:
        return len(self._nodes)


class PagedNodeStore:
    """Node store that serialises nodes into the paged storage engine.

    Node ids are page ids, so every node occupies exactly one page and a
    buffer-pool miss during traversal is one "disk access".
    """

    def __init__(
        self,
        dim: int,
        pagefile: Optional[PageFile] = None,
        buffer_capacity: int = 128,
        stats: Optional[IOStats] = None,
    ) -> None:
        from repro.storage import serialization  # local import to avoid cycle

        self._ser = serialization
        self.dim = dim
        self.stats = stats if stats is not None else IOStats()
        self.pagefile = (
            pagefile if pagefile is not None else PageFile(stats=self.stats)
        )
        # Share one stats object across all layers.
        self.pagefile.stats = self.stats
        self.pool = BufferPool(self.pagefile, capacity=buffer_capacity, stats=self.stats)
        self.page_size = self.pagefile.page_size

    @property
    def max_entries(self) -> int:
        """Hard fanout cap implied by the page size."""
        return self._ser.max_entries_for_page(self.page_size, self.dim)

    def allocate(self) -> int:
        return self.pool.allocate()

    def read(self, node_id: int) -> Node:
        self.stats.node_reads += 1
        data = self.pool.read(node_id)
        return self._ser.decode_node(data, node_id)

    def write(self, node: Node) -> None:
        self.stats.node_writes += 1
        node.invalidate_cache()
        self.pool.write(node.node_id, self._ser.encode_node(node, self.dim, self.page_size))

    def free(self, node_id: int) -> None:
        self.pool.free(node_id)

    def flush(self, sync: bool = False) -> None:
        """Force all dirty pages to the page file (``sync`` fsyncs it too)."""
        self.pool.flush(sync=sync)

    def drop_cache(self) -> None:
        """Flush and empty the buffer pool (cold-cache measurements)."""
        self.pool.clear()
