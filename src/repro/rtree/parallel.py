"""Parallel execution layer for the frozen kernel (ROADMAP item 2).

The frontier engine in :mod:`repro.rtree.kernel` runs every fused batch —
``range_ids_many``, ``knn_batch``, ``join_pairs`` and the ST-index probes
built on them — as a single round-synchronous pipeline.  This module
shards those batches across a thread pool:

* **Query-block sharding** (range / k-NN / subseq probes): the ``m``
  query rows are cut into contiguous balanced blocks, one kernel
  traversal per block.  Each query's result depends only on its own row
  (the pair frontier keeps per-query rows in traversal order and the
  k-NN heaps are per-query state), so concatenating per-block outputs in
  block order reproduces the serial output bit for bit.
* **Outer-partition sharding** (``join_pairs``): the outer side's rows
  are blocked the same way.  For the tree-matching join the outer rows
  *are* the outer kernel's leaf entries in BFS order, so contiguous
  blocks realise "partition the outer tree's top-level subtrees".  Each
  ``(outer, inner)`` candidate pair is produced by exactly one block;
  the merged pairs are re-sorted with the same ``lexsort`` key the
  serial kernel uses, so the merge is deterministic.

Threads, not processes: the kernel's hot steps are large fused array
ops that release the GIL, so a ``ThreadPoolExecutor`` scales without
pickling the frozen arrays.  This is the **only** module in the package
allowed to name threading primitives (contract REP007) — everything
else stays schedule-free.  Within this module, every pool interaction
routes through the supervisor (contract REP008): no bare
``Future.result()`` loops, no fire-and-forget submits whose exceptions
are never retrieved.

**Execution supervision.**  Sharding a batch multiplies its failure
modes — a worker can raise, wedge, or exhaust memory — and the storage
layer's contract (under faults, return a consistent answer or a typed
refusal, never a silently wrong one) must hold here too.  The
supervisor inside :meth:`KernelExecutor._run` provides it:

* **Watchdog** — each wait on in-flight blocks is bounded by the
  query's ``ResourceBudget`` deadline plus a small grace
  (``REPRO_KERNEL_WATCHDOG_GRACE_MS``).  A block still running past
  that window means a wedged worker: pending blocks are cancelled, the
  wedged pool is abandoned (its late exceptions are drained quietly,
  never "exception was never retrieved" noise), and the query fails
  with the same typed ``QueryBudgetExceeded("deadline")`` an overrun
  serial query raises.
* **Retry, then circuit breaker** — on the first failed block the
  supervisor cancels pending blocks, waits for running ones, and
  re-runs the failed block once, serially, outside the pool (secondary
  worker errors ride along as exception notes).  A block that fails its
  retry trips the circuit breaker: the executor degrades to serial mode
  for all subsequent batches — recorded in ``engine.health()`` as the
  ``kernel_executor`` component and in EXPLAIN's executor block as
  ``degraded_to_serial`` — and the query fails with a typed
  :class:`ExecutorError`.  ``QueryBudgetExceeded`` from a worker is a
  typed refusal, not a fault: it is re-raised (lowest block first),
  never retried, and never trips the breaker.
* **Fault injection** — every sharded block task passes through the
  ``kernel.worker:range|knn|join`` compute failpoints of
  :mod:`repro.storage.faults` (modes ``error``/``oom``/``slow``/
  ``hang``); the chaos harness (``tests/test_chaos_executor.py``)
  asserts that every injected fault yields the bit-identical serial
  answer or a typed error.  The serial path — ``workers == 1``, a
  batch under two blocks, or a tripped breaker — calls the kernel
  directly and never passes a failpoint.

Contracts preserved:

* **Stats** — each block task fills private ``FrontierStats`` /
  ``IOStats`` instances created per attempt (so a retried block never
  double-counts) which are merged, in block order, after every block
  has finished, so EXPLAIN ANALYZE sees the same deterministic totals
  as serial execution.  ``frontier_peak`` becomes the largest
  *per-worker* frontier — a worker never materialises the union
  frontier.
* **Budget** — the caller's ``ResourceBudget`` is shared by all workers
  and enforced inside each worker's frontier loop: the deadline is
  global wall-clock, the candidate counter a locked shared total, and
  ``max_frontier`` bounds each worker's own frontier.  Range/join
  workers raise the same typed ``QueryBudgetExceeded``; the lowest
  block's error is the one re-raised, so a pre-exceeded budget fails
  identically to serial.

Worker count resolves through
:func:`repro.rtree.backend.resolve_worker_count` (the
``REPRO_KERNEL_THREADS`` knob, next to the array-backend selection);
``workers == 1`` or a batch smaller than two blocks bypasses the pool
entirely and calls the kernel directly — the default configuration is
byte-for-byte today's serial path.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_EXCEPTION, Future, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Optional, TypeVar

from repro.rtree.backend import (
    resolve_watchdog_grace,
    resolve_worker_count,
    xp,
)
from repro.rtree.kernel import FrontierStats
from repro.storage import faults
from repro.storage.budget import QueryBudgetExceeded, ResourceBudget
from repro.storage.stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.rtree.kernel import (
        ExpandVerifyFn,
        FrozenRTree,
        PointDistRowsFn,
        RectDistRowsFn,
        VerifyManyFn,
    )

_T = TypeVar("_T")

#: Smallest query block worth dispatching to a worker thread.  Batches
#: shorter than two blocks run serially — the pool only pays off once a
#: worker has enough rows to amortise its dispatch.
DEFAULT_MIN_BLOCK = 8


class ExecutorError(RuntimeError):
    """A sharded kernel block kept failing after its supervised retry.

    The typed refusal of the parallel layer, the compute counterpart of
    the storage layer's ``PersistError``/``CorruptIndexError``: raising
    it means the executor could not produce a trustworthy answer for
    this batch (the underlying worker error is ``__cause__``; secondary
    worker errors ride along as exception notes) and has degraded
    itself to serial mode for subsequent batches.  Callers that retry
    the query get the serial kernel's exact answer.

    Attributes:
        site: the kernel entry point that failed (``"range"``, ``"knn"``,
            ``"join"``).
    """

    def __init__(self, site: str, detail: str) -> None:
        super().__init__(
            f"sharded {site} execution failed after supervised retry: {detail}"
        )
        self.site = site


class KernelExecutor:
    """Shards fused kernel batches across a supervised thread pool.

    See the module docstring for the sharding and supervision story.

    Args:
        workers: worker-count request — an ``int``, ``"auto"``/``0`` for
            one worker per CPU, or ``None`` to read
            ``REPRO_KERNEL_THREADS`` (default ``1`` = serial).  Resolved
            once at construction.
        min_block: smallest per-worker query block; batches shorter than
            two blocks skip the pool.  Exposed mainly so parity tests can
            force uneven chunkings on tiny batches.
        watchdog_grace_ms: how far past a query's budget deadline an
            in-flight block may run before the supervisor declares the
            worker wedged; ``None`` reads
            ``REPRO_KERNEL_WATCHDOG_GRACE_MS`` (default 50 ms).
    """

    def __init__(
        self,
        workers: "int | str | None" = None,
        min_block: int = DEFAULT_MIN_BLOCK,
        watchdog_grace_ms: "float | None" = None,
    ) -> None:
        if min_block < 1:
            raise ValueError(f"min_block must be >= 1, got {min_block}")
        self.workers = resolve_worker_count(workers)
        self.min_block = min_block
        self.watchdog_grace_ms = resolve_watchdog_grace(watchdog_grace_ms)
        self._pool: Optional[ThreadPoolExecutor] = None
        #: guards pool construction/abandonment and the supervision
        #: counters below (an executor may be shared across caller
        #: threads; block tasks themselves never touch this lock).
        self._lock = threading.Lock()
        #: supervised serial re-runs of failed blocks (cumulative).
        self.retries = 0
        #: batches abandoned because a worker wedged past its deadline.
        self.watchdog_trips = 0
        #: abandoned-future exceptions drained quietly after a trip.
        self.abandoned_errors = 0
        self._tripped = False
        self._breaker_reason = ""

    # ------------------------------------------------------------------
    # pool plumbing & supervision state
    # ------------------------------------------------------------------
    @property
    def tripped(self) -> bool:
        """Whether the circuit breaker is open (executor runs serially)."""
        return self._tripped

    @property
    def breaker_reason(self) -> str:
        """Why the circuit breaker opened (empty while closed)."""
        return self._breaker_reason

    def reset_breaker(self) -> None:
        """Close the circuit breaker and resume sharded execution.

        For operators who have cleared the underlying fault; the
        supervision counters (``retries``/``watchdog_trips``) are kept —
        they are cumulative diagnostics, not breaker state.
        """
        with self._lock:
            self._tripped = False
            self._breaker_reason = ""

    def describe(self) -> dict:
        """EXPLAIN payload: how this executor would run a large batch."""
        return {
            "workers": self.workers,
            "min_block": self.min_block,
            "mode": (
                "serial" if self.workers == 1 or self._tripped else "threads"
            ),
            "retries": self.retries,
            "degraded_to_serial": self._tripped,
            "breaker_reason": self._breaker_reason or None,
        }

    def shutdown(self) -> None:
        """Dispose of the thread pool (idempotent; pool is lazily rebuilt)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-kernel",
                )
            return self._pool

    def _trip(self, reason: str) -> None:
        """Open the circuit breaker: subsequent batches run serially."""
        with self._lock:
            self._tripped = True
            self._breaker_reason = reason

    def _blocks(self, m: int) -> list[tuple[int, int]]:
        """Contiguous balanced ``[start, end)`` query blocks for ``m`` rows.

        A single block means "run serially" — which is also how a
        tripped circuit breaker degrades every batch: one block, direct
        kernel call, no pool, no failpoints.
        """
        if self._tripped:
            return [(0, m)]
        nblocks = min(self.workers, max(1, m // self.min_block))
        if nblocks < 2 or m < 2:
            return [(0, m)]
        base, rem = divmod(m, nblocks)
        bounds = [0]
        for i in range(nblocks):
            bounds.append(bounds[-1] + base + (1 if i < rem else 0))
        return [(bounds[i], bounds[i + 1]) for i in range(nblocks)]

    # ------------------------------------------------------------------
    # the supervisor
    # ------------------------------------------------------------------
    def _call(self, task: Callable[[], _T], site: str) -> _T:
        """Run one block attempt, passing the compute failpoint first.

        Shared by pool workers and the serial recovery path, so a sticky
        injected fault fails the retry too — only the direct serial
        kernel path (one block, no pool) is failpoint-free.
        """
        faults.trigger_compute(f"kernel.worker:{site}")
        return task()

    def _watchdog_seconds(self, budget: Optional[ResourceBudget]) -> Optional[float]:
        """Wait bound for in-flight blocks: budget deadline plus grace.

        ``None`` (wait indefinitely) when the query carries no deadline —
        the watchdog is *derived from* the budget, it is not a second
        timeout authority.
        """
        if budget is None:
            return None
        remaining = budget.remaining_ms()
        if remaining is None:
            return None
        return max(remaining, 0.0) / 1000.0 + self.watchdog_grace_ms / 1000.0

    def _drain_abandoned(self, future: "Future[object]") -> None:
        """Quietly retrieve an abandoned future's outcome (no GC noise)."""
        if future.cancelled():
            return
        if future.exception() is not None:
            with self._lock:
                self.abandoned_errors += 1

    def _abandon_pool(self, futures: "list[Future[object]]") -> None:
        """Walk away from a wedged pool; late exceptions drain quietly."""
        with self._lock:
            pool, self._pool = self._pool, None
        for f in futures:
            if not f.done():
                f.add_done_callback(self._drain_abandoned)
        if pool is not None:
            pool.shutdown(wait=False)

    def _watchdog_trip(
        self, futures: "list[Future[object]]", site: str
    ) -> "QueryBudgetExceeded":
        """A block overran deadline+grace: abandon the pool, fail typed."""
        for f in futures:
            f.cancel()
        self._abandon_pool(futures)
        with self._lock:
            self.watchdog_trips += 1
            self._tripped = True
            self._breaker_reason = (
                f"watchdog: a {site} block was still running past the "
                f"budget deadline (+{self.watchdog_grace_ms:g} ms grace)"
            )
        return QueryBudgetExceeded(
            "deadline",
            f"kernel worker wedged past the deadline at {site}; "
            f"stragglers abandoned, executor degraded to serial",
        )

    @staticmethod
    def _annotate(
        exc: BaseException, errors: "dict[int, BaseException]", primary: int
    ) -> BaseException:
        """Attach secondary worker errors as notes on the raised one."""
        for idx in sorted(errors):
            if idx != primary:
                exc.add_note(
                    f"secondary worker error in block {idx}: {errors[idx]!r}"
                )
        return exc

    def _serial_recover(
        self,
        task: Callable[[], _T],
        site: str,
        failure: Optional[BaseException],
    ) -> _T:
        """Run one block serially, outside the pool, retrying once.

        ``failure`` is the block's pool-phase exception (its first
        attempt is then the supervised retry); ``None`` for a block that
        was cancelled before starting (it gets a fresh attempt plus one
        retry).  A block that fails after its retry opens the circuit
        breaker and raises :class:`ExecutorError`; a
        ``QueryBudgetExceeded`` is a typed refusal and propagates
        untouched.
        """
        for _ in range(2):
            if failure is not None:
                with self._lock:
                    self.retries += 1
            try:
                return self._call(task, site)
            except QueryBudgetExceeded:
                raise
            except Exception as exc:
                if failure is not None:
                    self._trip(
                        f"a {site} block failed its supervised retry: {exc!r}"
                    )
                    raise ExecutorError(site, repr(exc)) from exc
                failure = exc
        raise AssertionError("unreachable: recovery loop always returns or raises")

    # repro: supervisor
    def _run(
        self,
        tasks: "list[Callable[[], _T]]",
        budget: Optional[ResourceBudget] = None,
        site: str = "kernel",
    ) -> "list[_T]":
        """Run block tasks on the pool under supervision.

        Results come back in submission (block) order regardless of
        completion order — the merge step's determinism starts here.
        On the first failed block the supervisor cancels pending blocks,
        drains running ones, then recovers serially (module docstring);
        a wait that outlives the budget deadline plus grace abandons the
        pool and fails typed.
        """
        pool = self._ensure_pool()
        futures: "list[Future[_T]]" = [
            pool.submit(self._call, task, site) for task in tasks
        ]
        not_done = set(futures)
        failed = False
        while not_done:
            timeout = self._watchdog_seconds(budget)
            done, not_done = wait(
                not_done, timeout=timeout, return_when=FIRST_EXCEPTION
            )
            if any(f.exception() is not None for f in done):
                failed = True
                break
            if not_done and timeout is not None:
                # The full deadline+grace window elapsed with blocks
                # still in flight and none failed: a wedged worker.
                raise self._watchdog_trip(list(futures), site)
        if not failed:
            return [f.result() for f in futures]

        # First failure: stop admitting work, settle every block.
        for f in not_done:
            f.cancel()
        running = {f for f in not_done if not f.cancelled()}
        if running:
            _, still_running = wait(
                running, timeout=self._watchdog_seconds(budget)
            )
            if still_running:
                raise self._watchdog_trip(list(futures), site)

        results: "dict[int, _T]" = {}
        errors: "dict[int, BaseException]" = {}
        for idx, f in enumerate(futures):
            if f.cancelled():
                continue  # never started; recovered serially below
            elif f.exception() is not None:
                errors[idx] = f.exception()  # type: ignore[assignment]
            else:
                results[idx] = f.result()

        primary = min(errors)
        if isinstance(errors[primary], QueryBudgetExceeded):
            # A typed refusal: serial execution would have raised at the
            # lowest failing block and never run the later ones.
            raise self._annotate(errors[primary], errors, primary)

        # Fault recovery: settle remaining blocks serially, in order.
        for idx in range(len(tasks)):
            if idx in results:
                continue
            results[idx] = self._serial_recover(
                tasks[idx], site, errors.get(idx)
            )
        return [results[idx] for idx in range(len(tasks))]

    # ------------------------------------------------------------------
    # per-block stats plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _part(
        fstats: Optional[FrontierStats], io: Optional[IOStats]
    ) -> tuple[Optional[FrontierStats], Optional[IOStats]]:
        """Fresh private per-attempt stat objects (``None`` stays ``None``).

        Created inside each block attempt — not pre-allocated — so a
        supervised retry starts from zeroed counters and the merged
        totals never double-count a failed attempt.
        """
        return (
            FrontierStats() if fstats is not None else None,
            IOStats() if io is not None else None,
        )

    @staticmethod
    def _merge_parts(
        fstats: Optional[FrontierStats],
        io: Optional[IOStats],
        parts: "list[tuple[object, Optional[FrontierStats], Optional[IOStats]]]",
    ) -> None:
        """Fold per-block stats into the caller's objects, in block order."""
        for _, part_f, part_io in parts:
            if fstats is not None and part_f is not None:
                fstats.merge(part_f)
            if io is not None and part_io is not None:
                io.merge(part_io)

    # ------------------------------------------------------------------
    # sharded kernel entry points
    # ------------------------------------------------------------------
    def range_ids_many(
        self,
        kernel: "FrozenRTree",
        qlows: xp.ndarray,
        qhighs: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        circular_mask: Optional[xp.ndarray] = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> list[xp.ndarray]:
        """Sharded :meth:`FrozenRTree.range_ids_many` — same contract.

        Query ``i``'s id array is unaffected by which other queries share
        its traversal, so per-block result lists concatenate directly.
        """
        m = int(qlows.shape[0])
        blocks = self._blocks(m)
        if len(blocks) < 2:
            return kernel.range_ids_many(
                qlows, qhighs, scale, offset, circular_mask, fstats, io, budget
            )

        def task(start: int, end: int):
            part_f, part_io = self._part(fstats, io)
            value = kernel.range_ids_many(
                qlows[start:end], qhighs[start:end], scale, offset,
                circular_mask, part_f, part_io, budget,
            )
            return value, part_f, part_io

        parts = self._run(
            [lambda s=s, e=e: task(s, e) for (s, e) in blocks],
            budget=budget, site="range",
        )
        self._merge_parts(fstats, io, parts)
        out: list[xp.ndarray] = []
        for value, _, _ in parts:
            out.extend(value)
        return out

    def join_pairs(
        self,
        kernel: "FrozenRTree",
        qlows: xp.ndarray,
        qhighs: xp.ndarray,
        outer_ids: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        circular_mask: Optional[xp.ndarray] = None,
        self_join: bool = True,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Sharded :meth:`FrozenRTree.join_pairs` — same contract.

        The outer rows are partitioned across workers; every candidate
        pair is produced by exactly one block (the self-join filter is
        row-wise), so concatenating the block outputs and re-sorting with
        the serial kernel's own ``lexsort`` key yields identical pairs.
        """
        m = int(qlows.shape[0])
        blocks = self._blocks(m)
        if len(blocks) < 2:
            return kernel.join_pairs(
                qlows, qhighs, outer_ids, scale, offset, circular_mask,
                self_join, fstats, io, budget,
            )
        outer_ids = xp.asarray(outer_ids, dtype=xp.int64)

        def task(start: int, end: int):
            part_f, part_io = self._part(fstats, io)
            value = kernel.join_pairs(
                qlows[start:end], qhighs[start:end], outer_ids[start:end],
                scale, offset, circular_mask, self_join, part_f, part_io,
                budget,
            )
            return value, part_f, part_io

        parts = self._run(
            [lambda s=s, e=e: task(s, e) for (s, e) in blocks],
            budget=budget, site="join",
        )
        self._merge_parts(fstats, io, parts)
        outer_all = xp.concatenate([p[0][0] for p in parts])
        inner_all = xp.concatenate([p[0][1] for p in parts])
        order = xp.lexsort((inner_all, outer_all))
        return outer_all[order], inner_all[order]

    def knn_batch(
        self,
        kernel: "FrozenRTree",
        qpoints: xp.ndarray,
        k: int,
        verify_many: "Optional[VerifyManyFn]" = None,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        rect_dist_rows: "Optional[RectDistRowsFn]" = None,
        point_dist_rows: "Optional[PointDistRowsFn]" = None,
        box_leaves: bool = False,
        verify_expand: "Optional[ExpandVerifyFn]" = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> list[list[tuple[int, float]]]:
        """Sharded :meth:`FrozenRTree.knn_batch` — same contract.

        Each query owns its heap, radius and result list; the rounds are
        only a batching device, so a block of queries traverses exactly
        as it would inside the full batch.  Verification callbacks see
        *global* query indices — the block wrappers translate.
        """
        qpoints = xp.asarray(qpoints, dtype=xp.float64)
        m = int(qpoints.shape[0])
        blocks = self._blocks(m)
        if len(blocks) < 2:
            return kernel.knn_batch(
                qpoints, k, verify_many, scale, offset, rect_dist_rows,
                point_dist_rows, box_leaves, verify_expand, fstats, io,
                budget,
            )

        def shift_verify(
            fn: "VerifyManyFn", start: int
        ) -> "VerifyManyFn":
            def shifted(qidx: xp.ndarray, rids: xp.ndarray) -> xp.ndarray:
                return fn(qidx + start, rids)

            return shifted

        def shift_expand(
            fn: "ExpandVerifyFn", start: int
        ) -> "ExpandVerifyFn":
            def shifted(
                qidx: xp.ndarray, rids: xp.ndarray, radii: xp.ndarray
            ) -> tuple[xp.ndarray, xp.ndarray, xp.ndarray]:
                eq, keys, dists = fn(qidx + start, rids, radii)
                return eq - start, keys, dists

            return shifted

        def task(start: int, end: int):
            shifted_verify = (
                shift_verify(verify_many, start) if verify_many is not None else None
            )
            shifted_expand = (
                shift_expand(verify_expand, start) if verify_expand is not None else None
            )
            part_f, part_io = self._part(fstats, io)
            value = kernel.knn_batch(
                qpoints[start:end], k, shifted_verify, scale, offset,
                rect_dist_rows, point_dist_rows, box_leaves, shifted_expand,
                part_f, part_io, budget,
            )
            return value, part_f, part_io

        parts = self._run(
            [lambda s=s, e=e: task(s, e) for (s, e) in blocks],
            budget=budget, site="knn",
        )
        self._merge_parts(fstats, io, parts)
        out: list[list[tuple[int, float]]] = []
        for value, _, _ in parts:
            out.extend(value)
        return out
