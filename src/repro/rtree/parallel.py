"""Parallel execution layer for the frozen kernel (ROADMAP item 2).

The frontier engine in :mod:`repro.rtree.kernel` runs every fused batch —
``range_ids_many``, ``knn_batch``, ``join_pairs`` and the ST-index probes
built on them — as a single round-synchronous pipeline.  This module
shards those batches across a thread pool:

* **Query-block sharding** (range / k-NN / subseq probes): the ``m``
  query rows are cut into contiguous balanced blocks, one kernel
  traversal per block.  Each query's result depends only on its own row
  (the pair frontier keeps per-query rows in traversal order and the
  k-NN heaps are per-query state), so concatenating per-block outputs in
  block order reproduces the serial output bit for bit.
* **Outer-partition sharding** (``join_pairs``): the outer side's rows
  are blocked the same way.  For the tree-matching join the outer rows
  *are* the outer kernel's leaf entries in BFS order, so contiguous
  blocks realise "partition the outer tree's top-level subtrees".  Each
  ``(outer, inner)`` candidate pair is produced by exactly one block;
  the merged pairs are re-sorted with the same ``lexsort`` key the
  serial kernel uses, so the merge is deterministic.

Threads, not processes: the kernel's hot steps are large fused array
ops that release the GIL, so a ``ThreadPoolExecutor`` scales without
pickling the frozen arrays.  This is the **only** module in the package
allowed to name threading primitives (contract REP007) — everything
else stays schedule-free.

Contracts preserved:

* **Stats** — each worker fills private ``FrontierStats`` / ``IOStats``
  instances which are merged (in block order, after every worker has
  finished) into the caller's objects, so EXPLAIN ANALYZE sees the same
  deterministic totals as serial execution.  ``frontier_peak`` becomes
  the largest *per-worker* frontier — a worker never materialises the
  union frontier.
* **Budget** — the caller's ``ResourceBudget`` is shared by all workers
  and enforced inside each worker's frontier loop: the deadline is
  global wall-clock, the candidate counter a locked shared total, and
  ``max_frontier`` bounds each worker's own frontier.  Range/join
  workers raise the same typed ``QueryBudgetExceeded``; the lowest
  block's error is the one re-raised, so a pre-exceeded budget fails
  identically to serial.

Worker count resolves through
:func:`repro.rtree.backend.resolve_worker_count` (the
``REPRO_KERNEL_THREADS`` knob, next to the array-backend selection);
``workers == 1`` or a batch smaller than two blocks bypasses the pool
entirely and calls the kernel directly — the default configuration is
byte-for-byte today's serial path.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Optional, TypeVar

from repro.rtree.backend import resolve_worker_count, xp
from repro.rtree.kernel import FrontierStats
from repro.storage.budget import ResourceBudget
from repro.storage.stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.rtree.kernel import (
        ExpandVerifyFn,
        FrozenRTree,
        PointDistRowsFn,
        RectDistRowsFn,
        VerifyManyFn,
    )

_T = TypeVar("_T")

#: Smallest query block worth dispatching to a worker thread.  Batches
#: shorter than two blocks run serially — the pool only pays off once a
#: worker has enough rows to amortise its dispatch.
DEFAULT_MIN_BLOCK = 8


class KernelExecutor:
    """Shards fused kernel batches across a thread pool (module docstring).

    Args:
        workers: worker-count request — an ``int``, ``"auto"``/``0`` for
            one worker per CPU, or ``None`` to read
            ``REPRO_KERNEL_THREADS`` (default ``1`` = serial).  Resolved
            once at construction.
        min_block: smallest per-worker query block; batches shorter than
            two blocks skip the pool.  Exposed mainly so parity tests can
            force uneven chunkings on tiny batches.
    """

    def __init__(
        self,
        workers: "int | str | None" = None,
        min_block: int = DEFAULT_MIN_BLOCK,
    ) -> None:
        if min_block < 1:
            raise ValueError(f"min_block must be >= 1, got {min_block}")
        self.workers = resolve_worker_count(workers)
        self.min_block = min_block
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """EXPLAIN payload: how this executor would run a large batch."""
        return {
            "workers": self.workers,
            "min_block": self.min_block,
            "mode": "threads" if self.workers > 1 else "serial",
        }

    def shutdown(self) -> None:
        """Dispose of the thread pool (idempotent; pool is lazily rebuilt)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _blocks(self, m: int) -> list[tuple[int, int]]:
        """Contiguous balanced ``[start, end)`` query blocks for ``m`` rows."""
        nblocks = min(self.workers, max(1, m // self.min_block))
        if nblocks < 2 or m < 2:
            return [(0, m)]
        base, rem = divmod(m, nblocks)
        bounds = [0]
        for i in range(nblocks):
            bounds.append(bounds[-1] + base + (1 if i < rem else 0))
        return [(bounds[i], bounds[i + 1]) for i in range(nblocks)]

    def _run(self, tasks: list[Callable[[], _T]]) -> list[_T]:
        """Run block tasks on the pool; propagate the lowest block's error.

        Results come back in submission (block) order regardless of
        completion order — the merge step's determinism starts here.
        """
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-kernel",
            )
        futures: list[Future[_T]] = [self._pool.submit(t) for t in tasks]
        return [f.result() for f in futures]

    @staticmethod
    def _worker_stats(
        fstats: Optional[FrontierStats], io: Optional[IOStats], n: int
    ) -> list[tuple[Optional[FrontierStats], Optional[IOStats]]]:
        """Private per-worker stat objects (``None`` stays ``None``)."""
        return [
            (
                FrontierStats() if fstats is not None else None,
                IOStats() if io is not None else None,
            )
            for _ in range(n)
        ]

    @staticmethod
    def _merge_stats(
        fstats: Optional[FrontierStats],
        io: Optional[IOStats],
        parts: list[tuple[Optional[FrontierStats], Optional[IOStats]]],
    ) -> None:
        """Fold per-worker stats into the caller's objects, in block order."""
        for part_f, part_io in parts:
            if fstats is not None and part_f is not None:
                fstats.merge(part_f)
            if io is not None and part_io is not None:
                io.merge(part_io)

    # ------------------------------------------------------------------
    # sharded kernel entry points
    # ------------------------------------------------------------------
    def range_ids_many(
        self,
        kernel: "FrozenRTree",
        qlows: xp.ndarray,
        qhighs: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        circular_mask: Optional[xp.ndarray] = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> list[xp.ndarray]:
        """Sharded :meth:`FrozenRTree.range_ids_many` — same contract.

        Query ``i``'s id array is unaffected by which other queries share
        its traversal, so per-block result lists concatenate directly.
        """
        m = int(qlows.shape[0])
        blocks = self._blocks(m)
        if len(blocks) < 2:
            return kernel.range_ids_many(
                qlows, qhighs, scale, offset, circular_mask, fstats, io, budget
            )
        parts = self._worker_stats(fstats, io, len(blocks))

        def task(start: int, end: int, idx: int) -> list[xp.ndarray]:
            part_f, part_io = parts[idx]
            return kernel.range_ids_many(
                qlows[start:end], qhighs[start:end], scale, offset,
                circular_mask, part_f, part_io, budget,
            )

        chunks = self._run(
            [lambda s=s, e=e, i=i: task(s, e, i) for i, (s, e) in enumerate(blocks)]
        )
        self._merge_stats(fstats, io, parts)
        out: list[xp.ndarray] = []
        for chunk in chunks:
            out.extend(chunk)
        return out

    def join_pairs(
        self,
        kernel: "FrozenRTree",
        qlows: xp.ndarray,
        qhighs: xp.ndarray,
        outer_ids: xp.ndarray,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        circular_mask: Optional[xp.ndarray] = None,
        self_join: bool = True,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Sharded :meth:`FrozenRTree.join_pairs` — same contract.

        The outer rows are partitioned across workers; every candidate
        pair is produced by exactly one block (the self-join filter is
        row-wise), so concatenating the block outputs and re-sorting with
        the serial kernel's own ``lexsort`` key yields identical pairs.
        """
        m = int(qlows.shape[0])
        blocks = self._blocks(m)
        if len(blocks) < 2:
            return kernel.join_pairs(
                qlows, qhighs, outer_ids, scale, offset, circular_mask,
                self_join, fstats, io, budget,
            )
        outer_ids = xp.asarray(outer_ids, dtype=xp.int64)
        parts = self._worker_stats(fstats, io, len(blocks))

        def task(start: int, end: int, idx: int) -> tuple[xp.ndarray, xp.ndarray]:
            part_f, part_io = parts[idx]
            return kernel.join_pairs(
                qlows[start:end], qhighs[start:end], outer_ids[start:end],
                scale, offset, circular_mask, self_join, part_f, part_io,
                budget,
            )

        pair_chunks = self._run(
            [lambda s=s, e=e, i=i: task(s, e, i) for i, (s, e) in enumerate(blocks)]
        )
        self._merge_stats(fstats, io, parts)
        outer_all = xp.concatenate([p[0] for p in pair_chunks])
        inner_all = xp.concatenate([p[1] for p in pair_chunks])
        order = xp.lexsort((inner_all, outer_all))
        return outer_all[order], inner_all[order]

    def knn_batch(
        self,
        kernel: "FrozenRTree",
        qpoints: xp.ndarray,
        k: int,
        verify_many: "Optional[VerifyManyFn]" = None,
        scale: Optional[xp.ndarray] = None,
        offset: Optional[xp.ndarray] = None,
        rect_dist_rows: "Optional[RectDistRowsFn]" = None,
        point_dist_rows: "Optional[PointDistRowsFn]" = None,
        box_leaves: bool = False,
        verify_expand: "Optional[ExpandVerifyFn]" = None,
        fstats: Optional[FrontierStats] = None,
        io: Optional[IOStats] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> list[list[tuple[int, float]]]:
        """Sharded :meth:`FrozenRTree.knn_batch` — same contract.

        Each query owns its heap, radius and result list; the rounds are
        only a batching device, so a block of queries traverses exactly
        as it would inside the full batch.  Verification callbacks see
        *global* query indices — the block wrappers translate.
        """
        qpoints = xp.asarray(qpoints, dtype=xp.float64)
        m = int(qpoints.shape[0])
        blocks = self._blocks(m)
        if len(blocks) < 2:
            return kernel.knn_batch(
                qpoints, k, verify_many, scale, offset, rect_dist_rows,
                point_dist_rows, box_leaves, verify_expand, fstats, io,
                budget,
            )
        parts = self._worker_stats(fstats, io, len(blocks))

        def shift_verify(
            fn: "VerifyManyFn", start: int
        ) -> "VerifyManyFn":
            def shifted(qidx: xp.ndarray, rids: xp.ndarray) -> xp.ndarray:
                return fn(qidx + start, rids)

            return shifted

        def shift_expand(
            fn: "ExpandVerifyFn", start: int
        ) -> "ExpandVerifyFn":
            def shifted(
                qidx: xp.ndarray, rids: xp.ndarray, radii: xp.ndarray
            ) -> tuple[xp.ndarray, xp.ndarray, xp.ndarray]:
                eq, keys, dists = fn(qidx + start, rids, radii)
                return eq - start, keys, dists

            return shifted

        def task(start: int, end: int, idx: int) -> list[list[tuple[int, float]]]:
            shifted_verify = (
                shift_verify(verify_many, start) if verify_many is not None else None
            )
            shifted_expand = (
                shift_expand(verify_expand, start) if verify_expand is not None else None
            )
            part_f, part_io = parts[idx]
            return kernel.knn_batch(
                qpoints[start:end], k, shifted_verify, scale, offset,
                rect_dist_rows, point_dist_rows, box_leaves, shifted_expand,
                part_f, part_io, budget,
            )

        chunks = self._run(
            [lambda s=s, e=e, i=i: task(s, e, i) for i, (s, e) in enumerate(blocks)]
        )
        self._merge_stats(fstats, io, parts)
        out: list[list[tuple[int, float]]] = []
        for chunk in chunks:
            out.extend(chunk)
        return out
