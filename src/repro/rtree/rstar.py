"""The R*-tree of Beckmann, Kriegel, Schneider & Seeger (SIGMOD 1990).

The paper's experiments run "on top of Norbert Beckmann's Version 2
implementation of the R*-tree"; this module is a faithful re-implementation
of the three R* policies on top of :class:`~repro.rtree.base.RTreeBase`:

* **ChooseSubtree** — for nodes just above the leaves, pick the child whose
  *overlap* enlargement is least (ties: least area enlargement, then least
  area); higher up, least area enlargement suffices.
* **Split** — choose the split axis by minimum total margin over all
  distributions, then the distribution on that axis with minimum overlap
  (ties: minimum combined area).
* **Forced reinsertion** — on the first overflow at each level per
  insertion, evict the ``reinsert_fraction`` of entries whose centres are
  farthest from the node centre and re-insert them ("close reinsert"
  order), which defers splits and keeps the directory tight.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.rtree.base import RTreeBase
from repro.rtree.geometry import Rect, union_all
from repro.rtree.node import Entry, Node


class RStarTree(RTreeBase):
    """R*-tree with forced reinsertion.

    Args:
        dim: dimensionality of indexed rectangles.
        store: node store (memory by default).
        max_entries: fanout cap (clamped by page capacity for paged stores).
        min_fill: minimum fill fraction.
        reinsert_fraction: share of entries evicted on first overflow per
            level (the R* paper found 30% best); ``0`` disables forced
            reinsertion entirely.
    """

    def __init__(
        self,
        dim: int,
        store=None,
        max_entries: Optional[int] = None,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ) -> None:
        if not 0.0 <= reinsert_fraction < 1.0:
            raise ValueError(
                f"reinsert_fraction must be in [0, 1), got {reinsert_fraction}"
            )
        super().__init__(dim, store=store, max_entries=max_entries, min_fill=min_fill)
        self.reinsert_fraction = reinsert_fraction

    # ------------------------------------------------------------------
    # ChooseSubtree
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        if node.level == 1:
            return self._choose_least_overlap(node, rect)
        return self._choose_least_enlargement(node, rect)

    def _choose_least_overlap(self, node: Node, rect: Rect) -> int:
        """Least overlap enlargement; ties by area enlargement then area."""
        entries = node.entries
        best_idx = 0
        best_key: Optional[tuple[float, float, float]] = None
        # Pre-compute unions once.
        unions = [e.rect.union(rect) for e in entries]
        for i, e in enumerate(entries):
            enlarged = unions[i]
            overlap_before = 0.0
            overlap_after = 0.0
            for j, other in enumerate(entries):
                if j == i:
                    continue
                overlap_before += e.rect.overlap_area(other.rect)
                overlap_after += enlarged.overlap_area(other.rect)
            key = (
                overlap_after - overlap_before,
                enlarged.area() - e.rect.area(),
                e.rect.area(),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx

    def _choose_least_enlargement(self, node: Node, rect: Rect) -> int:
        """Least area enlargement; ties by area."""
        best_idx = 0
        best_key: Optional[tuple[float, float]] = None
        for i, e in enumerate(node.entries):
            key = (e.rect.enlargement(rect), e.rect.area())
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx

    # ------------------------------------------------------------------
    # R* topological split
    # ------------------------------------------------------------------
    def _split_entries(
        self, entries: list[Entry], level: int
    ) -> tuple[list[Entry], list[Entry]]:
        m = self.min_entries
        total = len(entries)
        best_axis = self._choose_split_axis(entries, m)
        # On the chosen axis, consider both sortings and all distributions;
        # pick minimum overlap, ties by combined area.
        best_key: Optional[tuple[float, float]] = None
        best_groups: Optional[tuple[list[Entry], list[Entry]]] = None
        for key_fn in (
            lambda e: (e.rect.lows[best_axis], e.rect.highs[best_axis]),
            lambda e: (e.rect.highs[best_axis], e.rect.lows[best_axis]),
        ):
            ordered = sorted(entries, key=key_fn)
            for k in range(m, total - m + 1):
                g1, g2 = ordered[:k], ordered[k:]
                r1 = union_all(e.rect for e in g1)
                r2 = union_all(e.rect for e in g2)
                cand = (r1.overlap_area(r2), r1.area() + r2.area())
                if best_key is None or cand < best_key:
                    best_key = cand
                    best_groups = (list(g1), list(g2))
        assert best_groups is not None
        return best_groups

    def _choose_split_axis(self, entries: list[Entry], m: int) -> int:
        """Axis whose distributions have the least total margin."""
        total = len(entries)
        dim = entries[0].rect.dim
        best_axis = 0
        best_margin = float("inf")
        for axis in range(dim):
            margin_sum = 0.0
            for key_fn in (
                lambda e: (e.rect.lows[axis], e.rect.highs[axis]),
                lambda e: (e.rect.highs[axis], e.rect.lows[axis]),
            ):
                ordered = sorted(entries, key=key_fn)
                # Prefix/suffix MBRs to avoid recomputing unions per k.
                prefix = self._running_unions(ordered)
                suffix = self._running_unions(ordered[::-1])[::-1]
                for k in range(m, total - m + 1):
                    margin_sum += prefix[k - 1].margin() + suffix[k].margin()
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
        return best_axis

    @staticmethod
    def _running_unions(ordered: list[Entry]) -> list[Rect]:
        out: list[Rect] = []
        acc: Optional[Rect] = None
        for e in ordered:
            acc = e.rect if acc is None else acc.union(e.rect)
            out.append(acc)
        return out

    # ------------------------------------------------------------------
    # Forced reinsertion
    # ------------------------------------------------------------------
    def _overflow_entries(self, node: Node, is_root: bool) -> Optional[list[Entry]]:
        if (
            is_root
            or self.reinsert_fraction == 0.0
            or node.level in self._reinserted_levels
        ):
            return None
        self._reinserted_levels.add(node.level)
        p = max(1, int(round(self.reinsert_fraction * len(node.entries))))
        center = node.mbr().center
        dists = np.array(
            [float(np.linalg.norm(e.rect.center - center)) for e in node.entries]
        )
        order = np.argsort(dists)  # nearest first
        keep = [node.entries[i] for i in order[: len(node.entries) - p]]
        evicted = [node.entries[i] for i in order[len(node.entries) - p :]]
        node.entries = keep
        # "Close reinsert": re-insert evicted entries nearest-first.
        return evicted
