"""Nearest-neighbour search over (transformed) R-trees.

Implements the branch-and-bound traversal of Roussopoulos, Kelley & Vincent
(SIGMOD 1995) that the paper cites for its nearest-neighbour queries
(Section 4: "we can then use any kind of metric (such as MINDIST or
MINMAXDIST...) for pruning the search"), generalised in two ways:

* the traversal runs over a :class:`~repro.rtree.transformed.TransformedIndexView`,
  applying the safe transformation to every node as it is visited, and
* the distance metric is pluggable, so the polar feature space can supply
  its law-of-cosines point distance and conservative rectangle MINDIST.

:func:`incremental_nearest` is the engine's workhorse: a best-first
generator that yields leaf entries in non-decreasing order of (a lower
bound on) their distance, enabling exact multi-step k-NN over the k-index.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry
from repro.rtree.transformed import TransformedIndexView
from repro.storage.budget import ResourceBudget

#: distance from a query point to a rectangle (a lower bound for pruning)
RectDistFn = Callable[[Rect, np.ndarray], float]
#: distance from a query point to an indexed point
PointDistFn = Callable[[np.ndarray, np.ndarray], float]
#: batched rect distance: (m, d) lows, (m, d) highs, query -> (m,) bounds
RectDistManyFn = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
#: batched point distance: (m, d) points, query -> (m,) distances
PointDistManyFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _euclid_rect(rect: Rect, point: np.ndarray) -> float:
    return rect.mindist(point)


def _euclid_point(p: np.ndarray, q: np.ndarray) -> float:
    return float(np.linalg.norm(p - q))


def _euclid_point_many(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    return np.linalg.norm(points - q, axis=1)


def _rowwise_rect(fn: RectDistFn) -> RectDistManyFn:
    """Adapt a scalar rect-distance to the batched signature (reference)."""

    def many(lows: np.ndarray, highs: np.ndarray, q: np.ndarray) -> np.ndarray:
        return np.array([fn(Rect(lows[i], highs[i]), q) for i in range(lows.shape[0])])

    return many


def _rowwise_point(fn: PointDistFn) -> PointDistManyFn:
    """Adapt a scalar point-distance to the batched signature (reference)."""

    def many(points: np.ndarray, q: np.ndarray) -> np.ndarray:
        return np.array([fn(points[i], q) for i in range(points.shape[0])])

    return many


def incremental_nearest(
    view: TransformedIndexView,
    query: Sequence[float],
    rect_dist: Optional[RectDistFn] = None,
    point_dist: Optional[PointDistFn] = None,
    rect_dist_many: Optional[RectDistManyFn] = None,
    point_dist_many: Optional[PointDistManyFn] = None,
    budget: Optional[ResourceBudget] = None,
) -> Iterator[tuple[float, Entry]]:
    """Yield transformed leaf entries in non-decreasing distance order.

    Each visited node is scored with *one* distance evaluation over its
    stacked child MBRs (``rect_dist_many`` / ``point_dist_many``); when only
    scalar metrics are supplied they are applied row by row, so custom
    scalar metrics keep working and serve as the reference path.  Child
    nodes are read lazily when popped, never eagerly when pushed.

    Args:
        view: transformed index view (identity map for a plain index).
        query: query point in index space.
        rect_dist: lower-bound distance from query to a transformed MBR;
            Euclidean MINDIST by default.
        point_dist: distance from query to a transformed leaf point;
            Euclidean by default.
        rect_dist_many: batched form of ``rect_dist`` over ``(m, d)``
            lows/highs stacks; vectorised MINDIST by default.
        point_dist_many: batched form of ``point_dist`` over an ``(m, d)``
            point matrix; vectorised Euclidean by default.
        budget: optional per-query :class:`ResourceBudget`; when a limit
            fires the stream stops yielding and sets ``budget.truncated``
            (k-NN truncation semantics) instead of raising.

    Yields:
        ``(distance, entry)`` pairs; ``entry.rect`` is the transformed
        point and ``entry.child`` the record id.
    """
    q = np.asarray(query, dtype=np.float64)
    # With a frozen kernel attached and fully-batched metrics (explicit, or
    # the Euclidean defaults), the traversal runs through the kernel's
    # block-yield stream: nodes are popped once and their entries travel as
    # distance-sorted blocks, so the heap holds one item per block instead
    # of one per entry.  Scalar-only custom metrics keep the recursive
    # reference path (they cannot be vectorised on the caller's behalf).
    if view.kernel is not None and (
        (rect_dist_many is not None or rect_dist is None)
        and (point_dist_many is not None or point_dist is None)
    ):
        for dist, rid, point in view.kernel.nearest_stream(
            q,
            view.mapping.scale,
            view.mapping.offset,
            rect_dist_many=rect_dist_many,
            point_dist_many=point_dist_many,
            io=view.tree.store.stats,
            budget=budget,
        ):
            yield dist, Entry(Rect(point, point), rid)
        return
    if rect_dist_many is None:
        rect_dist_many = (
            Rect.mindist_many if rect_dist is None else _rowwise_rect(rect_dist)
        )
    if point_dist_many is None:
        point_dist_many = (
            _euclid_point_many if point_dist is None else _rowwise_point(point_dist)
        )
    counter = itertools.count()  # tie-breaker so heapq never compares entries
    heap: list[tuple[float, int, bool, object]] = []
    heapq.heappush(heap, (0.0, next(counter), False, view.root_id))
    while heap:
        if budget is not None and budget.exceeded(len(heap)) is not None:
            budget.truncated = True
            return
        dist, _, is_entry, item = heapq.heappop(heap)
        if is_entry:
            yield dist, item  # type: ignore[misc]
            continue
        node, t_lows, t_highs = view.transformed_node_arrays(item)  # type: ignore[arg-type]
        if not node.entries:
            continue
        if node.is_leaf:
            ds = point_dist_many(t_lows, q)
            for i, e in enumerate(node.entries):
                heapq.heappush(
                    heap,
                    (
                        float(ds[i]),
                        next(counter),
                        True,
                        Entry(Rect(t_lows[i], t_highs[i]), e.child),
                    ),
                )
        else:
            ds = rect_dist_many(t_lows, t_highs, q)
            for i, e in enumerate(node.entries):
                heapq.heappush(heap, (float(ds[i]), next(counter), False, e.child))


def nearest_neighbors(
    view: TransformedIndexView,
    query: Sequence[float],
    k: int = 1,
    rect_dist: Optional[RectDistFn] = None,
    point_dist: Optional[PointDistFn] = None,
    rect_dist_many: Optional[RectDistManyFn] = None,
    point_dist_many: Optional[PointDistManyFn] = None,
) -> list[tuple[float, Entry]]:
    """The ``k`` transformed entries nearest to ``query`` in index space."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    out: list[tuple[float, Entry]] = []
    for dist, entry in incremental_nearest(
        view, query, rect_dist, point_dist, rect_dist_many, point_dist_many
    ):
        out.append((dist, entry))
        if len(out) == k:
            break
    return out


def depth_first_nearest(
    view: TransformedIndexView,
    query: Sequence[float],
    k: int = 1,
) -> list[tuple[float, Entry]]:
    """RKV95-style depth-first k-NN with MINDIST ordering and MINMAXDIST pruning.

    Kept alongside the best-first version both as a cross-check in tests and
    because it is the algorithm the paper actually cites.  Euclidean metric
    only (MINMAXDIST has no clean analogue for the polar metric).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    q = np.asarray(query, dtype=np.float64)
    best: list[tuple[float, int, Entry]] = []  # max-heap via negated distance
    counter = itertools.count()

    def visit(node_id: int) -> None:
        node = view.transformed_node(node_id)
        if node.is_leaf:
            for e in node.entries:
                d = float(np.linalg.norm(e.rect.lows - q))
                if len(best) < k:
                    heapq.heappush(best, (-d, next(counter), e))
                elif d < -best[0][0]:
                    heapq.heapreplace(best, (-d, next(counter), e))
            return
        branches = sorted(
            ((e.rect.mindist(q), e.rect.minmaxdist(q), e) for e in node.entries),
            key=lambda t: t[0],
        )
        # MINMAXDIST guarantees an object within that distance exists, so
        # any branch whose MINDIST exceeds the smallest MINMAXDIST (or the
        # current k-th best) can be pruned.
        if branches and len(best) < k:
            min_minmax = min(b[1] for b in branches)
        else:
            min_minmax = float("inf")
        for mind, _, e in branches:
            worst = -best[0][0] if len(best) == k else float("inf")
            if mind > worst or mind > min_minmax:
                continue
            visit(e.child)

    visit(view.root_id)
    return sorted(((-d, e) for d, _, e in best), key=lambda t: t[0])
