"""Algorithm 1: a transformed R-tree view built on the fly.

Given an index ``I`` over a data set ``D`` and a *safe* transformation ``T``
(one that maps rectangles to rectangles preserving inside/outside —
Definition 1 of the paper), Algorithm 1 constructs an index ``I'`` for
``T(D)`` by mapping every node MBR through ``T``.  The paper's key
observation is that ``I'`` never needs to be materialised: the mapping can
be applied to each node *as it is read during search*, so one physical
index serves every safe transformation with no extra disk.

:class:`AffineMap` is the concrete form every safe transformation takes on
the feature space once Theorems 1-3 are applied: an independent real affine
map ``x -> c*x + d`` per dimension (``c`` may be negative — the paper
explicitly allows negative scales — in which case interval endpoints swap).

:class:`TransformedIndexView` wraps a tree and an affine map and exposes
read-only traversal (range search, iteration, node access) over the
transformed index.  The identity map specialises to the plain index, which
is how the paper's Figures 8 and 9 compare the two.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.rtree.base import RTreeBase
from repro.rtree.geometry import Rect, intersects_circular
from repro.rtree.kernel import FrontierStats, FrozenRTree, cached_kernel
from repro.rtree.node import Entry, Node, NodeStore


class AffineMap:
    """Per-dimension real affine map ``x -> scale * x + offset``.

    This is the normal form of every safe transformation on the index space
    (see the proofs of Theorems 1-3, which all end by exhibiting real
    vectors ``c`` and ``d``).
    """

    __slots__ = ("scale", "offset")

    def __init__(self, scale: Sequence[float], offset: Sequence[float]) -> None:
        self.scale = np.asarray(scale, dtype=np.float64).copy()
        self.offset = np.asarray(offset, dtype=np.float64).copy()
        if self.scale.shape != self.offset.shape or self.scale.ndim != 1:
            raise ValueError("scale and offset must be 1-D arrays of equal length")

    @classmethod
    def identity(cls, dim: int) -> "AffineMap":
        """The identity map ``T_i = (1, 0)`` used in the paper's Figs 8-9."""
        return cls(np.ones(dim), np.zeros(dim))

    @property
    def dim(self) -> int:
        return self.scale.shape[0]

    def is_identity(self, tol: float = 0.0) -> bool:
        """True when the map moves nothing (within ``tol``)."""
        return bool(
            np.all(np.abs(self.scale - 1.0) <= tol)
            and np.all(np.abs(self.offset) <= tol)
        )

    # ------------------------------------------------------------------
    def apply_point(self, point: Sequence[float]) -> np.ndarray:
        """Map one point."""
        p = np.asarray(point, dtype=np.float64)
        return self.scale * p + self.offset

    def apply_rect(self, rect: Rect) -> Rect:
        """Map a rectangle; negative scales flip the affected interval."""
        a = self.scale * rect.lows + self.offset
        b = self.scale * rect.highs + self.offset
        return Rect(np.minimum(a, b), np.maximum(a, b))

    def compose(self, inner: "AffineMap") -> "AffineMap":
        """The map ``x -> self(inner(x))``."""
        if inner.dim != self.dim:
            raise ValueError(f"dimension mismatch: {inner.dim} vs {self.dim}")
        return AffineMap(
            self.scale * inner.scale, self.scale * inner.offset + self.offset
        )

    def inverse(self) -> "AffineMap":
        """The inverse map; requires every scale to be nonzero."""
        if np.any(self.scale == 0.0):
            raise ValueError("affine map with a zero scale is not invertible")
        inv = 1.0 / self.scale
        return AffineMap(inv, -self.offset * inv)

    def __repr__(self) -> str:
        return f"AffineMap(scale={self.scale.tolist()}, offset={self.offset.tolist()})"


#: Signature of a rectangle-intersection predicate, so the polar space can
#: plug in wrap-aware tests without the view knowing about coordinates.
IntersectsFn = Callable[[Rect, Rect], bool]


class TransformedIndexView:
    """Read-only view of ``T(I)`` for a tree ``I`` and affine map ``T``.

    Every node is mapped through ``T`` *after* it is read from the store, so
    the view performs exactly the same node/page accesses as the plain tree
    would — the property the paper checks in Figures 8 and 9.
    """

    def __init__(
        self,
        tree: RTreeBase,
        mapping: Optional[AffineMap] = None,
        circular_mask: Optional[np.ndarray] = None,
        kernel: Optional[FrozenRTree] = None,
    ) -> None:
        self.tree = tree
        self.mapping = mapping if mapping is not None else AffineMap.identity(tree.dim)
        if self.mapping.dim != tree.dim:
            raise ValueError(
                f"map dim {self.mapping.dim} does not match tree dim {tree.dim}"
            )
        self.circular_mask = circular_mask
        self._kernel: Optional[tuple[int, FrozenRTree]] = (
            None
            if kernel is None
            else (getattr(tree, "_mutations", 0), kernel)
        )

    @property
    def kernel(self) -> Optional[FrozenRTree]:
        """The tree's frozen columnar image, or ``None`` on reference views.

        State is view-local and versioned against the tree's mutation
        counter, so a long-lived view never serves a stale pre-mutation
        snapshot: while the tree is unmutated the instance given at
        construction (or assignment) is served; after a mutation the view
        falls back to the recursive reference paths until
        :func:`~repro.rtree.kernel.cached_kernel` has refrozen (the O(N)
        rebuild is deferred, so interleaved mutate/query workloads stay on
        the O(nodes touched) reference path), then upgrades to the fresh
        image.  Assigning ``None`` pins this view to the reference paths;
        assigning an image affects only this view.
        """
        if self._kernel is None:
            return None
        mutations, instance = self._kernel
        if mutations == getattr(self.tree, "_mutations", 0):
            return instance
        fresh = cached_kernel(self.tree)
        if fresh is not None:
            self._kernel = (getattr(self.tree, "_mutations", 0), fresh)
        return fresh

    @kernel.setter
    def kernel(self, value: Optional[FrozenRTree]) -> None:
        self._kernel = (
            None
            if value is None
            else (getattr(self.tree, "_mutations", 0), value)
        )

    # ------------------------------------------------------------------
    def _intersects(self, a: Rect, b: Rect) -> bool:
        if self.circular_mask is None:
            return a.intersects(b)
        return intersects_circular(a, b, self.circular_mask)

    def transformed_node_arrays(
        self, node_id: int
    ) -> tuple[Node, np.ndarray, np.ndarray]:
        """Read a node and map its stacked MBRs through ``T`` in one step.

        Returns the *untransformed* node plus the transformed
        ``(fanout, dim)`` lows/highs stacks — the whole node's image under
        Algorithm 1 as two numpy operations, which is what the batch
        traversal paths consume.
        """
        node = self.tree.store.read(node_id)
        if not node.entries:
            empty = np.empty((0, self.tree.dim))
            return node, empty, empty
        lows, highs = node.stacked_rects()
        a = lows * self.mapping.scale + self.mapping.offset
        b = highs * self.mapping.scale + self.mapping.offset
        return node, np.minimum(a, b), np.maximum(a, b)

    def transformed_node(self, node_id: int) -> Node:
        """Read a node and return its image under ``T`` (Algorithm 1 step)."""
        node, t_lows, t_highs = self.transformed_node_arrays(node_id)
        return Node(
            node_id=node.node_id,
            level=node.level,
            entries=[
                Entry(Rect(t_lows[i], t_highs[i]), e.child)
                for i, e in enumerate(node.entries)
            ],
        )

    # ------------------------------------------------------------------
    def search(self, query: Rect) -> list[Entry]:
        """Range search over the transformed index (Algorithm 2, step 2).

        Returns transformed leaf entries (the entry rectangles are the
        transformed points) whose image intersects ``query``.  Each node's
        entries are mapped and tested in one vectorised step — the Python
        equivalent of the paper's "apply T to every entry of N".
        """
        out: list[Entry] = []
        self._search(self.tree.root_id, query, out)
        return out

    def _search(self, node_id: int, query: Rect, out: list[Entry]) -> None:
        node = self.tree.store.read(node_id)
        if len(node.entries) == 0:
            return
        lows, highs = node.stacked_rects()
        a = lows * self.mapping.scale + self.mapping.offset
        b = highs * self.mapping.scale + self.mapping.offset
        t_lows = np.minimum(a, b)
        t_highs = np.maximum(a, b)
        from repro.rtree.geometry import intersects_circular_many

        if self.circular_mask is None:
            hits = Rect.intersects_many(t_lows, t_highs, query.lows, query.highs)
        else:
            hits = intersects_circular_many(
                t_lows, t_highs, query.lows, query.highs, self.circular_mask
            )
        if node.is_leaf:
            for i in np.nonzero(hits)[0]:
                out.append(
                    Entry(Rect(t_lows[i], t_highs[i]), node.entries[i].child)
                )
            return
        for i in np.nonzero(hits)[0]:
            self._search(node.entries[i].child, query, out)

    def search_ids(
        self,
        query: Rect,
        fstats: Optional[FrontierStats] = None,
        budget=None,
    ) -> np.ndarray:
        """Matching record ids for a range query (the hot-path result form).

        Runs through the columnar kernel's level-at-a-time frontier when
        one is attached (bumping the store's logical ``node_reads`` by the
        nodes expanded, so Figure 8/9-style access counting still works);
        otherwise falls back to the recursive reference :meth:`search`
        (where a ``budget``'s deadline is checked once before the
        traversal — the reference path has no level loop to hook).
        """
        if self.kernel is not None:
            return self.kernel.range_ids(
                query.lows, query.highs,
                self.mapping.scale, self.mapping.offset,
                circular_mask=self.circular_mask,
                fstats=fstats, io=self.tree.store.stats, budget=budget,
            )
        if budget is not None:
            budget.check(where="reference range search")
        hits = self.search(query)
        return np.fromiter((e.child for e in hits), dtype=np.int64, count=len(hits))

    def search_many(
        self,
        qlows: np.ndarray,
        qhighs: np.ndarray,
        fstats: Optional[FrontierStats] = None,
        budget=None,
        executor=None,
    ) -> list[np.ndarray]:
        """Multi-query range search sharing a single tree descent.

        Where :meth:`search` walks the tree once per query, this walks it
        once per *batch*.  With a columnar kernel attached the batch runs
        through the fused ``(node, query)`` pair frontier
        (:meth:`repro.rtree.kernel.FrozenRTree.range_ids_many`); without
        one, the reference implementation reads every node at most once
        and tests its entries against all still-active query rectangles in
        one pairwise broadcast.  Either way the per-query candidate sets
        are identical to ``m`` separate :meth:`search` calls.

        Args:
            qlows, qhighs: stacked ``(m, dim)`` query-rectangle bounds.
            fstats: optional frontier counters (kernel path only).
            executor: optional :class:`repro.rtree.parallel.KernelExecutor`
                that shards the batch across worker threads (kernel path
                only; results are identical to the serial traversal).

        Returns:
            one array/list of matching record ids per query, in query order.
        """
        if self.kernel is not None:
            if executor is not None:
                return executor.range_ids_many(
                    self.kernel,
                    np.asarray(qlows, dtype=np.float64),
                    np.asarray(qhighs, dtype=np.float64),
                    self.mapping.scale, self.mapping.offset,
                    circular_mask=self.circular_mask,
                    fstats=fstats, io=self.tree.store.stats, budget=budget,
                )
            return self.kernel.range_ids_many(
                np.asarray(qlows, dtype=np.float64),
                np.asarray(qhighs, dtype=np.float64),
                self.mapping.scale, self.mapping.offset,
                circular_mask=self.circular_mask,
                fstats=fstats, io=self.tree.store.stats, budget=budget,
            )
        from repro.rtree.geometry import intersects_circular_pairwise

        m = qlows.shape[0]
        out: list[list[int]] = [[] for _ in range(m)]
        if m == 0:
            return out
        stack: list[tuple[int, np.ndarray]] = [(self.tree.root_id, np.arange(m))]
        while stack:
            if budget is not None:
                budget.check(len(stack), where="reference batch search")
            node_id, active = stack.pop()
            node, t_lows, t_highs = self.transformed_node_arrays(node_id)
            if not node.entries:
                continue
            hits = intersects_circular_pairwise(
                t_lows, t_highs, qlows[active], qhighs[active], self.circular_mask
            )
            if node.is_leaf:
                for fi, qi in zip(*np.nonzero(hits)):
                    out[int(active[qi])].append(node.entries[fi].child)
            else:
                for fi in range(len(node.entries)):
                    sub = active[np.nonzero(hits[fi])[0]]
                    if sub.size:
                        stack.append((node.entries[fi].child, sub))
        return out

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Entry]:
        """All transformed leaf entries."""
        for e in self.tree:
            yield Entry(self.mapping.apply_rect(e.rect), e.child)

    def root_mbr(self) -> Optional[Rect]:
        """Transformed MBR of the whole index."""
        mbr = self.tree.root_mbr()
        return None if mbr is None else self.mapping.apply_rect(mbr)

    @property
    def root_id(self) -> int:
        return self.tree.root_id

    @property
    def store(self) -> NodeStore:
        return self.tree.store
