"""Sequential-scan baselines (the competitor in Figures 10-12)."""

from repro.scan.seqscan import scan_knn, scan_range, scan_range_many

__all__ = ["scan_knn", "scan_range", "scan_range_many"]
