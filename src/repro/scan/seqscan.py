"""Sequential scanning with the paper's tuning.

The paper is careful to race its index against a *good* sequential scan
(Section 5): the scan runs over the relation stored **in the frequency
domain**, so that the large leading coefficients let the distance
computation abandon most sequences after a few terms, and each distance
computation stops as soon as it exceeds ``eps``.  These functions implement
exactly that (plus an untuned time-domain variant for calibration).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.similarity import euclidean_early_abandon
from repro.core.transforms import Transformation
from repro.storage.stats import IOStats

ArrayLike = Union[Sequence[float], np.ndarray]


def scan_range(
    ground_spectra: np.ndarray,
    query_spectrum: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    early_abandon: bool = True,
    block: int = 4,
    stats: Optional[IOStats] = None,
) -> list[tuple[int, float]]:
    """Range query by scanning the frequency-domain relation.

    Args:
        ground_spectra: ``(m, n)`` complex matrix of record spectra.
        query_spectrum: full spectrum of the query.
        eps: similarity threshold.
        transformation: applied to each record during the comparison
            (the data side, matching Algorithm 2's semantics).
        early_abandon: stop each distance computation once it exceeds
            ``eps`` (the paper's optimisation; ``False`` gives the naive
            scan).
        block: coefficients accumulated per early-abandon step.
        stats: counter bundle.

    Returns:
        ``(record id, exact distance)`` pairs sorted by distance.
    """
    out: list[tuple[int, float]] = []
    m = ground_spectra.shape[0]
    for i in range(m):
        spec = ground_spectra[i]
        if transformation is not None:
            spec = transformation.apply_spectrum(spec)
        if early_abandon:
            d = euclidean_early_abandon(spec, query_spectrum, eps, block=block)
            if d is not None:
                out.append((i, d))
        else:
            d = float(np.linalg.norm(spec - query_spectrum))
            if d <= eps:
                out.append((i, d))
    if stats is not None:
        stats.distance_computations += m
    out.sort(key=lambda t: (t[1], t[0]))
    return out


def scan_range_many(
    ground_spectra: np.ndarray,
    query_spectra: np.ndarray,
    eps: float,
    transformation: Optional[Transformation] = None,
    block: int = 4,
    stats: Optional[IOStats] = None,
) -> list[list[tuple[int, float]]]:
    """Batched :func:`scan_range` over an ``(m, n)`` matrix of query spectra.

    The transformation is hoisted over the whole relation once (O(records)
    applications instead of O(records × queries)), and each query is then
    verified against all records with matrix-level early abandoning — the
    same block-accumulation rule as the scalar scan, evaluated as a few
    numpy calls per query.  Answer sets are identical to per-query
    :func:`scan_range` calls.
    """
    from repro.core.similarity import batch_euclidean_within

    tspec = (
        ground_spectra
        if transformation is None
        else transformation.apply_spectrum(ground_spectra)
    )
    records = ground_spectra.shape[0]
    out: list[list[tuple[int, float]]] = []
    for q_spec in np.asarray(query_spectra, dtype=np.complex128):
        kept, dists, _ = batch_euclidean_within(tspec, q_spec, eps, block=block)
        matches = [(int(i), float(d)) for i, d in zip(kept, dists)]
        matches.sort(key=lambda t: (t[1], t[0]))
        out.append(matches)
    if stats is not None:
        stats.distance_computations += records * len(out)
    return out


def scan_knn(
    ground_spectra: np.ndarray,
    query_spectrum: np.ndarray,
    k: int,
    transformation: Optional[Transformation] = None,
    stats: Optional[IOStats] = None,
) -> list[tuple[int, float]]:
    """Exact k-NN by scanning, with a shrinking abandon threshold.

    The current ``k``-th best distance serves as the early-abandon bound —
    the scan analogue of branch-and-bound pruning.

    Edge cases match the index path's kernel contract: ``k == 0`` and an
    empty relation return ``[]``; ``k > m`` returns every record.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return []
    best: list[tuple[float, int]] = []  # max-heap by negated distance
    m = ground_spectra.shape[0]
    for i in range(m):
        spec = ground_spectra[i]
        if transformation is not None:
            spec = transformation.apply_spectrum(spec)
        if len(best) < k:
            d = float(np.linalg.norm(spec - query_spectrum))
            heapq.heappush(best, (-d, i))
            continue
        bound = -best[0][0]
        d_opt = euclidean_early_abandon(spec, query_spectrum, bound)
        if d_opt is not None and d_opt < bound:
            heapq.heapreplace(best, (-d_opt, i))
    if stats is not None:
        stats.distance_computations += m
    return sorted(((i, -nd) for nd, i in best), key=lambda t: (t[1], t[0]))
