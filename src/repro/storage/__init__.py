"""Paged storage engine with I/O accounting.

The paper's experiments run on Beckmann's disk-based R*-tree and report both
wall-clock time and the number of disk accesses (Section 5 notes that the
transformed-index traversal performs *the same* number of disk accesses as
the plain traversal).  To make those claims checkable on a laptop, this
package provides a small but real storage engine:

* :class:`~repro.storage.pager.PageFile` — a file (or memory buffer) of
  fixed-size pages with explicit read/write page operations,
* :class:`~repro.storage.buffer.BufferPool` — an LRU buffer pool on top of a
  page file; a pool miss is a counted "disk access",
* :class:`~repro.storage.stats.IOStats` — counters shared by every layer,
* :mod:`~repro.storage.serialization` — fixed-layout binary encoding of
  R-tree nodes so they actually fit in pages,
* :mod:`~repro.storage.manifest` — checksummed save manifests and the
  typed persistence error hierarchy,
* :mod:`~repro.storage.budget` — per-query resource budgets,
* :mod:`~repro.storage.faults` — injectable failpoints for crash-safety
  tests.

The R-tree (:mod:`repro.rtree`) talks to this layer through node stores, so
the same tree code runs fully in memory or against the paged backend.
"""

from repro.storage.budget import QueryBudgetExceeded, ResourceBudget
from repro.storage.buffer import BufferPool
from repro.storage.manifest import (
    CorruptIndexError,
    PersistError,
    SchemaVersionError,
)
from repro.storage.pager import PAGE_SIZE, PageFile
from repro.storage.stats import IOStats

__all__ = [
    "BufferPool",
    "CorruptIndexError",
    "IOStats",
    "PageFile",
    "PAGE_SIZE",
    "PersistError",
    "QueryBudgetExceeded",
    "ResourceBudget",
    "SchemaVersionError",
]
