"""Query governance: per-query resource budgets.

A :class:`ResourceBudget` bounds what one query may consume:

* ``deadline_ms``     — wall-clock limit, checked at every frontier
  expansion / verify round;
* ``max_candidates``  — cap on candidate rows fetched for verification;
* ``max_frontier``    — cap on the traversal frontier (pair rows, or heap
  items across a k-NN batch).

The budget travels with the query — ``QuerySpec.budget`` → the operator
``ExecContext`` → the kernel's frontier loops — so enforcement happens
inside the tight loops, not around them.  Range/join paths raise
:class:`QueryBudgetExceeded`; k-NN paths instead *truncate*: they stop
expanding, return the best results found so far, and set
``budget.truncated`` (surfaced by ``EXPLAIN ANALYZE``).

A budget with every limit ``None`` never fires — queries under it are
bit-for-bit identical to unbudgeted ones (the parity tests pin this).

Under the parallel executor one budget is shared by every worker of a
sharded batch: the deadline is global wall-clock (each worker checks it
inside its own frontier loop), the candidate counter is a single locked
total across workers, and ``max_frontier`` bounds each worker's *own*
frontier (a worker never materialises the union).  Counter mutation and
lazy deadline arming are serialised on a per-budget lock; the lock is
not held while *reading* the clock, which is safe because the deadline
value is write-once per :meth:`start`.
"""

from __future__ import annotations

import threading  # repro: allow(REP007): shared budget counters are mutated from concurrent kernel workers
import time
from typing import Optional


class QueryBudgetExceeded(RuntimeError):
    """A query ran past its :class:`ResourceBudget`.

    Attributes:
        kind: which limit fired (``"deadline"``, ``"candidates"``,
            ``"frontier"``).
    """

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"query budget exceeded ({kind}): {detail}")
        self.kind = kind


class ResourceBudget:
    """Limits for one query execution (see module docstring).

    Instances are reusable: :meth:`start` re-arms the deadline and clears
    the consumed counters, and is called by ``PhysicalPlan.execute`` so a
    compiled plan can be run repeatedly.
    """

    __slots__ = ("deadline_ms", "max_candidates", "max_frontier",
                 "truncated", "candidates", "_deadline", "_lock")

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_candidates: Optional[int] = None,
        max_frontier: Optional[int] = None,
    ) -> None:
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        if max_candidates is not None and max_candidates < 0:
            raise ValueError(f"max_candidates must be >= 0, got {max_candidates}")
        if max_frontier is not None and max_frontier <= 0:
            raise ValueError(f"max_frontier must be positive, got {max_frontier}")
        self.deadline_ms = deadline_ms
        self.max_candidates = max_candidates
        self.max_frontier = max_frontier
        self.truncated = False
        self.candidates = 0
        self._deadline: Optional[float] = None
        self._lock = threading.Lock()

    @property
    def unlimited(self) -> bool:
        """True when no limit is set — every check is a no-op."""
        return (
            self.deadline_ms is None
            and self.max_candidates is None
            and self.max_frontier is None
        )

    def start(self) -> "ResourceBudget":
        """(Re-)arm the deadline clock and clear consumed counters."""
        with self._lock:
            self.truncated = False
            self.candidates = 0
            self._deadline = (
                time.perf_counter() + self.deadline_ms / 1000.0
                if self.deadline_ms is not None
                else None
            )
        return self

    # ------------------------------------------------------------------
    # non-raising probes (k-NN truncation path)
    # ------------------------------------------------------------------
    def exceeded(self, frontier: int = 0) -> Optional[str]:
        """The limit that has fired, or ``None``; never raises."""
        if self._deadline is None and self.deadline_ms is not None:
            # Checked before start(): arm lazily.  Double-checked under
            # the lock so a racing worker cannot re-arm (and a plain
            # start() here would also wrongly zero a shared candidate
            # counter another worker already charged).
            with self._lock:
                if self._deadline is None:
                    self._deadline = time.perf_counter() + self.deadline_ms / 1000.0
        if self._deadline is not None and time.perf_counter() > self._deadline:
            return "deadline"
        if self.max_frontier is not None and frontier > self.max_frontier:
            return "frontier"
        if self.max_candidates is not None and self.candidates > self.max_candidates:
            return "candidates"
        return None

    def consume(self, n: int) -> None:
        """Record ``n`` candidate rows without raising (k-NN accounting)."""
        with self._lock:
            self.candidates += n

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left on the deadline; ``None`` when none is set.

        Arms the deadline lazily under the lock (same double-checked rule
        as :meth:`exceeded`), so the first caller — a kernel worker or
        the executor's watchdog — starts the clock.  May return a
        negative value once the deadline has passed; never raises.  The
        parallel executor derives its per-block watchdog timeout from
        this, which is what lets a wedged worker be abandoned *at* the
        budget deadline instead of hanging the query forever.
        """
        if self.deadline_ms is None:
            return None
        deadline = self._deadline
        if deadline is None:
            with self._lock:
                if self._deadline is None:
                    self._deadline = time.perf_counter() + self.deadline_ms / 1000.0
                deadline = self._deadline
        return (deadline - time.perf_counter()) * 1000.0

    # ------------------------------------------------------------------
    # raising checks (range / join / subseq paths)
    # ------------------------------------------------------------------
    def check(self, frontier: int = 0, where: str = "") -> None:
        """Raise :class:`QueryBudgetExceeded` if any limit has fired."""
        kind = self.exceeded(frontier)
        if kind is None:
            return
        if kind == "deadline":
            detail = f"deadline of {self.deadline_ms} ms passed"
        elif kind == "frontier":
            detail = f"frontier of {frontier} rows exceeds {self.max_frontier}"
        else:
            detail = (
                f"{self.candidates} candidate rows exceed {self.max_candidates}"
            )
        if where:
            detail += f" at {where}"
        raise QueryBudgetExceeded(kind, detail)

    def charge_candidates(self, n: int, where: str = "") -> None:
        """Consume ``n`` candidates and raise if the cap is now exceeded."""
        with self._lock:
            self.candidates += n
            total = self.candidates
        if self.max_candidates is not None and total > self.max_candidates:
            raise QueryBudgetExceeded(
                "candidates",
                f"{total} candidate rows exceed {self.max_candidates}"
                + (f" at {where}" if where else ""),
            )

    def as_dict(self) -> dict[str, object]:
        return {
            "deadline_ms": self.deadline_ms,
            "max_candidates": self.max_candidates,
            "max_frontier": self.max_frontier,
            "truncated": self.truncated,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceBudget(deadline_ms={self.deadline_ms}, "
            f"max_candidates={self.max_candidates}, "
            f"max_frontier={self.max_frontier})"
        )
