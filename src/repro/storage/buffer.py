"""LRU buffer pool over a :class:`~repro.storage.pager.PageFile`.

A read that hits the pool costs nothing physical (``buffer_hits`` is
incremented); a miss triggers a physical page read and possibly the eviction
of a dirty page (a physical write).  This is the layer that turns the
reproduction's index traversals into countable disk accesses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.storage.pager import PageFile
from repro.storage.stats import IOStats


class BufferPool:
    """Write-back LRU cache of pages.

    Args:
        pagefile: the backing page file.
        capacity: maximum number of resident pages; ``0`` disables caching
            entirely (every access is physical), which models a cold run.
        stats: counter bundle; defaults to the page file's own.
    """

    def __init__(
        self,
        pagefile: PageFile,
        capacity: int = 128,
        stats: Optional[IOStats] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.pagefile = pagefile
        self.capacity = capacity
        self.stats = stats if stats is not None else pagefile.stats
        self._frames: "OrderedDict[int, bytearray]" = OrderedDict()
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a fresh page in the backing file."""
        return self.pagefile.allocate()

    def free(self, page_id: int) -> None:
        """Drop a page from the pool and the backing file's free list."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)
        self.pagefile.free(page_id)

    def read(self, page_id: int) -> bytes:
        """Read a page through the cache."""
        if page_id in self._frames:
            self.stats.buffer_hits += 1
            self._frames.move_to_end(page_id)
            return bytes(self._frames[page_id])
        data = self.pagefile.read_page(page_id)
        self._admit(page_id, bytearray(data), dirty=False)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write a page through the cache (write-back)."""
        if len(data) > self.pagefile.page_size:
            # Let the page file raise its precise error immediately rather
            # than at some far-away eviction time.
            self.pagefile.write_page(page_id, data)
            return
        payload = bytearray(bytes(data).ljust(self.pagefile.page_size, b"\x00"))
        if self.capacity == 0:
            self.pagefile.write_page(page_id, payload)
            return
        if page_id in self._frames:
            self._frames[page_id][:] = payload
            self._frames.move_to_end(page_id)
            self._dirty.add(page_id)
        else:
            self._admit(page_id, payload, dirty=True)

    def flush(self, sync: bool = False) -> None:
        """Write every dirty page back to the page file.

        With ``sync=True`` the page file is also fsynced, so the pages are
        durable — the persistence layer uses this before committing a
        manifest.
        """
        for page_id in sorted(self._dirty):
            self.pagefile.write_page(page_id, bytes(self._frames[page_id]))
        self._dirty.clear()
        if sync:
            self.pagefile.flush()

    def clear(self) -> None:
        """Flush then empty the pool (simulates restarting with a cold cache)."""
        self.flush()
        self._frames.clear()

    @property
    def resident_pages(self) -> int:
        """Number of pages currently cached."""
        return len(self._frames)

    # ------------------------------------------------------------------
    def _admit(self, page_id: int, payload: bytearray, dirty: bool) -> None:
        if self.capacity == 0:
            if dirty:
                self.pagefile.write_page(page_id, bytes(payload))
            return
        while len(self._frames) >= self.capacity:
            victim, victim_payload = self._frames.popitem(last=False)
            if victim in self._dirty:
                self.pagefile.write_page(victim, bytes(victim_payload))
                self._dirty.discard(victim)
        self._frames[page_id] = payload
        if dirty:
            self._dirty.add(page_id)
