"""Injectable failpoints for crash-safety and chaos testing.

A *failpoint* is a named site in the storage or compute code
(``"pager.write_page"``, ``"persist.write:index_columnar.npz"``,
``"kernel.worker:range"``) that tests can arm with :func:`fail_at` to
simulate the disasters a real deployment meets: a full disk, a process
killed mid-write, a torn page, a bit flipped at rest — and, since the
execution supervisor landed, a kernel worker that errors, wedges, runs
slow, or exhausts memory mid-batch.  Production code never arms anything
— when the registry is empty every hook is a single ``if not _REGISTRY``
check.

Storage modes (what happens on the *nth* hit of the armed site):

* ``"error"``     — raise ``OSError(EIO)`` before any bytes are written.
* ``"enospc"``    — raise ``OSError(ENOSPC)`` before any bytes are written.
* ``"crash"``     — raise :class:`SimulatedCrash` before any bytes are
  written (the process "died" just before this write).
* ``"torn"``      — write only the first half of the payload, then raise
  :class:`SimulatedCrash` (died mid-write).
* ``"truncate"``  — silently write only the first half (lying firmware:
  the write "succeeds" but the tail is gone).
* ``"bitflip"``   — silently write the payload with one bit flipped
  (corruption at rest).

Compute modes (for the ``kernel.worker:*`` sites the parallel executor's
block tasks pass through — see :mod:`repro.rtree.parallel`):

* ``"error"``  — raise ``OSError(EIO)`` in the worker before the kernel
  call (``"error"`` is shared between the two site families).
* ``"oom"``    — raise ``MemoryError`` in the worker (a block whose
  intermediate arrays did not fit).
* ``"slow"``   — sleep ``delay_ms`` (default 25 ms), then compute
  normally (a straggler; results must still be exact).
* ``"hang"``   — sleep ``delay_ms`` (default 30 000 ms) before
  computing: a wedged worker the supervisor's watchdog must catch.
  The sleep is interruptible — :func:`clear` wakes every hung worker so
  fault tests drain their threads promptly.

By default a failpoint fires once; ``sticky=True`` makes it fire on
every hit from the *nth* on, which is how the chaos harness exercises
the supervisor's retry-then-circuit-breaker path (a one-shot fault is
healed by a single retry and never reaches the breaker).

The registry and every per-failpoint counter are guarded by a module
lock: concurrent kernel workers hitting the same site must agree on
which hit is the *nth* — unsynchronised counters could double-fire or
skip it.  The lock is never held while sleeping or raising.

The registry is honoured whenever it is non-empty; setting
``REPRO_FAILPOINTS=1`` in the environment additionally marks a process as
a fault-injection run (CI uses it to select the crash-safety and chaos
jobs), and :func:`active` exposes it for tests that want to assert the
harness is on.
"""

from __future__ import annotations

import errno
import os
import threading  # repro: allow(REP007): the failpoint registry is hit by concurrent kernel workers and must count nth-hits under a lock
from dataclasses import dataclass, field
from typing import Optional

#: Modes valid at storage (write/replace/flush) sites.
MODES = ("error", "enospc", "crash", "torn", "truncate", "bitflip")

#: Modes valid at compute (``kernel.worker:*``) sites.
COMPUTE_MODES = ("error", "oom", "slow", "hang")

#: Every mode :func:`fail_at` accepts.
ALL_MODES = MODES + tuple(m for m in COMPUTE_MODES if m not in MODES)

#: Default sleep for ``"slow"`` / ``"hang"`` when ``delay_ms`` is unset.
DEFAULT_SLOW_MS = 25.0
DEFAULT_HANG_MS = 30_000.0


class SimulatedCrash(Exception):
    """The simulated process death injected by ``"crash"``/``"torn"`` modes.

    Tests catch this where a real deployment would have lost the process;
    everything the code wrote before the crash point is still on disk.
    """


@dataclass
class _Failpoint:
    name: str
    nth: int  # fire on the nth hit (1-based)
    mode: str
    hits: int = 0
    fired: bool = False
    #: keep firing on every hit from the nth on (chaos harness: a fault
    #: that survives the supervisor's single retry).
    sticky: bool = False
    #: byte offset for bitflip (None = middle of the payload)
    flip_at: Optional[int] = None
    #: sleep length for ``"slow"``/``"hang"`` (None = mode default)
    delay_ms: Optional[float] = None
    #: set by :func:`clear` so hung workers wake up immediately
    release: threading.Event = field(default_factory=threading.Event)

    def due(self) -> bool:
        """Whether this hit fires.  Caller must hold ``_LOCK``."""
        self.hits += 1
        if self.sticky:
            return self.hits >= self.nth
        if self.fired or self.hits != self.nth:
            return False
        self.fired = True
        return True

    def sleep_ms(self) -> float:
        if self.delay_ms is not None:
            return self.delay_ms
        return DEFAULT_HANG_MS if self.mode == "hang" else DEFAULT_SLOW_MS


_REGISTRY: dict[str, _Failpoint] = {}
#: Guards ``_REGISTRY`` and every ``_Failpoint`` hit counter.  Never held
#: while sleeping or raising.
_LOCK = threading.Lock()


def env_enabled() -> bool:
    """Whether ``REPRO_FAILPOINTS=1`` marks this process as a fault run."""
    return os.environ.get("REPRO_FAILPOINTS", "") == "1"


def fail_at(
    name: str,
    nth: int = 1,
    mode: str = "error",
    flip_at: Optional[int] = None,
    delay_ms: Optional[float] = None,
    sticky: bool = False,
) -> None:
    """Arm failpoint ``name`` to fire on its ``nth`` hit.

    One-shot by default; ``sticky=True`` keeps it firing on every hit
    from the ``nth`` on.  ``delay_ms`` tunes the ``"slow"``/``"hang"``
    sleep length.
    """
    if mode not in ALL_MODES:
        raise ValueError(
            f"unknown failpoint mode {mode!r}; expected one of {ALL_MODES}"
        )
    if nth < 1:
        raise ValueError(f"nth must be >= 1, got {nth}")
    if delay_ms is not None and delay_ms < 0:
        raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
    fp = _Failpoint(
        name=name, nth=nth, mode=mode, flip_at=flip_at,
        delay_ms=delay_ms, sticky=sticky,
    )
    with _LOCK:
        _REGISTRY[name] = fp


def clear() -> None:
    """Disarm every failpoint and wake every worker hung on one."""
    with _LOCK:
        points = list(_REGISTRY.values())
        _REGISTRY.clear()
    for fp in points:
        fp.release.set()


def active() -> bool:
    """Whether any failpoint is currently armed."""
    return bool(_REGISTRY)


class armed:
    """Context manager: arm failpoints inside, guaranteed :func:`clear` after.

    ::

        with faults.armed(("persist.write:meta.json", {"mode": "torn"})):
            ...
    """

    def __init__(self, *points) -> None:
        self._points = points

    def __enter__(self) -> "armed":
        for name, kwargs in self._points:
            fail_at(name, **kwargs)
        return self

    def __exit__(self, *exc) -> None:
        clear()


def _corrupt(data: bytes, fp: _Failpoint) -> bytes:
    if fp.mode in ("torn", "truncate"):
        return data[: len(data) // 2]
    # bitflip
    buf = bytearray(data)
    if not buf:
        return data
    at = fp.flip_at if fp.flip_at is not None else len(buf) // 2
    buf[at % len(buf)] ^= 0x01
    return bytes(buf)


def _due(name: str) -> Optional[_Failpoint]:
    """The armed failpoint for ``name`` if this hit fires, else ``None``."""
    with _LOCK:
        fp = _REGISTRY.get(name)
        if fp is None or not fp.due():
            return None
        return fp


def intercept(name: str, data: bytes) -> tuple[bytes, Optional[BaseException]]:
    """Filter a write through failpoint ``name``.

    Returns ``(data_to_write, exception_to_raise_after_write)``.  Modes
    that fail *before* the write raise from here; ``"torn"`` hands back a
    :class:`SimulatedCrash` for the caller to raise after flushing the
    half-payload; the silent-corruption modes just mangle the bytes.
    """
    if not _REGISTRY:
        return data, None
    fp = _due(name)
    if fp is None:
        return data, None
    if fp.mode == "error":
        raise OSError(errno.EIO, f"injected I/O error at {name}")
    if fp.mode == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {name}")
    if fp.mode == "crash":
        raise SimulatedCrash(f"injected crash before {name}")
    if fp.mode == "torn":
        return _corrupt(data, fp), SimulatedCrash(f"injected torn write at {name}")
    return _corrupt(data, fp), None


def trigger(name: str) -> None:
    """Hit a write-free storage failpoint (flush, replace, fsync sites).

    Only the raising modes make sense here; the data-mangling modes are
    ignored because there is no payload to mangle.
    """
    if not _REGISTRY:
        return
    fp = _due(name)
    if fp is None:
        return
    if fp.mode == "error":
        raise OSError(errno.EIO, f"injected I/O error at {name}")
    if fp.mode == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {name}")
    if fp.mode in ("crash", "torn"):
        raise SimulatedCrash(f"injected crash at {name}")


def trigger_compute(name: str) -> None:
    """Hit a compute failpoint (the ``kernel.worker:*`` sites).

    Called by the parallel executor at the top of every sharded block
    task — the serial kernel path never passes through here, which is
    what keeps ``workers == 1`` byte-for-byte the untouched serial path.
    ``"slow"``/``"hang"`` sleep on an interruptible event (woken by
    :func:`clear`), then return so the block computes its exact result.
    """
    if not _REGISTRY:
        return
    fp = _due(name)
    if fp is None:
        return
    if fp.mode == "error":
        raise OSError(errno.EIO, f"injected worker error at {name}")
    if fp.mode == "oom":
        raise MemoryError(f"injected worker OOM at {name}")
    if fp.mode in ("slow", "hang"):
        fp.release.wait(timeout=fp.sleep_ms() / 1000.0)
