"""Injectable failpoints for crash-safety testing.

A *failpoint* is a named site in the storage code (``"pager.write_page"``,
``"persist.write:index_columnar.npz"``, ``"persist.replace:meta.json"``)
that tests can arm with :func:`fail_at` to simulate the disasters a real
deployment meets: a full disk, a process killed mid-write, a torn page, a
bit flipped at rest.  Production code never arms anything — when the
registry is empty every hook is a single ``if not _REGISTRY`` check.

Modes (what happens on the *nth* hit of the armed site):

* ``"error"``     — raise ``OSError(EIO)`` before any bytes are written.
* ``"enospc"``    — raise ``OSError(ENOSPC)`` before any bytes are written.
* ``"crash"``     — raise :class:`SimulatedCrash` before any bytes are
  written (the process "died" just before this write).
* ``"torn"``      — write only the first half of the payload, then raise
  :class:`SimulatedCrash` (died mid-write).
* ``"truncate"``  — silently write only the first half (lying firmware:
  the write "succeeds" but the tail is gone).
* ``"bitflip"``   — silently write the payload with one bit flipped
  (corruption at rest).

The registry is honoured whenever it is non-empty; setting
``REPRO_FAILPOINTS=1`` in the environment additionally marks a process as
a fault-injection run (CI uses it to select the crash-safety job), and
:func:`active` exposes it for tests that want to assert the harness is on.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass
from typing import Optional

MODES = ("error", "enospc", "crash", "torn", "truncate", "bitflip")


class SimulatedCrash(Exception):
    """The simulated process death injected by ``"crash"``/``"torn"`` modes.

    Tests catch this where a real deployment would have lost the process;
    everything the code wrote before the crash point is still on disk.
    """


@dataclass
class _Failpoint:
    name: str
    nth: int  # fire on the nth hit (1-based)
    mode: str
    hits: int = 0
    fired: bool = False
    #: byte offset for bitflip (None = middle of the payload)
    flip_at: Optional[int] = None

    def due(self) -> bool:
        self.hits += 1
        if self.fired or self.hits != self.nth:
            return False
        self.fired = True
        return True


_REGISTRY: dict[str, _Failpoint] = {}


def env_enabled() -> bool:
    """Whether ``REPRO_FAILPOINTS=1`` marks this process as a fault run."""
    return os.environ.get("REPRO_FAILPOINTS", "") == "1"


def fail_at(
    name: str, nth: int = 1, mode: str = "error", flip_at: Optional[int] = None
) -> None:
    """Arm failpoint ``name`` to fire once, on its ``nth`` hit."""
    if mode not in MODES:
        raise ValueError(f"unknown failpoint mode {mode!r}; expected one of {MODES}")
    if nth < 1:
        raise ValueError(f"nth must be >= 1, got {nth}")
    _REGISTRY[name] = _Failpoint(name=name, nth=nth, mode=mode, flip_at=flip_at)


def clear() -> None:
    """Disarm every failpoint."""
    _REGISTRY.clear()


def active() -> bool:
    """Whether any failpoint is currently armed."""
    return bool(_REGISTRY)


class armed:
    """Context manager: arm failpoints inside, guaranteed :func:`clear` after.

    ::

        with faults.armed(("persist.write:meta.json", {"mode": "torn"})):
            ...
    """

    def __init__(self, *points) -> None:
        self._points = points

    def __enter__(self) -> "armed":
        for name, kwargs in self._points:
            fail_at(name, **kwargs)
        return self

    def __exit__(self, *exc) -> None:
        clear()


def _corrupt(data: bytes, fp: _Failpoint) -> bytes:
    if fp.mode in ("torn", "truncate"):
        return data[: len(data) // 2]
    # bitflip
    buf = bytearray(data)
    if not buf:
        return data
    at = fp.flip_at if fp.flip_at is not None else len(buf) // 2
    buf[at % len(buf)] ^= 0x01
    return bytes(buf)


def intercept(name: str, data: bytes) -> tuple[bytes, Optional[BaseException]]:
    """Filter a write through failpoint ``name``.

    Returns ``(data_to_write, exception_to_raise_after_write)``.  Modes
    that fail *before* the write raise from here; ``"torn"`` hands back a
    :class:`SimulatedCrash` for the caller to raise after flushing the
    half-payload; the silent-corruption modes just mangle the bytes.
    """
    if not _REGISTRY:
        return data, None
    fp = _REGISTRY.get(name)
    if fp is None or not fp.due():
        return data, None
    if fp.mode == "error":
        raise OSError(errno.EIO, f"injected I/O error at {name}")
    if fp.mode == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {name}")
    if fp.mode == "crash":
        raise SimulatedCrash(f"injected crash before {name}")
    if fp.mode == "torn":
        return _corrupt(data, fp), SimulatedCrash(f"injected torn write at {name}")
    return _corrupt(data, fp), None


def trigger(name: str) -> None:
    """Hit a write-free failpoint (flush, replace, fsync sites).

    Only the raising modes make sense here; the data-mangling modes are
    ignored because there is no payload to mangle.
    """
    if not _REGISTRY:
        return
    fp = _REGISTRY.get(name)
    if fp is None or not fp.due():
        return
    if fp.mode == "error":
        raise OSError(errno.EIO, f"injected I/O error at {name}")
    if fp.mode == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {name}")
    if fp.mode in ("crash", "torn"):
        raise SimulatedCrash(f"injected crash at {name}")
