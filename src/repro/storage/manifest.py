"""Persistence manifest: checksums, schema version, typed errors.

A saved engine directory carries a ``MANIFEST.json`` describing every
artifact file — its byte size, CRC32 checksum and, for array containers,
the expected shape/dtype of each array.  The manifest is written *last*
via write-to-temp + ``os.replace``, so it is the commit point of a save:
a crash at any earlier moment leaves either the previous manifest (whose
checksums still match the previous files) or a detectable mismatch —
never a silently-wrong image.

Errors form a small typed hierarchy so callers can tell "this directory
is not a saved engine / the format is from the future" from "the bytes
rotted":

* :class:`PersistError` — base; also raised for malformed/missing
  artifacts and unknown class names.
* :class:`SchemaVersionError` — the manifest is from a newer schema.
* :class:`CorruptIndexError` — checksum or structural-invariant failure.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Optional

from repro.storage import faults

#: bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"


class PersistError(Exception):
    """A saved-engine directory could not be read (missing/malformed artifact)."""


class SchemaVersionError(PersistError):
    """The saved image uses a schema this build does not understand."""


class CorruptIndexError(PersistError):
    """Checksum mismatch or violated structural invariant in a saved image."""


def checksum(data: bytes) -> int:
    """CRC32 of a byte string (the manifest's checksum function)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def file_checksum(path: str, chunk: int = 1 << 20) -> int:
    """CRC32 of a file's contents, streamed."""
    crc = 0
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    return crc & 0xFFFFFFFF


def write_atomic(directory: str, name: str, data: bytes) -> None:
    """Write ``directory/name`` atomically: temp file, fsync, ``os.replace``.

    Both the write and the replace are failpoint sites
    (``persist.write:<name>``, ``persist.replace:<name>``) so the crash-
    safety suite can kill a save at any stage.
    """
    path = os.path.join(directory, name)
    tmp = path + ".tmp"
    data, after = faults.intercept(f"persist.write:{name}", data)
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    if after is not None:
        raise after
    faults.trigger(f"persist.replace:{name}")
    os.replace(tmp, path)


def fsync_dir(directory: str) -> None:
    """fsync a directory so renames inside it are durable."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - some filesystems refuse dir fsync
        pass
    finally:
        os.close(fd)


def file_entry(path: str, arrays: Optional[dict] = None) -> dict:
    """Manifest entry for an artifact already on disk."""
    entry = {
        "size": os.path.getsize(path),
        "crc32": file_checksum(path),
    }
    if arrays is not None:
        entry["arrays"] = arrays
    return entry


def bytes_entry(data: bytes, arrays: Optional[dict] = None) -> dict:
    """Manifest entry computed from the serialized bytes before writing."""
    entry = {"size": len(data), "crc32": checksum(data)}
    if arrays is not None:
        entry["arrays"] = arrays
    return entry


def array_specs(arrays: dict) -> dict:
    """Per-array ``{shape, dtype}`` specs for an npz-style mapping."""
    return {
        key: {"shape": list(arr.shape), "dtype": str(arr.dtype)}
        for key, arr in arrays.items()
    }


def write_manifest(directory: str, files: dict) -> None:
    """Commit a save: write the manifest atomically, then fsync the dir."""
    doc = {"schema": SCHEMA_VERSION, "files": files}
    write_atomic(directory, MANIFEST_NAME, json.dumps(doc, indent=1).encode())
    fsync_dir(directory)


def read_manifest(directory: str) -> Optional[dict]:
    """Load and sanity-check ``MANIFEST.json``; ``None`` when absent (legacy).

    Raises:
        SchemaVersionError: the manifest's schema is newer than this build.
        PersistError: the manifest exists but cannot be parsed.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as f:
            doc = json.load(f)
        schema = int(doc["schema"])
        files = doc["files"]
        if not isinstance(files, dict):
            raise TypeError("files must be a mapping")
    except SchemaVersionError:
        raise
    except Exception as exc:
        raise PersistError(
            f"unreadable manifest in {directory!r}: {exc}"
        ) from exc
    if schema > SCHEMA_VERSION:
        raise SchemaVersionError(
            f"saved image in {directory!r} uses schema {schema}, "
            f"this build understands <= {SCHEMA_VERSION}"
        )
    return doc


def verify_file(directory: str, name: str, entry: dict) -> None:
    """Check one artifact against its manifest entry.

    Raises:
        CorruptIndexError: the file is missing, resized or checksum-broken.
    """
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        raise CorruptIndexError(f"{name!r} missing from saved image {directory!r}")
    # Corruption inside MANIFEST.json itself can leave JSON that still
    # parses but whose entry lost or mangled a key; that is corruption,
    # not a programming error.
    try:
        want_size = int(entry["size"])
        want_crc = int(entry["crc32"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptIndexError(
            f"manifest entry for {name!r} in {directory!r} is malformed: {exc!r}"
        ) from exc
    size = os.path.getsize(path)
    if size != want_size:
        raise CorruptIndexError(
            f"{name!r} in {directory!r} is {size} bytes, manifest says "
            f"{want_size}"
        )
    crc = file_checksum(path)
    if crc != want_crc:
        raise CorruptIndexError(
            f"{name!r} in {directory!r} fails its checksum "
            f"(crc32 {crc:#010x} != manifest {want_crc:#010x})"
        )


def verify_arrays(name: str, arrays, specs: dict) -> None:
    """Check a loaded array mapping against the manifest's shape/dtype specs.

    Raises:
        CorruptIndexError: an array is missing or has drifted shape/dtype.
    """
    try:
        items = list(specs.items())
    except AttributeError as exc:
        raise CorruptIndexError(
            f"array specs for {name!r} are malformed: {exc!r}"
        ) from exc
    for key, spec in items:
        if key not in arrays:
            raise CorruptIndexError(f"array {key!r} missing from {name!r}")
        arr = arrays[key]
        try:
            want_shape = list(spec["shape"])
            want_dtype = str(spec["dtype"])
        except (KeyError, TypeError) as exc:
            raise CorruptIndexError(
                f"array spec for {key!r} in {name!r} is malformed: {exc!r}"
            ) from exc
        if list(arr.shape) != want_shape or str(arr.dtype) != want_dtype:
            raise CorruptIndexError(
                f"array {key!r} in {name!r} is {arr.dtype}{list(arr.shape)}, "
                f"manifest says {want_dtype}{want_shape}"
            )
