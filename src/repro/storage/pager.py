"""Fixed-size page files.

A :class:`PageFile` is the lowest storage layer: a sequence of fixed-size
byte pages addressed by page id, with allocate / read / write / free
operations.  Two backends share the interface:

* ``PageFile(path=None)`` — an in-memory backend (a list of ``bytearray``),
  which is what tests and benchmarks normally use; "disk" reads and writes
  are still counted, so I/O accounting works identically.
* ``PageFile(path="…")`` — a real file on disk, written with ``os.pwrite``
  style seeks, for users who want persistence.

Pages are the unit the buffer pool caches and the unit the paper's
disk-access counts refer to.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.storage import faults
from repro.storage.stats import IOStats

#: Default page size in bytes.  4 KiB matches common filesystem blocks and
#: comfortably holds an R-tree node with fanout ~50 in 6-8 dimensions.
PAGE_SIZE = 4096


class PageError(Exception):
    """Raised for invalid page ids or payloads that do not fit a page."""


class PageFile:
    """A file of fixed-size pages with explicit I/O accounting.

    Args:
        path: if given, pages live in this file on disk; otherwise pages are
            kept in memory (still counted as physical I/O by the stats
            object, mimicking a cold device).
        page_size: size of every page in bytes.
        stats: counter bundle; a private one is created when omitted.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = PAGE_SIZE,
        stats: Optional[IOStats] = None,
    ) -> None:
        if page_size <= 0:
            raise PageError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._path = path
        self._free_list: list[int] = []
        self._free_set: set[int] = set()
        self._next_page_id = 0
        if path is None:
            self._pages: list[bytearray] = []
            self._fd = None
        else:
            self._pages = []
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
            size = os.fstat(self._fd).st_size
            self._next_page_id = size // page_size

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the underlying file descriptor, if any."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def num_pages(self) -> int:
        """Number of pages ever allocated (including freed ones)."""
        return self._next_page_id

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a page and return its id, reusing freed pages first."""
        if self._free_list:
            page_id = self._free_list.pop()
            self._free_set.discard(page_id)
            return page_id
        page_id = self._next_page_id
        self._next_page_id += 1
        if self._fd is None:
            self._pages.append(bytearray(self.page_size))
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list for reuse.

        Freeing a page that is already free is a bookkeeping bug upstream
        (it would hand the same page to two owners on reuse), so it raises
        :class:`PageError` instead of corrupting the free list.
        """
        self._check(page_id)
        if page_id in self._free_set:
            raise PageError(f"page id {page_id} is already free")
        self._free_list.append(page_id)
        self._free_set.add(page_id)

    # ------------------------------------------------------------------
    # physical I/O
    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> bytes:
        """Read one page; counts as a physical page read."""
        self._check(page_id)
        self.stats.page_reads += 1
        if self._fd is None:
            return bytes(self._pages[page_id])
        os.lseek(self._fd, page_id * self.page_size, os.SEEK_SET)
        data = os.read(self._fd, self.page_size)
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page; counts as a physical page write.

        ``data`` must be exactly one page.  Short payloads used to be
        zero-padded silently, which let length bugs in callers masquerade
        as valid pages — the buffer pool pads explicitly, so a wrong-length
        payload reaching this layer is always a bug and raises
        :class:`PageError`.
        """
        self._check(page_id)
        if len(data) != self.page_size:
            raise PageError(
                f"payload of {len(data)} bytes does not match page size "
                f"{self.page_size}"
            )
        self.stats.page_writes += 1
        payload, after = faults.intercept("pager.write_page", bytes(data))
        if self._fd is None:
            self._pages[page_id][: len(payload)] = payload
        else:
            os.lseek(self._fd, page_id * self.page_size, os.SEEK_SET)
            os.write(self._fd, payload)
        if after is not None:
            raise after

    def flush(self) -> None:
        """Force written pages to stable storage (``os.fsync``).

        A no-op for the in-memory backend, which has no volatile cache
        below it.
        """
        faults.trigger("pager.flush")
        if self._fd is not None:
            os.fsync(self._fd)

    # ------------------------------------------------------------------
    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self._next_page_id:
            raise PageError(
                f"page id {page_id} out of range [0, {self._next_page_id})"
            )
