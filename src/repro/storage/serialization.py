"""Binary page layout for R-tree nodes.

A node page looks like::

    offset  size  field
    0       1     magic (0x52, 'R')
    1       1     level (0 = leaf)
    2       2     dimensionality d (uint16, little endian)
    4       4     entry count m (uint32)
    8       m*(16*d + 8)   entries

Each entry is ``d`` float64 lows, ``d`` float64 highs, then an int64 child
id (a page id for internal nodes, a record id for leaves).  Leaf points are
stored as degenerate rectangles so the layout is uniform.

The layout is deliberately fixed and simple — the point is that nodes
genuinely fit in pages, so fanout, tree height and page-access counts are
real, not simulated.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node

_MAGIC = 0x52
_HEADER = struct.Struct("<BBHI")


def max_entries_for_page(page_size: int, dim: int) -> int:
    """Largest entry count that fits a node of ``dim`` dims in a page."""
    per_entry = 16 * dim + 8
    avail = page_size - _HEADER.size
    if avail < per_entry:
        raise ValueError(
            f"page size {page_size} cannot hold even one {dim}-d entry"
        )
    return avail // per_entry


def encode_node(node: Node, dim: int, page_size: int) -> bytes:
    """Serialise ``node`` into at most ``page_size`` bytes."""
    m = len(node.entries)
    per_entry = 16 * dim + 8
    needed = _HEADER.size + m * per_entry
    if needed > page_size:
        raise ValueError(
            f"node with {m} entries needs {needed} bytes, page is {page_size}"
        )
    if node.level < 0 or node.level > 255:
        raise ValueError(f"level {node.level} out of byte range")
    out = bytearray(_HEADER.pack(_MAGIC, node.level, dim, m))
    coords = np.empty(m * 2 * dim, dtype=np.float64)
    children = np.empty(m, dtype=np.int64)
    for i, entry in enumerate(node.entries):
        if entry.rect.dim != dim:
            raise ValueError(
                f"entry dim {entry.rect.dim} does not match node dim {dim}"
            )
        coords[i * 2 * dim : i * 2 * dim + dim] = entry.rect.lows
        coords[i * 2 * dim + dim : (i + 1) * 2 * dim] = entry.rect.highs
        children[i] = entry.child
    # Interleave per entry: lows, highs, child.
    for i in range(m):
        out += coords[i * 2 * dim : (i + 1) * 2 * dim].tobytes()
        out += struct.pack("<q", int(children[i]))
    return bytes(out)


def decode_node(data: bytes, node_id: int) -> Node:
    """Reconstruct a node from its page image."""
    magic, level, dim, m = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad node magic 0x{magic:02x} on page {node_id}")
    per_entry = 16 * dim + 8
    entries: list[Entry] = []
    off = _HEADER.size
    for _ in range(m):
        coords = np.frombuffer(data, dtype=np.float64, count=2 * dim, offset=off)
        (child,) = struct.unpack_from("<q", data, off + 16 * dim)
        entries.append(Entry(Rect(coords[:dim], coords[dim:]), int(child)))
        off += per_entry
    return Node(node_id=node_id, level=level, entries=entries)
