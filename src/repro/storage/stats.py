"""I/O and traversal statistics shared across the storage and index layers.

The counters are deliberately simple integers on a plain object: benchmarks
reset them, run a query, and read them back.  They are the reproduction's
stand-in for the paper's "number of disk accesses" measurements.

Since the parallel executor landed, one ``IOStats`` instance can be
visible from several kernel workers at once.  The serial hot paths keep
their bare ``+=`` increments (single-threaded by construction, and the
kernel loops are too hot for a lock), while concurrent writers must go
through :meth:`IOStats.add` / :meth:`IOStats.bump` / :meth:`IOStats.merge`,
which serialise on a per-instance lock.  Workers normally accumulate
into private instances that are merged after the batch completes, so the
lock only guards the few genuinely shared callbacks.
"""

from __future__ import annotations

import threading  # repro: allow(REP007): stats counters need a lock so concurrent kernel workers cannot lose increments
from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counter bundle for storage and index operations.

    Attributes:
        page_reads: physical page reads (buffer-pool misses).
        page_writes: physical page writes (evictions of dirty pages and
            explicit flushes).
        buffer_hits: logical page reads served from the buffer pool.
        node_reads: R-tree nodes materialised from the store (logical).
        node_writes: R-tree nodes written back to the store (logical).
        distance_computations: distance evaluations *attempted* during
            post-processing or sequential scans (whether or not early
            abandoning cut one short).
        candidate_count: number of index candidates produced before
            post-processing (used to measure filter selectivity / Lemma 1).
        verifications_completed: post-processing verifications that ran to a
            full distance.  Under early abandoning (range queries, method-*b*
            scans) this means the candidate was within ``eps``; paths that
            always compute full distances (k-NN, the index/tree joins) count
            every candidate here.
        verifications_abandoned: post-processing verifications stopped early
            because the partial sum already exceeded ``eps**2``.
    """

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    node_reads: int = 0
    node_writes: int = 0
    distance_computations: int = 0
    candidate_count: int = 0
    verifications_completed: int = 0
    verifications_abandoned: int = 0
    extra: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    #: Every named integer counter, in snapshot order.
    FIELDS = (
        "page_reads",
        "page_writes",
        "buffer_hits",
        "node_reads",
        "node_writes",
        "distance_computations",
        "candidate_count",
        "verifications_completed",
        "verifications_abandoned",
    )

    def reset(self) -> None:
        """Zero every counter (including the free-form ``extra`` map)."""
        with self._lock:
            self.page_reads = 0
            self.page_writes = 0
            self.buffer_hits = 0
            self.node_reads = 0
            self.node_writes = 0
            self.distance_computations = 0
            self.candidate_count = 0
            self.verifications_completed = 0
            self.verifications_abandoned = 0
            self.extra.clear()

    @property
    def disk_accesses(self) -> int:
        """Total physical page operations — the paper's headline I/O metric."""
        return self.page_reads + self.page_writes

    @property
    def logical_reads(self) -> int:
        """All page read requests, whether served from buffer or disk."""
        return self.page_reads + self.buffer_hits

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a free-form named counter in :attr:`extra` (locked)."""
        with self._lock:
            self.extra[key] = self.extra.get(key, 0) + amount

    def add(self, **counts: int) -> None:
        """Atomically increment named counters.

        The thread-safe alternative to ``stats.field += n`` for code that
        can run from several kernel workers at once (for example the
        verification callbacks the fused k-NN frontier invokes).  Unknown
        names raise ``AttributeError`` rather than minting new fields.
        """
        with self._lock:
            for name, amount in counts.items():
                if name not in self.FIELDS:
                    raise AttributeError(f"IOStats has no counter {name!r}")
                setattr(self, name, getattr(self, name) + amount)

    def merge(self, other: "IOStats") -> None:
        """Fold another instance's counters into this one (locked).

        Used by the parallel executor to aggregate per-worker private
        stats back into the engine-level instance once a sharded batch
        completes; merging after the workers join keeps the totals
        deterministic.  Only ``self`` is locked — callers must ensure
        ``other`` is quiescent (its workers have finished).
        """
        with self._lock:
            for name in self.FIELDS:
                setattr(self, name, getattr(self, name) + getattr(other, name))
            for key, amount in other.extra.items():
                self.extra[key] = self.extra.get(key, 0) + amount

    def __add__(self, other: "IOStats") -> "IOStats":
        """Return a new instance holding the summed counters."""
        out = IOStats()
        out.merge(self)
        out.merge(other)
        return out

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of every counter, for reporting."""
        out = {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "buffer_hits": self.buffer_hits,
            "node_reads": self.node_reads,
            "node_writes": self.node_writes,
            "distance_computations": self.distance_computations,
            "candidate_count": self.candidate_count,
            "verifications_completed": self.verifications_completed,
            "verifications_abandoned": self.verifications_abandoned,
            "disk_accesses": self.disk_accesses,
        }
        out.update(self.extra)
        return out

    def __sub__(self, other: "IOStats") -> dict[str, int]:
        """Difference of two snapshots taken from the same counter object."""
        mine, theirs = self.snapshot(), other.snapshot()
        return {k: mine.get(k, 0) - theirs.get(k, 0) for k in mine}
