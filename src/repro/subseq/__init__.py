"""Subsequence matching: the FRM94 ST-index.

The paper's indexing method descends from two companion techniques:
whole-sequence matching ([AFS93], reproduced in :mod:`repro.core`) and
*fast subsequence matching* (Faloutsos, Ranganathan & Manolopoulos,
SIGMOD 1994 — cited as [FRM94]).  This package reproduces the latter as
an extension subsystem, sharing the R*-tree and DFT substrates:

* :mod:`repro.subseq.window` — sliding-window DFT features, with an O(k)
  incremental-update recurrence per step (and an FFT cross-check),
* :mod:`repro.subseq.stindex` — the ST-index: each series becomes a
  *trail* of feature points; trails are cut into sub-trails whose MBRs go
  into one R*-tree; range queries for query length == window size, and
  the multipiece ("PrefixSearch") reduction for longer queries.

Example 1.2 of the paper ("the Euclidean distance between p and any
subsequence of length four of s...") is exactly a subsequence query; see
``tests/test_subseq.py``.
"""

from repro.subseq.stindex import STIndex, SubseqMatch
from repro.subseq.window import sliding_features, sliding_windows

__all__ = ["STIndex", "SubseqMatch", "sliding_features", "sliding_windows"]
