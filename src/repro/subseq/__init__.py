"""Subsequence matching: the FRM94 ST-index.

The paper's indexing method descends from two companion techniques:
whole-sequence matching ([AFS93], reproduced in :mod:`repro.core`) and
*fast subsequence matching* (Faloutsos, Ranganathan & Manolopoulos,
SIGMOD 1994 — cited as [FRM94]).  This package reproduces the latter as
an extension subsystem, sharing the R*-tree and DFT substrates:

* :mod:`repro.subseq.window` — sliding-window DFT features, with an O(k)
  incremental-update recurrence per step (and an FFT cross-check),
* :mod:`repro.subseq.stindex` — the ST-index: each series becomes a
  *trail* of feature points; trails are cut into sub-trails whose MBRs
  are STR bulk-loaded into one R-tree and frozen into the columnar
  kernel; range queries for query length == window size, two
  planner-chosen probe reductions for longer queries (the multipiece
  split and FRM94's longest-prefix search), subsequence **k-NN** ("the
  k closest windows") over the kernel's box-leaf best-first search, and
  fused ``range_query_batch`` / ``knn_query_batch`` that probe all
  queries in one kernel traversal.

Example 1.2 of the paper ("the Euclidean distance between p and any
subsequence of length four of s...") is exactly a subsequence query; see
``tests/test_subseq.py``.
"""

from repro.subseq.stindex import PROBE_STRATEGIES, STIndex, SubseqMatch
from repro.subseq.window import (
    piece_features,
    prefix_features,
    sliding_features,
    sliding_windows,
)

__all__ = [
    "PROBE_STRATEGIES",
    "STIndex",
    "SubseqMatch",
    "piece_features",
    "prefix_features",
    "sliding_features",
    "sliding_windows",
]
