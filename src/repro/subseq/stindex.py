"""The ST-index: an R-tree over sub-trail MBRs ([FRM94]).

Indexing: every series is mapped to a *trail* — the curve its sliding
windows trace through feature space.  Storing one point per offset would
drown the tree, so consecutive trail points are grouped into *sub-trails*
and only each sub-trail's MBR is inserted, tagged with (series id, offset
range).  Two grouping policies are provided:

* ``"fixed"`` — chunks of a constant number of offsets (FRM94's
  I-fixed), and
* ``"adaptive"`` — a greedy version of FRM94's I-adaptive: a sub-trail is
  cut when admitting the next point would raise the marginal cost — the
  MBR's margin per enclosed point — rather than lower it.

Querying (Algorithm: range search):

* query length == window ``w``: build the eps-ball MBR around the query's
  feature point, collect intersecting sub-trails, then verify every
  offset they cover against the raw series (early abandoning) — a
  two-step filter-and-refine with no false dismissals, since the
  truncated-spectrum distance lower-bounds the true window distance.
* query length ``L > w``: two probe reductions, planner-chosen per query
  (``probe="auto"``; :class:`~repro.core.planner.SubseqProbePlanner`):

  - **multipiece** — split the query into ``p = floor(L / w)`` disjoint
    pieces; if the whole match is within ``eps``, some piece is within
    ``eps / sqrt(p)`` of its aligned window, so the union of piece
    searches (with shifted offsets) is a candidate superset;
  - **prefix** (FRM94's PrefixSearch) — search only the leading window
    at the full ``eps``: one wide rectangle instead of ``p`` narrow
    ones.  Both refine on the full length and return identical answers.

Subsequence k-NN (:meth:`STIndex.knn_query`,
:meth:`STIndex.knn_query_batch`): the k closest windows, exactly.  The
query's prefix-window features drive the kernel's batched best-first
k-NN with the sub-trail MBRs as *box* leaves; every reached sub-trail
fans out into its windows via the kernel's ``verify_expand`` seam, and
full-length exact distances feed the per-query pruning radii back into
the traversal.  Feature-space MINDIST lower-bounds every covered
window's true distance (Lemma 1 + prefix monotonicity), so no answer is
dismissed; k-th-position ties resolve to the smallest
``(series, offset)``.  :meth:`STIndex.brute_force_knn` is the reference.

Execution: the whole pipeline is columnar.  Sub-trail boundaries come
from one vectorized pass over prefix extents per segment
(:meth:`STIndex._adaptive_starts`), their MBRs from two ``reduceat``
passes, and the rectangles are STR bulk-loaded and frozen into a
:class:`~repro.rtree.kernel.FrozenRTree` on first query.  Probing fuses
all pieces of all queries of a batch into **one**
:meth:`~repro.rtree.kernel.FrozenRTree.range_ids_many` call; candidate
offsets are expanded with ``xp.repeat``/``xp.arange`` arithmetic and
deduplicated with ``xp.unique`` over packed ``(series, offset)`` keys;
refinement gathers each series' candidate windows into a strided
sliding-window matrix and verifies them with one
:func:`~repro.core.similarity.batch_euclidean_within` pass.  The original
per-sub-trail R* inserts (``build="insert"``), recursive probe, Python-set
expansion and scalar refine loop stay in-tree as the tested reference
(:meth:`STIndex.range_query_reference`, mirroring the PR 1–3 pattern).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # plan imports stindex for spec compilation
    from repro.core.plan import PhysicalPlan, QuerySpec

from repro.rtree.backend import xp

from repro.core.planner import (
    PROBE_STRATEGIES,
    ProbeChoice,
    SubseqProbePlanner,
)
from repro.rtree.base import RTreeBase
from repro.rtree.bulk import str_pack_rects
from repro.rtree.geometry import Rect
from repro.rtree.kernel import FrontierStats, FrozenRTree, frozen_kernel
from repro.rtree.rstar import RStarTree
from repro.subseq.window import (
    encode_rect,
    piece_features,
    prefix_features,
    sliding_features,
)

#: window feature points sampled per series for the probe planner.
_PLANNER_SAMPLE_PER_SERIES = 16

ArrayLike = Union[Sequence[float], xp.ndarray]


@dataclass(frozen=True)
class SubseqMatch:
    """One verified subsequence match."""

    series_id: int
    offset: int
    distance: float


@dataclass
class _SubTrail:
    series_id: int
    start: int  # first window offset covered
    end: int  # last window offset covered (inclusive)


class STIndex:
    """Subsequence index over a collection of series.

    Args:
        window: window length ``w`` (the minimum query length).
        k: DFT coefficients retained per window.
        grouping: ``"adaptive"`` (default) or ``"fixed"``.
        chunk: sub-trail size for the fixed policy (and the adaptive
            policy's upper bound).
        max_entries: R-tree fanout.
        build: ``"bulk"`` (default) defers tree construction and STR
            bulk-loads all sub-trail MBRs at first query, freezing them
            straight into the columnar kernel; ``"insert"`` reproduces
            the original behaviour — one R* insert per sub-trail at
            ``add_series`` time (the reference build path).
        executor: optional :class:`repro.rtree.parallel.KernelExecutor`
            that shards the fused probe batches (multipiece/prefix range
            probes and the k-NN frontier) across worker threads; results
            are identical to serial execution.  ``None`` = serial.
    """

    def __init__(
        self,
        window: int,
        k: int = 3,
        grouping: str = "adaptive",
        chunk: int = 16,
        max_entries: int = 32,
        build: str = "bulk",
        executor=None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 1 <= k <= window:
            raise ValueError(f"k must be in [1, {window}], got {k}")
        if grouping not in ("fixed", "adaptive"):
            raise ValueError(
                f"grouping must be 'fixed' or 'adaptive', got {grouping!r}"
            )
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if build not in ("bulk", "insert"):
            raise ValueError(f"build must be 'bulk' or 'insert', got {build!r}")
        self.window = window
        self.k = k
        self.grouping = grouping
        self.chunk = chunk
        self.max_entries = max_entries
        self.build = build
        self.executor = executor
        self.dim = 2 * k
        self._series: list[xp.ndarray] = []
        self._subtrails: list[_SubTrail] = []
        # Per-add_series stacks of sub-trail MBRs, concatenated at seal time.
        self._mbr_lows: list[xp.ndarray] = []
        self._mbr_highs: list[xp.ndarray] = []
        self._tree = (
            RStarTree(self.dim, max_entries=max_entries)
            if build == "insert"
            else None
        )
        # Columnar image of the sub-trail metadata + frozen tree, rebuilt
        # lazily whenever series were added since the last seal.
        self._sealed_count = -1
        self._kernel: Optional[FrozenRTree] = None
        self._sub_series = xp.empty(0, dtype=xp.int64)
        self._sub_start = xp.empty(0, dtype=xp.int64)
        self._sub_end = xp.empty(0, dtype=xp.int64)
        self._series_lens = xp.empty(0, dtype=xp.int64)
        self._offset_stride = 1
        # Per-series subsamples of window feature points, feeding the
        # probe planner's selectivity sample.
        self._feat_samples: list[xp.ndarray] = []
        self._window_sample = xp.empty((0, self.dim))
        self._total_windows = 0
        self._planner: Optional[SubseqProbePlanner] = None

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_series(self, series: ArrayLike) -> int:
        """Index a series; returns its id.  Series shorter than the window
        are rejected."""
        x = xp.asarray(series, dtype=xp.float64).copy()
        if x.ndim != 1 or x.shape[0] < self.window:
            raise ValueError(
                f"series must be 1-D with length >= {self.window}, got {x.shape}"
            )
        series_id = len(self._series)
        self._series.append(x)
        points = encode_rect(sliding_features(x, self.window, self.k))
        # Evenly-spaced subsample of the trail for the probe planner's
        # selectivity estimates (deterministic, a handful of rows per
        # series).
        sel = xp.unique(
            xp.linspace(
                0, points.shape[0] - 1,
                num=min(points.shape[0], _PLANNER_SAMPLE_PER_SERIES),
            ).astype(xp.int64)
        )
        self._feat_samples.append(points[sel])
        starts = self._group_starts(points)
        ends = xp.append(starts[1:] - 1, points.shape[0] - 1)
        # All sub-trail MBRs of the series in two cumulative passes: the
        # groups tile the trail contiguously, so reduceat over the start
        # indices is exactly the per-group min/max.
        lows = xp.minimum.reduceat(points, starts, axis=0)
        highs = xp.maximum.reduceat(points, starts, axis=0)
        base = len(self._subtrails)
        for i in range(starts.shape[0]):  # repro: allow(REP001): construction, registers one sub-trail per group
            self._subtrails.append(
                _SubTrail(series_id, int(starts[i]), int(ends[i]))
            )
        self._mbr_lows.append(lows)
        self._mbr_highs.append(highs)
        if self.build == "insert":
            for i in range(starts.shape[0]):  # repro: allow(REP001): insert-build adds one sub-trail rect at a time by design
                self._tree.insert(Rect(lows[i], highs[i]), base + i)
        return series_id

    def add_series_many(self, seriess: Sequence[ArrayLike]) -> list[int]:
        """Index a batch of series; returns their ids."""
        return [self.add_series(x) for x in seriess]

    def _group_starts(self, points: xp.ndarray) -> xp.ndarray:
        """Sub-trail start offsets for one trail (vectorized policies)."""
        m = points.shape[0]
        if self.grouping == "fixed":
            return xp.arange(0, m, self.chunk, dtype=xp.int64)
        return self._adaptive_starts(points)

    def _adaptive_starts(self, points: xp.ndarray) -> xp.ndarray:
        """Greedy adaptive cuts, evaluated over prefix extents per segment.

        Same rule as the scalar :meth:`_group` reference: extend while the
        MBR margin per enclosed point stays roughly flat, cut on a sharp
        trail turn (or at the ``chunk`` cap).  Instead of updating running
        extents one point at a time, each segment computes cumulative
        min/max over its next ``chunk + 1`` points, derives every prefix's
        margin in one pass, and locates the first offending cut with a
        single vectorized comparison — one numpy pass per *sub-trail*
        rather than per offset.
        """
        m = points.shape[0]
        chunk = self.chunk
        starts = [0]
        s = 0
        while True:
            stop = min(s + chunk + 1, m)
            win = points[s:stop]
            nw = stop - s
            if nw <= 1:
                break
            cmin = xp.minimum.accumulate(win, axis=0)
            cmax = xp.maximum.accumulate(win, axis=0)
            margins = xp.sum(cmax - cmin, axis=1)  # margins[t]: prefix t+1
            j = xp.arange(1, nw)  # group size when point s+j is considered
            old_cost = margins[j - 1] / j
            grown_cost = margins[j] / (j + 1)
            cut = (j >= chunk) | (
                (j >= 4) & (old_cost > 0) & (grown_cost > 1.3 * old_cost)
            )
            hits = xp.nonzero(cut)[0]
            if hits.size == 0:
                break  # the segment runs to the end of the trail
            s += int(j[hits[0]])
            starts.append(s)
        return xp.asarray(starts, dtype=xp.int64)

    def _group(self, points: xp.ndarray) -> list[tuple[int, int]]:
        """Scalar reference grouping (one Python step per trail point).

        Kept verbatim as the tested reference for
        :meth:`_adaptive_starts`; see ``tests/test_subseq_fast_parity.py``.
        """
        m = points.shape[0]
        if self.grouping == "fixed":
            return [
                (s, min(s + self.chunk - 1, m - 1)) for s in range(0, m, self.chunk)
            ]
        # Greedy adaptive: extend while the MBR margin per enclosed point
        # stays roughly flat.  Smooth trails (consecutive windows overlap
        # in w-1 values, so successive feature points are close) pack many
        # offsets per MBR; a sharp trail turn raises the marginal cost and
        # cuts the sub-trail.  The 1.3 growth factor and the minimum run of
        # 4 keep smooth stock trails at ~chunk offsets per MBR instead of
        # fragmenting on every small wiggle.
        groups: list[tuple[int, int]] = []
        start = 0
        lo = points[0].copy()
        hi = points[0].copy()
        margin = 0.0
        count = 1
        for i in range(1, m):
            new_lo = xp.minimum(lo, points[i])
            new_hi = xp.maximum(hi, points[i])
            new_margin = float(xp.sum(new_hi - new_lo))
            grown_cost = new_margin / (count + 1)
            old_cost = margin / count if count else 0.0
            if count >= self.chunk or (
                count >= 4 and old_cost > 0 and grown_cost > 1.3 * old_cost
            ):
                groups.append((start, i - 1))
                start = i
                lo = points[i].copy()
                hi = points[i].copy()
                margin = 0.0
                count = 1
            else:
                lo, hi = new_lo, new_hi
                margin = new_margin
                count += 1
        groups.append((start, m - 1))
        return groups

    # ------------------------------------------------------------------
    # sealing: columnar metadata + bulk-loaded frozen tree
    # ------------------------------------------------------------------
    def _seal(self) -> None:
        """Refresh the columnar sub-trail arrays after new series."""
        n = len(self._subtrails)
        if self._sealed_count == n:
            return
        self._sub_series = xp.fromiter(
            (s.series_id for s in self._subtrails), dtype=xp.int64, count=n
        )
        self._sub_start = xp.fromiter(
            (s.start for s in self._subtrails), dtype=xp.int64, count=n
        )
        self._sub_end = xp.fromiter(
            (s.end for s in self._subtrails), dtype=xp.int64, count=n
        )
        self._series_lens = xp.fromiter(
            (x.shape[0] for x in self._series), dtype=xp.int64,
            count=len(self._series),
        )
        # Packing stride for (series, offset) dedup keys.
        self._offset_stride = (
            int(self._series_lens.max()) + 1 if self._series_lens.size else 1
        )
        self._window_sample = (
            xp.concatenate(self._feat_samples)
            if self._feat_samples
            else xp.empty((0, self.dim))
        )
        self._total_windows = int(
            xp.sum(self._series_lens - self.window + 1)
        )
        self._planner = None
        if self.build == "bulk":
            self._tree = None  # stale bulk tree: rebuild on next access
        self._kernel = None
        self._sealed_count = n

    @property
    def tree(self) -> RTreeBase:
        """The node-object R-tree over sub-trail MBRs.

        In ``"insert"`` mode this is the incrementally built R*-tree; in
        ``"bulk"`` mode it is STR-packed from the accumulated MBR stacks
        on first access (one bulk load instead of one insert per
        sub-trail) and rebuilt lazily after further ``add_series`` calls.
        """
        self._seal()
        if self._tree is None:
            lows = (
                xp.concatenate(self._mbr_lows)
                if self._mbr_lows
                else xp.empty((0, self.dim))
            )
            highs = (
                xp.concatenate(self._mbr_highs)
                if self._mbr_highs
                else xp.empty((0, self.dim))
            )
            self._tree = str_pack_rects(
                lows, highs,
                record_ids=xp.arange(lows.shape[0], dtype=xp.int64),
                max_entries=self.max_entries,
            )
        return self._tree

    @property
    def kernel(self) -> FrozenRTree:
        """Frozen columnar image of :attr:`tree` (built on demand)."""
        self._seal()
        if self._kernel is None:
            self._kernel = frozen_kernel(self.tree)
        return self._kernel

    @property
    def stats(self) -> IOStats:
        """The backing store's :class:`~repro.storage.stats.IOStats`."""
        return self.tree.store.stats

    @property
    def num_series(self) -> int:
        return len(self._series)

    @property
    def num_subtrails(self) -> int:
        return len(self._subtrails)

    def series(self, series_id: int) -> xp.ndarray:
        """The raw series stored under ``series_id``."""
        return self._series[series_id]

    # ------------------------------------------------------------------
    # the unified plan API (mirrors SimilarityEngine.plan)
    # ------------------------------------------------------------------
    def plan(self, spec: "QuerySpec") -> "PhysicalPlan":
        """Compile a ``subseq_range``/``subseq_knn`` spec into a plan.

        The subsequence entry point of the unified plan API: probe
        strategies are resolved at compile time (so ``EXPLAIN`` reports
        the planner's multipiece-vs-prefix choice without running), and
        ``.execute()`` runs the fused fast path.
        """
        from repro.core.plan import compile_subseq_spec

        return compile_subseq_spec(self, spec)

    def explain(self, spec: "QuerySpec") -> dict:
        """``EXPLAIN`` for a subsequence spec: compile only, describe."""
        return self.plan(spec).explain()

    # ------------------------------------------------------------------
    # querying — the columnar fast path
    # ------------------------------------------------------------------
    def _check_query(self, query: ArrayLike, eps: float = 0.0) -> xp.ndarray:
        q = xp.asarray(query, dtype=xp.float64)
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        if q.ndim != 1 or q.shape[0] < self.window:
            raise ValueError(
                f"query must be 1-D with length >= {self.window}, got {q.shape}"
            )
        if not xp.all(xp.isfinite(q)):
            # A NaN would silently empty the probe rectangles (every
            # comparison false) and an inf would blow them up; fail the
            # query cleanly instead of returning a wrong answer.
            raise ValueError("query must contain only finite values")
        return q

    def _check_probe(
        self, probe: Union[str, Sequence[str]], count: int
    ) -> list[str]:
        """Normalise a probe hint into one resolved strategy per query."""
        if isinstance(probe, str):
            if probe not in PROBE_STRATEGIES:
                raise ValueError(
                    f"probe must be one of {PROBE_STRATEGIES}, got {probe!r}"
                )
            return [probe] * count
        out = list(probe)
        if len(out) != count:
            raise ValueError(
                f"probe list has {len(out)} entries for {count} queries"
            )
        for s in out:
            if s not in PROBE_STRATEGIES:
                raise ValueError(
                    f"probe must be one of {PROBE_STRATEGIES}, got {s!r}"
                )
        return out

    # ------------------------------------------------------------------
    # probe-strategy planning
    # ------------------------------------------------------------------
    @property
    def probe_planner(self) -> SubseqProbePlanner:
        """The planner choosing between multipiece and prefix probes.

        Backed by a deterministic subsample of the indexed window feature
        points (collected at ``add_series`` time); rebuilt lazily after
        new series.
        """
        self._seal()
        if self._planner is None:
            self._planner = SubseqProbePlanner(
                self._window_sample, self._total_windows
            )
        return self._planner

    def _query_rects(
        self, q: xp.ndarray, eps: float
    ) -> tuple[xp.ndarray, xp.ndarray, xp.ndarray, xp.ndarray]:
        """Both reductions' search rectangles for one query.

        Returns ``(piece_lows, piece_highs, prefix_lo, prefix_hi)`` — the
        ``p`` multipiece rectangles at radius ``eps / sqrt(p)`` and the
        single prefix rectangle at radius ``eps``, all padded by the same
        numerical tolerance the probe applies.
        """
        w = self.window
        p = q.shape[0] // w
        feats = encode_rect(
            piece_features(q[: p * w].reshape(p, w), self.k)
        )
        pad = self._feat_pad(feats)
        piece_r = (eps / math.sqrt(p) + pad)[:, None]
        prefix_r = eps + pad[0]
        return (
            feats - piece_r,
            feats + piece_r,
            feats[0] - prefix_r,
            feats[0] + prefix_r,
        )

    def choose_probe(self, query: ArrayLike, eps: float) -> ProbeChoice:
        """The planner's probe-strategy decision for one query.

        Single-piece queries (length under ``2 * window``) always resolve
        to ``"multipiece"`` — the two reductions coincide there.
        """
        q = self._check_query(query, eps)
        return self.probe_planner.choose(*self._query_rects(q, eps))

    def range_query(  # repro: allow(REP005): thin wrapper, range_query_batch runs _check_query
        self,
        query: ArrayLike,
        eps: float,
        fstats: Optional[FrontierStats] = None,
        probe: str = "auto",
    ) -> list[SubseqMatch]:
        """All subsequences within ``eps`` of ``query``.

        The query must be at least one window long; longer queries go
        through a probe reduction — the multipiece split or FRM94's
        longest-prefix search, planner-chosen under ``probe="auto"``
        (answers are identical whichever runs; both are candidate
        supersets refined exactly).  Matches report the best offset
        semantics of [FRM94]: every qualifying offset is returned.
        """
        return self.range_query_batch([query], eps, fstats=fstats, probe=probe)[0]

    def range_query_batch(
        self,
        queries: Sequence[ArrayLike],
        eps: float,
        fstats: Optional[FrontierStats] = None,
        probe: Union[str, Sequence[str]] = "auto",
        budget=None,
    ) -> list[list[SubseqMatch]]:
        """:meth:`range_query` over a batch, sharing one fused index probe.

        All probe rectangles of all queries (queries may have different
        lengths and different resolved strategies) descend the frozen
        kernel together as one
        :meth:`~repro.rtree.kernel.FrozenRTree.range_ids_many` pair
        frontier; expansion, dedup and refinement then run per query on
        the returned sub-trail id arrays.  Answers are identical to one
        :meth:`range_query` per query, and independent of the probe
        strategy.

        Args:
            queries: the query series (each at least one window long).
            eps: similarity threshold.
            fstats: optional frontier counters to fill in.
            probe: ``"auto"`` (planner decides per query),
                ``"multipiece"``, ``"prefix"``, or one resolved strategy
                per query.
        """
        qs = [self._check_query(q, eps) for q in queries]
        strategies = self._check_probe(probe, len(qs))
        if not qs or not self._subtrails:
            return [[] for _ in qs]
        candidates = self._probe_batch(
            qs, eps, strategies, fstats=fstats, budget=budget
        )
        return [
            self._refine_arrays(q, eps, series, aligned, budget=budget)
            for q, (series, aligned) in zip(qs, candidates)
        ]

    def candidate_offsets(
        self, query: ArrayLike, eps: float, probe: str = "multipiece"
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Deduplicated candidate ``(series ids, offsets)`` for one query.

        The filter phase of the pipeline (fused kernel probe + array
        expansion), exposed for filter-quality inspection and the phase
        benchmarks; :meth:`range_query` under the same resolved ``probe``
        strategy refines exactly these candidates (the default pins the
        multipiece reduction so candidate sets are reproducible).
        """
        q = self._check_query(query, eps)
        strategies = self._check_probe(probe, 1)
        if not self._subtrails:
            empty = xp.empty(0, dtype=xp.int64)
            return empty, empty
        return self._probe_batch([q], eps, strategies)[0]

    def _probe_batch(
        self,
        qs: list[xp.ndarray],
        eps: float,
        strategies: Sequence[str],
        fstats: Optional[FrontierStats] = None,
        budget=None,
    ) -> list[tuple[xp.ndarray, xp.ndarray]]:
        """Fused filter phase: one kernel traversal for all queries' probes.

        ``strategies`` holds one reduction hint per query —
        ``"multipiece"`` contributes ``floor(L / w)`` rectangles at radius
        ``eps / sqrt(p)``, ``"prefix"`` one rectangle (the leading window)
        at the full ``eps``, and ``"auto"`` is resolved *here*, by the
        planner, against the same fused piece features the probe uses (so
        the piece FFTs run exactly once per query either way).  Returns
        one deduplicated ``(series, aligned offset)`` array pair per
        query.
        """
        kernel = self.kernel
        w = self.window
        # --- probe rows, one fused FFT.  A query pre-resolved to
        # "prefix" contributes only its leading window up front (no
        # point featurizing pieces the keep-mask would discard); "auto"
        # and "multipiece" emit every piece — "auto" needs them all for
        # the planner's estimates anyway.
        pieces: list[xp.ndarray] = []
        row_query: list[int] = []
        row_shift: list[int] = []
        counts: list[int] = []
        for i, q in enumerate(qs):  # repro: allow(REP001): per-query piece bookkeeping, O(queries) not O(rows)
            p = 1 if strategies[i] == "prefix" else q.shape[0] // w
            counts.append(p)
            for j in range(p):
                pieces.append(q[j * w : (j + 1) * w])
                row_query.append(i)
                row_shift.append(j * w)
        feats = encode_rect(piece_features(xp.stack(pieces), self.k))
        pad = self._feat_pad(feats)
        # --- resolve strategies + per-row radii; prefix keeps row 0 only
        bounds = xp.cumsum([0] + counts)
        keep = xp.ones(len(pieces), dtype=bool)
        row_eps = xp.empty(len(pieces))
        planner: Optional[SubseqProbePlanner] = None
        for i, q in enumerate(qs):  # repro: allow(REP001): per-query rect assembly, O(queries) not O(rows)
            s, e = int(bounds[i]), int(bounds[i + 1])
            p = q.shape[0] // w
            strategy = strategies[i]
            if strategy == "auto":
                if p <= 1:
                    strategy = "multipiece"  # the reductions coincide
                else:
                    if planner is None:
                        planner = self.probe_planner
                    piece_r = (eps / math.sqrt(p) + pad[s:e])[:, None]
                    prefix_r = eps + pad[s]
                    strategy = planner.choose(
                        feats[s:e] - piece_r, feats[s:e] + piece_r,
                        feats[s] - prefix_r, feats[s] + prefix_r,
                    ).strategy
            if strategy == "prefix":
                keep[s + 1 : e] = False
                row_eps[s] = eps
            else:
                row_eps[s:e] = eps / math.sqrt(p)
        radius = (row_eps + pad)[keep][:, None]
        kept_feats = feats[keep]
        if self.executor is not None:
            ids_per_row = self.executor.range_ids_many(
                kernel,
                kept_feats - radius, kept_feats + radius,
                fstats=fstats, io=self.tree.store.stats,
                budget=budget,
            )
        else:
            ids_per_row = kernel.range_ids_many(
                kept_feats - radius, kept_feats + radius,
                fstats=fstats, io=self.tree.store.stats,
                budget=budget,
            )
        # --- expand + dedup, per query
        shifts = xp.asarray(row_shift, dtype=xp.int64)[keep]
        kept_query = xp.asarray(row_query, dtype=xp.int64)[keep]
        out: list[tuple[xp.ndarray, xp.ndarray]] = []
        row = 0
        for i, q in enumerate(qs):  # repro: allow(REP001): per-query gather of its candidate rows
            rows = []
            while row < kept_query.shape[0] and kept_query[row] == i:
                rows.append(row)
                row += 1
            out.append(
                self._expand_rows(
                    [ids_per_row[r] for r in rows], shifts[rows], q.shape[0]
                )
            )
        if budget is not None:
            budget.charge_candidates(
                sum(int(s.shape[0]) for s, _ in out), where="subseq probe"
            )
        return out

    def _expand_subtrails(
        self, ids: xp.ndarray
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Sub-trail ids -> their full ``(series, window offset)`` runs.

        The ``xp.repeat``/``xp.arange`` expansion shared by the range
        pipeline (:meth:`_expand_rows`, which then shifts, bounds-checks
        and dedups) and the k-NN verifier (which then drops offsets that
        cannot host the full query) — the index arithmetic lives once.
        """
        starts = self._sub_start[ids]
        counts = self._sub_end[ids] - starts + 1
        total = int(counts.sum())
        csum = xp.cumsum(counts)
        intra = xp.arange(total, dtype=xp.int64) - xp.repeat(
            csum - counts, counts
        )
        return (
            xp.repeat(self._sub_series[ids], counts),
            xp.repeat(starts, counts) + intra,
        )

    @staticmethod
    def _feat_pad(feats: xp.ndarray) -> xp.ndarray:
        """Numerical-tolerance pad, one value per feature row.

        Trail features come from the O(k) incremental recurrence, query
        features from a fresh FFT; their last-ulp disagreement must not
        dismiss an exact match at ``eps == 0`` or prune an exact k-NN
        tie.  Every probe rectangle and k-NN lower bound applies this
        same rule (widening only — Lemma 1 safe), including the planner's
        compile-time rectangles, which must match the execute-time probe.
        """
        return 1e-7 * (1.0 + xp.max(xp.abs(xp.atleast_2d(feats)), axis=1))

    def _expand_rows(
        self,
        ids_per_row: list[xp.ndarray],
        shifts: xp.ndarray,
        qlen: int,
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Sub-trail id arrays -> deduplicated (series, aligned offset).

        Each sub-trail ``(start, end)`` range becomes its run of offsets
        via ``xp.repeat``/``xp.arange`` arithmetic; alignments that run
        off either end of their series (``aligned < 0`` or
        ``aligned + qlen > len(series)``) are dropped here, at expansion
        time, and duplicates across overlapping sub-trails and query
        pieces collapse with one ``xp.unique`` over packed keys — no
        Python sets anywhere.

        Returns:
            ``(series ids, aligned offsets)``, sorted by the packed key
            (series-major, offset-minor).
        """
        ser_parts: list[xp.ndarray] = []
        ali_parts: list[xp.ndarray] = []
        for ids, shift in zip(ids_per_row, shifts):  # repro: allow(REP001): per-query-row concat of variable-length id lists
            if ids.size == 0:
                continue
            sids, offs = self._expand_subtrails(ids)
            ali_parts.append(offs - int(shift))
            ser_parts.append(sids)
        if not ser_parts:
            empty = xp.empty(0, dtype=xp.int64)
            return empty, empty
        series = xp.concatenate(ser_parts)
        aligned = xp.concatenate(ali_parts)
        ok = (aligned >= 0) & (aligned <= self._series_lens[series] - qlen)
        keys = xp.unique(series[ok] * self._offset_stride + aligned[ok])
        return keys // self._offset_stride, keys % self._offset_stride

    def _refine_arrays(
        self,
        q: xp.ndarray,
        eps: float,
        series: xp.ndarray,
        aligned: xp.ndarray,
        budget=None,
    ) -> list[SubseqMatch]:
        """Verify candidates with one matrix pass per candidate series.

        Gathers each series' candidate windows from a strided
        sliding-window view (no per-candidate slicing) and runs the
        matrix-level early-abandon verifier
        :func:`~repro.core.similarity.batch_euclidean_within` once per
        series — the batched counterpart of the scalar :meth:`_refine`.
        """
        from repro.core.similarity import batch_euclidean_within

        L = q.shape[0]
        out: list[SubseqMatch] = []
        uniq, first = xp.unique(series, return_index=True)
        bounds = xp.append(first, series.shape[0])
        for t in range(uniq.shape[0]):  # repro: allow(REP001): per-series verify round, window distances batched inside
            if budget is not None:
                budget.check(where="subseq refine")
            sid = int(uniq[t])
            offs = aligned[bounds[t] : bounds[t + 1]]
            x = self._series[sid]
            windows = xp.lib.stride_tricks.sliding_window_view(x, L)[offs]
            kept, dists, _ = batch_euclidean_within(windows, q, eps)
            for a, d in zip(kept, dists):  # repro: allow(REP001): one append per surviving match
                out.append(SubseqMatch(sid, int(offs[a]), float(d)))
        out.sort(key=lambda m: (m.distance, m.series_id, m.offset))
        return out

    # ------------------------------------------------------------------
    # querying — subsequence k-NN (the k closest windows)
    # ------------------------------------------------------------------
    def knn_query(  # repro: allow(REP005): thin wrapper, knn_query_batch runs _check_query
        self, query: ArrayLike, k: int, fstats: Optional[FrontierStats] = None
    ) -> list[SubseqMatch]:
        """The ``k`` subsequences closest to ``query`` (exact).

        Multi-step best-first search over the sub-trail MBRs: the query's
        *prefix window* features drive the kernel's batched k-NN with the
        sub-trail boxes as leaves, and every reached sub-trail fans out
        into its windows, verified against the raw series at full query
        length.  The feature-space MINDIST to a sub-trail MBR lower-bounds
        the true distance of every window it covers (Lemma 1 plus prefix
        monotonicity), so pruning by the k-th best exact distance never
        dismisses an answer.  Ties at the k-th position resolve
        deterministically to the smallest ``(series, offset)``.
        """
        return self.knn_query_batch([query], k, fstats=fstats)[0]

    def knn_query_batch(
        self,
        queries: Sequence[ArrayLike],
        k: int,
        fstats: Optional[FrontierStats] = None,
        budget=None,
    ) -> list[list[SubseqMatch]]:
        """:meth:`knn_query` over a batch, sharing one fused kernel search.

        All queries run through one round-synchronous
        :meth:`~repro.rtree.kernel.FrozenRTree.knn_batch` traversal with
        per-query pruning radii; each query's shrinking radius (its k-th
        best exact window distance so far) feeds back into both the
        kernel's node pruning and the sliding-window verifier's early
        abandoning.

        Edge cases follow the kernel's uniform contract: ``k == 0``, an
        empty batch or an empty index return empty lists; ``k`` larger
        than the number of alignable windows returns every window,
        exactly verified and sorted.
        """
        if k != int(k) or k < 0:
            raise ValueError(f"k must be a non-negative integer, got {k}")
        k = int(k)
        qs = [self._check_query(q) for q in queries]
        if not qs:
            return []
        if k == 0 or not self._subtrails:
            return [[] for _ in qs]
        kernel = self.kernel
        feats = encode_rect(prefix_features(qs, self.window, self.k))
        pairs = self._knn_kernel_call(kernel, feats, k, qs, fstats, budget=budget)
        stride = self._offset_stride
        return [
            [
                SubseqMatch(int(key // stride), int(key % stride), float(d))
                for key, d in pr
            ]
            for pr in pairs
        ]

    def _knn_kernel_call(self, kernel, feats, k, qs, fstats, budget=None):
        """Drive :meth:`FrozenRTree.knn_batch` with the window verifier.

        The MINDIST rows are shrunk by the probe's numerical tolerance:
        trail features come from the incremental recurrence, the query's
        from a fresh FFT, and a last-ulp excess must not prune an exact
        tie at the pruning radius.  Shrinking a lower bound only widens
        the search — it can never dismiss an answer.
        """

        def rect_rows(lows, highs, qrows):
            clamped = xp.clip(qrows, lows, highs)
            d = xp.linalg.norm(qrows - clamped, axis=1)
            return xp.maximum(d - self._feat_pad(qrows), 0.0)

        if self.executor is not None:
            return self.executor.knn_batch(
                kernel,
                feats,
                k,
                box_leaves=True,
                verify_expand=self._knn_verifier(qs),
                rect_dist_rows=rect_rows,
                fstats=fstats,
                io=self.tree.store.stats,
                budget=budget,
            )
        return kernel.knn_batch(
            feats,
            k,
            box_leaves=True,
            verify_expand=self._knn_verifier(qs),
            rect_dist_rows=rect_rows,
            fstats=fstats,
            io=self.tree.store.stats,
            budget=budget,
        )

    def _knn_verifier(self, qs: list[xp.ndarray]):
        """The expanding verify callback :meth:`knn_query_batch` hands the
        kernel: sub-trail ids -> exact full-length window distances.

        Windows are gathered per candidate series from a strided
        sliding-window view and verified with one
        :func:`~repro.core.similarity.batch_euclidean_within` pass at the
        query's current pruning radius — windows provably beyond it are
        abandoned early and never reach the kernel's result heap (safe:
        radii only shrink).  Alignments that cannot fit the full query are
        dropped at expansion time.  Item keys are the packed
        ``series * stride + offset`` values, which make the kernel's
        smallest-key tie-break exactly the ``(series, offset)`` order.
        """
        from repro.core.similarity import batch_euclidean_within

        stride = self._offset_stride

        def verify(
            qidx: xp.ndarray, rids: xp.ndarray, radii: xp.ndarray
        ) -> tuple[xp.ndarray, xp.ndarray, xp.ndarray]:
            out_q: list[xp.ndarray] = []
            out_key: list[xp.ndarray] = []
            out_d: list[xp.ndarray] = []
            order = xp.argsort(qidx, kind="stable")
            qidx_s, rids_s, rad_s = qidx[order], rids[order], radii[order]
            starts = xp.nonzero(
                xp.diff(qidx_s, prepend=qidx_s[0] - 1 if qidx_s.size else 0)
            )[0]
            bounds = xp.append(starts, qidx_s.shape[0])
            for g in range(starts.shape[0]):  # repro: allow(REP001): per-query fan-out, verification below is batched
                qi = int(qidx_s[bounds[g]])
                radius = float(rad_s[bounds[g]])
                ids = rids_s[bounds[g] : bounds[g + 1]]
                q = qs[qi]
                L = q.shape[0]
                sids, offs = self._expand_subtrails(ids)
                ok = offs <= self._series_lens[sids] - L
                offs, sids = offs[ok], sids[ok]
                if offs.size == 0:
                    continue
                keys = sids * stride + offs
                ks = xp.argsort(keys)
                keys, offs, sids = keys[ks], offs[ks], sids[ks]
                uniq, first = xp.unique(sids, return_index=True)
                sb = xp.append(first, sids.shape[0])
                for t in range(uniq.shape[0]):  # repro: allow(REP001): per-series window grouping, distances batched per series
                    offs_t = offs[sb[t] : sb[t + 1]]
                    x = self._series[int(uniq[t])]
                    windows = xp.lib.stride_tricks.sliding_window_view(x, L)[
                        offs_t
                    ]
                    kept, dists, _ = batch_euclidean_within(windows, q, radius)
                    if kept.size == 0:
                        continue
                    out_q.append(xp.full(kept.shape[0], qi, dtype=xp.int64))
                    out_key.append(keys[sb[t] : sb[t + 1]][kept])
                    out_d.append(dists)
            if not out_key:
                empty = xp.empty(0, dtype=xp.int64)
                return empty, empty, xp.empty(0)
            return (
                xp.concatenate(out_q),
                xp.concatenate(out_key),
                xp.concatenate(out_d),
            )

        return verify

    def brute_force_knn(self, query: ArrayLike, k: int) -> list[SubseqMatch]:  # repro: allow(REP001): reference brute-force path, scalar by design
        """Reference k-NN: scan every alignable window of every series.

        Sorted by ``(distance, series, offset)`` — the deterministic tie
        order :meth:`knn_query` reproduces.
        """
        if k != int(k) or k < 0:
            raise ValueError(f"k must be a non-negative integer, got {k}")
        q = self._check_query(query)
        L = q.shape[0]
        out: list[SubseqMatch] = []
        for sid, x in enumerate(self._series):
            if x.shape[0] < L:
                continue
            windows = xp.lib.stride_tricks.sliding_window_view(x, L)
            dists = xp.linalg.norm(windows - q, axis=1)
            out.extend(
                SubseqMatch(sid, off, float(d)) for off, d in enumerate(dists)
            )
        out.sort(key=lambda m: (m.distance, m.series_id, m.offset))
        return out[:k]

    # ------------------------------------------------------------------
    # querying — the recursive/scalar reference path
    # ------------------------------------------------------------------
    def range_query_reference(
        self, query: ArrayLike, eps: float, probe: str = "multipiece"
    ) -> list[SubseqMatch]:
        """Reference :meth:`range_query`: recursive probe, scalar refine.

        The pre-kernel implementation, kept verbatim (recursive
        ``tree.search`` per piece, Python-set candidate expansion, one
        early-abandon distance call per candidate) as the tested parity
        baseline for the columnar fast path.  ``probe="prefix"`` runs the
        scalar form of the longest-prefix reduction instead.
        """
        q = self._check_query(query, eps)
        if probe == "prefix":
            return self._refine(q, eps, self._prefix_candidates(q, eps))
        return self._refine(q, eps, self._multipiece_candidates(q, eps))

    def _window_candidates(
        self, piece: xp.ndarray, eps: float, shift: int, qlen: int
    ) -> set[tuple[int, int]]:
        """Candidate (series, query-start offset) pairs from one piece.

        ``shift`` is the piece's offset inside the full query: a window
        matching at data offset ``p`` implies the full query aligns at
        ``p - shift``.  Offsets whose alignment cannot fit the full query
        (``aligned + qlen > len(series)``) are skipped here, at expansion
        time, rather than costing a set insert and a refine iteration.
        """
        feat = encode_rect(sliding_features(piece, self.window, self.k))[0]
        pad = float(self._feat_pad(feat)[0])
        qrect = Rect(feat - eps - pad, feat + eps + pad)
        out: set[tuple[int, int]] = set()
        for entry in self.tree.search(qrect):
            sub = self._subtrails[entry.child]
            limit = self._series[sub.series_id].shape[0] - qlen
            for offset in range(sub.start, sub.end + 1):
                aligned = offset - shift
                if 0 <= aligned <= limit:
                    out.add((sub.series_id, aligned))
        return out

    def _prefix_candidates(
        self, q: xp.ndarray, eps: float
    ) -> set[tuple[int, int]]:
        """Scalar longest-prefix reduction: one probe at the full radius.

        A full-length match within ``eps`` implies its leading window
        matches the query's prefix within ``eps``, so the single prefix
        search is a candidate superset — FRM94's alternative to the
        multipiece split.
        """
        return self._window_candidates(q[: self.window], eps, 0, q.shape[0])

    def _multipiece_candidates(
        self, q: xp.ndarray, eps: float
    ) -> set[tuple[int, int]]:
        pieces = q.shape[0] // self.window
        piece_eps = eps / math.sqrt(pieces)
        out: set[tuple[int, int]] = set()
        for j in range(pieces):
            shift = j * self.window
            piece = q[shift : shift + self.window]
            out |= self._window_candidates(piece, piece_eps, shift, q.shape[0])
        return out

    def _refine(
        self, q: xp.ndarray, eps: float, candidates: set[tuple[int, int]]
    ) -> list[SubseqMatch]:
        from repro.core.similarity import euclidean_early_abandon

        L = q.shape[0]
        out: list[SubseqMatch] = []
        for series_id, offset in sorted(candidates):
            x = self._series[series_id]
            d = euclidean_early_abandon(x[offset : offset + L], q, eps)
            if d is not None:
                out.append(SubseqMatch(series_id, offset, d))
        out.sort(key=lambda m: (m.distance, m.series_id, m.offset))
        return out

    # ------------------------------------------------------------------
    def brute_force(self, query: ArrayLike, eps: float) -> list[SubseqMatch]:  # repro: allow(REP001): reference brute-force path, scalar by design
        """Reference scan over every offset of every series (for tests)."""
        q = xp.asarray(query, dtype=xp.float64)
        L = q.shape[0]
        out: list[SubseqMatch] = []
        for sid, x in enumerate(self._series):
            for offset in range(0, x.shape[0] - L + 1):
                d = float(xp.linalg.norm(x[offset : offset + L] - q))
                if d <= eps:
                    out.append(SubseqMatch(sid, offset, d))
        out.sort(key=lambda m: (m.distance, m.series_id, m.offset))
        return out
