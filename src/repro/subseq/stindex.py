"""The ST-index: an R*-tree over sub-trail MBRs ([FRM94]).

Indexing: every series is mapped to a *trail* — the curve its sliding
windows trace through feature space.  Storing one point per offset would
drown the tree, so consecutive trail points are grouped into *sub-trails*
and only each sub-trail's MBR is inserted, tagged with (series id, offset
range).  Two grouping policies are provided:

* ``"fixed"`` — chunks of a constant number of offsets (FRM94's
  I-fixed), and
* ``"adaptive"`` — a greedy version of FRM94's I-adaptive: a sub-trail is
  cut when admitting the next point would raise the marginal cost — the
  MBR's margin per enclosed point — rather than lower it.

Querying (Algorithm: range search):

* query length == window ``w``: build the eps-ball MBR around the query's
  feature point, collect intersecting sub-trails, then verify every
  offset they cover against the raw series (early abandoning) — a
  two-step filter-and-refine with no false dismissals, since the
  truncated-spectrum distance lower-bounds the true window distance.
* query length ``L > w`` (multipiece / "PrefixSearch"): split the query
  into ``p = floor(L / w)`` disjoint pieces; if the whole match is within
  ``eps``, some piece is within ``eps / sqrt(p)`` of its aligned window,
  so the union of piece searches (with shifted offsets) is a candidate
  superset; refine on the full length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.rtree.geometry import Rect
from repro.rtree.rstar import RStarTree
from repro.subseq.window import encode_rect, sliding_features

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class SubseqMatch:
    """One verified subsequence match."""

    series_id: int
    offset: int
    distance: float


@dataclass
class _SubTrail:
    series_id: int
    start: int  # first window offset covered
    end: int  # last window offset covered (inclusive)


class STIndex:
    """Subsequence index over a collection of series.

    Args:
        window: window length ``w`` (the minimum query length).
        k: DFT coefficients retained per window.
        grouping: ``"adaptive"`` (default) or ``"fixed"``.
        chunk: sub-trail size for the fixed policy (and the adaptive
            policy's upper bound).
        max_entries: R*-tree fanout.
    """

    def __init__(
        self,
        window: int,
        k: int = 3,
        grouping: str = "adaptive",
        chunk: int = 16,
        max_entries: int = 32,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 1 <= k <= window:
            raise ValueError(f"k must be in [1, {window}], got {k}")
        if grouping not in ("fixed", "adaptive"):
            raise ValueError(
                f"grouping must be 'fixed' or 'adaptive', got {grouping!r}"
            )
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.window = window
        self.k = k
        self.grouping = grouping
        self.chunk = chunk
        self.dim = 2 * k
        self.tree = RStarTree(self.dim, max_entries=max_entries)
        self._series: list[np.ndarray] = []
        self._subtrails: list[_SubTrail] = []

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_series(self, series: ArrayLike) -> int:
        """Index a series; returns its id.  Series shorter than the window
        are rejected."""
        x = np.asarray(series, dtype=np.float64).copy()
        if x.ndim != 1 or x.shape[0] < self.window:
            raise ValueError(
                f"series must be 1-D with length >= {self.window}, got {x.shape}"
            )
        series_id = len(self._series)
        self._series.append(x)
        points = encode_rect(sliding_features(x, self.window, self.k))
        for start, end in self._group(points):
            rect = Rect(
                points[start : end + 1].min(axis=0),
                points[start : end + 1].max(axis=0),
            )
            self._subtrails.append(_SubTrail(series_id, start, end))
            self.tree.insert(rect, len(self._subtrails) - 1)
        return series_id

    def _group(self, points: np.ndarray) -> list[tuple[int, int]]:
        m = points.shape[0]
        if self.grouping == "fixed":
            return [
                (s, min(s + self.chunk - 1, m - 1)) for s in range(0, m, self.chunk)
            ]
        # Greedy adaptive: extend while the MBR margin per enclosed point
        # stays roughly flat.  Smooth trails (consecutive windows overlap
        # in w-1 values, so successive feature points are close) pack many
        # offsets per MBR; a sharp trail turn raises the marginal cost and
        # cuts the sub-trail.  The 1.3 growth factor and the minimum run of
        # 4 keep smooth stock trails at ~chunk offsets per MBR instead of
        # fragmenting on every small wiggle.
        groups: list[tuple[int, int]] = []
        start = 0
        lo = points[0].copy()
        hi = points[0].copy()
        margin = 0.0
        count = 1
        for i in range(1, m):
            new_lo = np.minimum(lo, points[i])
            new_hi = np.maximum(hi, points[i])
            new_margin = float(np.sum(new_hi - new_lo))
            grown_cost = new_margin / (count + 1)
            old_cost = margin / count if count else 0.0
            if count >= self.chunk or (
                count >= 4 and old_cost > 0 and grown_cost > 1.3 * old_cost
            ):
                groups.append((start, i - 1))
                start = i
                lo = points[i].copy()
                hi = points[i].copy()
                margin = 0.0
                count = 1
            else:
                lo, hi = new_lo, new_hi
                margin = new_margin
                count += 1
        groups.append((start, m - 1))
        return groups

    @property
    def num_series(self) -> int:
        return len(self._series)

    @property
    def num_subtrails(self) -> int:
        return len(self._subtrails)

    def series(self, series_id: int) -> np.ndarray:
        """The raw series stored under ``series_id``."""
        return self._series[series_id]

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def range_query(self, query: ArrayLike, eps: float) -> list[SubseqMatch]:
        """All subsequences within ``eps`` of ``query``.

        The query must be at least one window long; longer queries go
        through the multipiece reduction.  Matches report the best offset
        semantics of [FRM94]: every qualifying offset is returned.
        """
        q = np.asarray(query, dtype=np.float64)
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        if q.ndim != 1 or q.shape[0] < self.window:
            raise ValueError(
                f"query must be 1-D with length >= {self.window}, got {q.shape}"
            )
        if q.shape[0] == self.window:
            candidates = self._window_candidates(q, eps, shift=0)
        else:
            candidates = self._multipiece_candidates(q, eps)
        return self._refine(q, eps, candidates)

    def _window_candidates(
        self, piece: np.ndarray, eps: float, shift: int
    ) -> set[tuple[int, int]]:
        """Candidate (series, query-start offset) pairs from one piece.

        ``shift`` is the piece's offset inside the full query: a window
        matching at data offset ``p`` implies the full query aligns at
        ``p - shift``.
        """
        feat = encode_rect(sliding_features(piece, self.window, self.k))[0]
        # Pad by a numerical tolerance: the trail features come from the
        # O(k) incremental recurrence, the query's from a fresh FFT, and
        # their last-ulp disagreement must not dismiss an exact match at
        # eps == 0.  Padding only widens the candidate set (Lemma 1 safe).
        pad = 1e-7 * (1.0 + float(np.max(np.abs(feat))))
        qrect = Rect(feat - eps - pad, feat + eps + pad)
        out: set[tuple[int, int]] = set()
        for entry in self.tree.search(qrect):
            sub = self._subtrails[entry.child]
            for offset in range(sub.start, sub.end + 1):
                aligned = offset - shift
                if aligned >= 0:
                    out.add((sub.series_id, aligned))
        return out

    def _multipiece_candidates(
        self, q: np.ndarray, eps: float
    ) -> set[tuple[int, int]]:
        pieces = q.shape[0] // self.window
        piece_eps = eps / math.sqrt(pieces)
        out: set[tuple[int, int]] = set()
        for j in range(pieces):
            shift = j * self.window
            piece = q[shift : shift + self.window]
            out |= self._window_candidates(piece, piece_eps, shift)
        return out

    def _refine(
        self, q: np.ndarray, eps: float, candidates: set[tuple[int, int]]
    ) -> list[SubseqMatch]:
        from repro.core.similarity import euclidean_early_abandon

        L = q.shape[0]
        out: list[SubseqMatch] = []
        for series_id, offset in sorted(candidates):
            x = self._series[series_id]
            if offset + L > x.shape[0]:
                continue
            d = euclidean_early_abandon(x[offset : offset + L], q, eps)
            if d is not None:
                out.append(SubseqMatch(series_id, offset, d))
        out.sort(key=lambda m: (m.distance, m.series_id, m.offset))
        return out

    # ------------------------------------------------------------------
    def brute_force(self, query: ArrayLike, eps: float) -> list[SubseqMatch]:
        """Reference scan over every offset of every series (for tests)."""
        q = np.asarray(query, dtype=np.float64)
        L = q.shape[0]
        out: list[SubseqMatch] = []
        for sid, x in enumerate(self._series):
            for offset in range(0, x.shape[0] - L + 1):
                d = float(np.linalg.norm(x[offset : offset + L] - q))
                if d <= eps:
                    out.append(SubseqMatch(sid, offset, d))
        out.sort(key=lambda m: (m.distance, m.series_id, m.offset))
        return out
