"""Sliding-window DFT features for subsequence matching.

For a series ``x`` of length ``n`` and a window of length ``w``, every
offset ``p`` in ``0..n-w`` yields the unitary DFT of ``x[p:p+w]``; its
first ``k`` coefficients are the window's feature point.  Computing each
window independently costs ``O(w log w)``; the classic trick ([FRM94]
§4.2) updates all ``k`` retained coefficients in ``O(k)`` per step:

    ``X_f(p+1) = e^{j 2 pi f / w} * (X_f(p) + (x[p+w] - x[p]) / sqrt(w))``

Both paths are implemented; the incremental one is the default and the
FFT path cross-checks it in the tests.
"""

from __future__ import annotations

from typing import Union, Sequence

from repro.rtree.backend import xp

ArrayLike = Union[Sequence[float], xp.ndarray]


def sliding_windows(series: ArrayLike, w: int) -> xp.ndarray:
    """All length-``w`` windows of ``series`` as an ``(n-w+1, w)`` matrix."""
    x = xp.asarray(series, dtype=xp.float64)
    if x.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {x.shape}")
    n = x.shape[0]
    if not 1 <= w <= n:
        raise ValueError(f"window must be in [1, {n}], got {w}")
    return xp.lib.stride_tricks.sliding_window_view(x, w).copy()


def sliding_features(
    series: ArrayLike, w: int, k: int, method: str = "incremental"
) -> xp.ndarray:
    """First ``k`` unitary DFT coefficients of every window.

    Args:
        series: the time series.
        w: window (and minimum query) length.
        k: retained coefficients per window.
        method: ``"incremental"`` (O(k) per step) or ``"fft"``
            (per-window FFT; the reference path).

    Returns:
        complex array of shape ``(n - w + 1, k)``.
    """
    x = xp.asarray(series, dtype=xp.float64)
    n = x.shape[0]
    if not 1 <= w <= n:
        raise ValueError(f"window must be in [1, {n}], got {w}")
    if not 1 <= k <= w:
        raise ValueError(f"k must be in [1, {w}], got {k}")
    if method == "fft":
        return xp.fft.fft(sliding_windows(x, w), axis=1)[:, :k] / xp.sqrt(w)
    if method != "incremental":
        raise ValueError(f"method must be 'incremental' or 'fft', got {method!r}")
    num = n - w + 1
    out = xp.empty((num, k), dtype=xp.complex128)
    current = xp.fft.fft(x[:w])[:k] / xp.sqrt(w)
    out[0] = current
    if num == 1:
        return out
    twiddle = xp.exp(2j * xp.pi * xp.arange(k) / w)
    scale = 1.0 / xp.sqrt(w)
    for p in range(1, num):
        delta = (x[p + w - 1] - x[p - 1]) * scale
        current = twiddle * (current + delta)
        out[p] = current
    return out


def piece_features(pieces: ArrayLike, k: int) -> xp.ndarray:
    """First ``k`` unitary DFT coefficients of every *row* of ``pieces``.

    The batched form of the single-window case of :func:`sliding_features`
    (``n == w``): all query pieces of a probe batch go through **one** FFT
    call instead of one call per piece.  Row ``i`` equals
    ``sliding_features(pieces[i], w, k)[0]``.

    Args:
        pieces: ``(m, w)`` matrix, one window-length piece per row.
        k: retained coefficients per piece.

    Returns:
        complex array of shape ``(m, k)``.
    """
    p = xp.asarray(pieces, dtype=xp.float64)
    if p.ndim != 2:
        raise ValueError(f"pieces must be 2-D (m, w), got shape {p.shape}")
    w = p.shape[1]
    if not 1 <= k <= w:
        raise ValueError(f"k must be in [1, {w}], got {k}")
    return xp.fft.fft(p, axis=1)[:, :k] / xp.sqrt(w)


def prefix_features(queries: Sequence[ArrayLike], w: int, k: int) -> xp.ndarray:
    """First ``k`` DFT coefficients of each query's length-``w`` prefix.

    The probe side of FRM94's longest-prefix search and of subsequence
    k-NN: only the leading window of each (possibly longer) query is
    featurized, through one batched FFT (:func:`piece_features`).  Row
    ``i`` equals ``sliding_features(queries[i], w, k)[0]``.

    Args:
        queries: sequences, each of length ``>= w`` (lengths may differ).
        w: window length.
        k: retained coefficients per prefix.

    Returns:
        complex array of shape ``(m, k)``.
    """
    rows = [xp.asarray(q, dtype=xp.float64) for q in queries]
    for q in rows:
        if q.ndim != 1 or q.shape[0] < w:
            raise ValueError(
                f"every query must be 1-D with length >= {w}, got {q.shape}"
            )
    return piece_features(xp.stack([q[:w] for q in rows]), k)


def encode_rect(features: xp.ndarray) -> xp.ndarray:
    """Interleave complex window features into real index coordinates.

    Coefficient ``i`` occupies dimensions ``2i`` (real) and ``2i+1``
    (imaginary), matching ``S_rect`` of :mod:`repro.core.features`.
    """
    m, k = features.shape
    out = xp.empty((m, 2 * k))
    out[:, 0::2] = features.real
    out[:, 1::2] = features.imag
    return out
