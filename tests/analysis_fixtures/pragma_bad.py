"""Must flag REP000: suppressions without reasons or with unknown rules."""
# repro: module-contract(hot-path)


def row_sums(rows):
    out = []
    for i in range(rows.shape[0]):  # repro: allow(REP001)
        out.append(float(rows[i].sum()))
    return out


def other(rows):
    total = 0.0
    for i in range(rows.shape[0]):  # repro: allow(REP999): no such rule
        total += float(rows[i].sum())
    return total
