"""Must pass: reviewed pragmas silence REP001 at statement and def scope."""
# repro: module-contract(hot-path)


def row_sums(rows):
    out = []
    for i in range(rows.shape[0]):  # repro: allow(REP001): fixture exercising statement-scope suppression
        out.append(float(rows[i].sum()))
    return out


def reference_scan(rows, q):  # repro: allow(REP001): reference implementation, scalar by design
    best = None
    for i in range(rows.shape[0]):
        d = abs(float(rows[i].sum()) - q)
        if best is None or d < best:
            best = d
    return best
