"""Must flag REP001: scalar loop over array rows in a hot-path module."""
# repro: module-contract(hot-path)


def row_sums(rows):
    out = []
    for i in range(rows.shape[0]):
        out.append(float(rows[i].sum()))
    return out


def pairs(lows, highs):
    acc = 0.0
    for lo, hi in zip(lows, highs):
        acc += float(hi - lo)
    return acc
