"""Must pass REP001: vectorized reductions and non-array loops only."""
# repro: module-contract(hot-path)


def row_sums(rows):
    return rows.sum(axis=1)


def collect_options(options):
    chosen = []
    for key in options:
        chosen.append(key)
    return chosen
