"""Must flag REP002: mutation of frozen kernels outside construction."""


class FrozenRTree:
    def __init__(self, lows):
        self.entry_lows = lows

    def clobber(self):
        self.entry_lows = None


def smash(kernel: "FrozenRTree") -> None:
    kernel.size = 0


def rebuild(tree):
    frozen = frozen_kernel(tree)
    frozen.entry_count[0] = 7
    return frozen


def frozen_kernel(tree):
    return tree
