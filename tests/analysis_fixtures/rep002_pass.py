"""Must pass REP002: frozen instances assigned only during construction."""


class FrozenRTree:
    def __init__(self, lows):
        self.entry_lows = lows

    @classmethod
    def from_arrays(cls, arrays):
        obj = cls(arrays["lows"])
        obj.entry_highs = arrays["highs"]
        return obj

    def width(self):
        return self.entry_highs - self.entry_lows


def inspect(kernel: "FrozenRTree"):
    local_copy = kernel.entry_lows
    return local_copy
