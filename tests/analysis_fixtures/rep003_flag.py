"""Must flag REP003: direct numpy import in a backend-scoped module."""
# repro: module-contract(backend)

import numpy as np
from numpy.linalg import norm


def length(v):
    return norm(np.asarray(v))
