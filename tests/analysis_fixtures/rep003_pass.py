"""Must pass REP003: the array API arrives through the backend shim."""
# repro: module-contract(backend)

from repro.rtree.backend import xp


def length(v):
    return xp.linalg.norm(xp.asarray(v))
