"""Must flag REP004: direct and mutual recursion in a kernel module."""
# repro: module-contract(kernel)


def descend(node):
    if node.is_leaf:
        return [node]
    out = []
    for child in node.children:
        out.extend(descend(child))
    return out


def ping(n):
    return 0 if n == 0 else pong(n - 1)


def pong(n):
    return ping(n)


class Walker:
    def walk(self, node):
        if node is None:
            return 0
        return 1 + self.walk(node.next)
