"""Must pass REP004: iterative traversal with an explicit worklist."""
# repro: module-contract(kernel)


def descend(root):
    out = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            out.append(node)
        else:
            stack.extend(node.children)
    return out


def helper(x):
    return shared(x)


def shared(x):
    return x + 1
