"""Must flag REP005: unbudgeted frontier loop + unvalidated query entry."""
# repro: module-contract(kernel)


def expand_all(root, budget):
    frontier = [root]
    seen = []
    while frontier:
        node = frontier.pop()
        seen.append(node)
        frontier.extend(node.children)
    return seen


# repro: query-entry
def range_query(index, q, eps):
    return index.probe(q, eps)
