"""Must pass REP005: budget-checked frontier + validated query entry."""
# repro: module-contract(kernel)


def expand_all(root, budget):
    frontier = [root]
    seen = []
    while frontier:
        budget.check(len(frontier), where="expand_all")
        node = frontier.pop()
        seen.append(node)
        frontier.extend(node.children)
    return seen


# repro: query-entry
def range_query(index, q, eps):
    q = require_finite(q, "query")
    return index.probe(q, eps)


def require_finite(values, what):
    return values
