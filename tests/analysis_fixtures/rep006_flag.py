"""Must flag REP006: bare and swallowed broad excepts in storage code."""
# repro: module-contract(storage)


def read_page(path):
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except:  # noqa: E722
        return None


def load_manifest(path):
    try:
        return open(path).read()
    except Exception:
        return None
