"""Must pass REP006: typed catches, and broad catches that wrap-and-raise."""
# repro: module-contract(storage)


class PersistError(RuntimeError):
    pass


def read_page(path):
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except FileNotFoundError:
        return None


def load_manifest(path):
    try:
        return open(path).read()
    except Exception as exc:
        raise PersistError(f"unreadable manifest {path!r}") from exc
