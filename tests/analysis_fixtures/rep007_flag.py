"""Must flag REP007: threading primitives outside the parallel seam."""
# repro: module-contract(serial)

import threading
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import Pool


def fan_out(tasks):
    lock = threading.Lock()
    with ThreadPoolExecutor() as pool, Pool() as procs:
        del lock, procs
        return [pool.submit(t) for t in tasks]
