"""Must pass REP007: parallelism arrives through the executor seam."""
# repro: module-contract(serial)

from repro.rtree.parallel import KernelExecutor


def fan_out(kernel, qlows, qhighs):
    executor = KernelExecutor(workers="auto")
    return executor.range_ids_many(kernel, qlows, qhighs)
