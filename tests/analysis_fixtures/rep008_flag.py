"""Must flag REP008: pool interactions outside the supervisor."""
# repro: module-contract(parallel)


def collect(futures):
    # A bare result loop: the first worker exception abandons the rest
    # in flight and no watchdog bounds the wait.
    return [f.result() for f in futures]


def fire_and_forget(pool, task):
    # The Future is dropped, so a worker exception is silently lost.
    pool.submit(task)
