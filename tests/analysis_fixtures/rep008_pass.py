"""Must pass REP008: pool waits live in a marked supervisor."""
# repro: module-contract(parallel)


# repro: supervisor
def supervise(pool, tasks):
    futures = [pool.submit(task) for task in tasks]
    return [f.result() for f in futures]


def fan_out(pool, tasks):
    return supervise(pool, tasks)
