"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SequenceRelation, make_stock_universe
from repro.data.synthetic import random_walks
from repro.rtree.node import MemoryNodeStore, PagedNodeStore


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def stock_relation() -> SequenceRelation:
    """A small, session-cached stock universe (150 series of length 128)."""
    return make_stock_universe(count=150, length=128, seed=7)


@pytest.fixture(scope="session")
def walk_matrix() -> np.ndarray:
    """200 paper-style random walks of length 64."""
    return random_walks(200, 64, seed=99)


def make_store(kind: str, dim: int):
    """Instantiate a node store by name ('memory' or 'paged')."""
    if kind == "memory":
        return MemoryNodeStore()
    return PagedNodeStore(dim, buffer_capacity=64)


@pytest.fixture(params=["memory", "paged"])
def store_kind(request) -> str:
    """Parametrises tree tests over both storage backends."""
    return request.param
