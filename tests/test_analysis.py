"""Tests for the repro-lint contract checker (:mod:`repro.analysis`).

The fixture corpus under ``tests/analysis_fixtures/`` holds one
must-flag and one must-pass module per rule; the suite asserts each rule
fires exactly where it should, that pragma suppression works at both
statement and definition scope (and that bad pragmas are themselves
violations), and that the CLI's JSON output and exit codes are stable.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import LintEngine, all_rules
from repro.analysis.cli import main as cli_main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
RULE_IDS = (
    "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
    "REP008",
)


def rules_hit(path: Path) -> set[str]:
    report = LintEngine().check_file(path)
    return {v.rule for v in report.violations}


# ----------------------------------------------------------------------
# every rule fires on its must-flag fixture and stays quiet on must-pass
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fires_on_flag_fixture(rule_id: str) -> None:
    hit = rules_hit(FIXTURES / f"{rule_id.lower()}_flag.py")
    assert rule_id in hit


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_quiet_on_pass_fixture(rule_id: str) -> None:
    hit = rules_hit(FIXTURES / f"{rule_id.lower()}_pass.py")
    assert rule_id not in hit


def test_pass_fixtures_fully_clean() -> None:
    for rule_id in RULE_IDS:
        report = LintEngine().check_file(FIXTURES / f"{rule_id.lower()}_pass.py")
        assert report.violations == [], report.violations


# ----------------------------------------------------------------------
# rule specifics
# ----------------------------------------------------------------------
def test_rep001_counts_both_loop_shapes() -> None:
    report = LintEngine(rules=["REP001"]).check_file(FIXTURES / "rep001_flag.py")
    assert len(report.violations) == 2  # range(.shape) and zip(...)


def test_rep002_flags_method_param_and_producer_stores() -> None:
    report = LintEngine(rules=["REP002"]).check_file(FIXTURES / "rep002_flag.py")
    lines = sorted(v.line for v in report.violations)
    assert len(lines) == 3  # self.-store, annotated param, producer-bound local


def test_rep004_names_every_recursive_function() -> None:
    report = LintEngine(rules=["REP004"]).check_file(FIXTURES / "rep004_flag.py")
    messages = " ".join(v.message for v in report.violations)
    for name in ("descend", "ping", "pong", "Walker.walk"):
        assert name in messages


def test_rep005_flags_both_halves() -> None:
    report = LintEngine(rules=["REP005"]).check_file(FIXTURES / "rep005_flag.py")
    messages = [v.message for v in report.violations]
    assert len(messages) == 2
    assert any("frontier loop" in m for m in messages)
    assert any("NaN/inf" in m for m in messages)


def test_rep006_flags_bare_and_swallowed_broad() -> None:
    report = LintEngine(rules=["REP006"]).check_file(FIXTURES / "rep006_flag.py")
    assert len(report.violations) == 2


def test_rep007_flags_every_import_form() -> None:
    report = LintEngine(rules=["REP007"]).check_file(FIXTURES / "rep007_flag.py")
    assert len(report.violations) == 3  # threading, concurrent, multiprocessing


def test_rep007_exempts_the_parallel_seam() -> None:
    source = "from concurrent.futures import ThreadPoolExecutor\n"
    report = LintEngine(rules=["REP007"]).check_source(
        source, "src/repro/rtree/parallel.py"
    )
    assert report.violations == []


def test_rep007_covers_package_modules_without_a_marker() -> None:
    source = "import threading\n"
    report = LintEngine(rules=["REP007"]).check_source(
        source, "src/repro/core/anything.py"
    )
    assert [v.rule for v in report.violations] == ["REP007"]


def test_rep008_flags_bare_result_and_dropped_submit() -> None:
    report = LintEngine(rules=["REP008"]).check_file(FIXTURES / "rep008_flag.py")
    assert len(report.violations) == 2  # result loop + fire-and-forget submit


def test_rep008_allows_the_registered_supervisor() -> None:
    source = (
        "class KernelExecutor:\n"
        "    def _run(self, futures):\n"
        "        return [f.result() for f in futures]\n"
    )
    report = LintEngine(rules=["REP008"]).check_source(
        source, "src/repro/rtree/parallel.py"
    )
    assert report.violations == []


def test_rep008_covers_the_parallel_seam_without_a_marker() -> None:
    source = "def drain(fs):\n    return [f.result() for f in fs]\n"
    report = LintEngine(rules=["REP008"]).check_source(
        source, "src/repro/rtree/parallel.py"
    )
    assert [v.rule for v in report.violations] == ["REP008"]


def test_scope_markers_only_apply_in_their_scope() -> None:
    # The hot-path fixture is not storage-scoped: REP006 never looks at it.
    source = (FIXTURES / "rep001_flag.py").read_text()
    report = LintEngine(rules=["REP006"]).check_source(source, "rep001_flag.py")
    assert report.violations == []


def test_unscoped_module_is_exempt_from_scoped_rules() -> None:
    source = "def f(rows):\n    for i in range(rows.shape[0]):\n        pass\n"
    report = LintEngine(rules=["REP001"]).check_source(source, "free_module.py")
    assert report.violations == []


# ----------------------------------------------------------------------
# pragma layer
# ----------------------------------------------------------------------
def test_pragmas_suppress_at_statement_and_def_scope() -> None:
    report = LintEngine().check_file(FIXTURES / "pragma_suppress.py")
    assert report.violations == [], report.violations


def test_bad_pragmas_are_rep000_and_do_not_suppress() -> None:
    report = LintEngine().check_file(FIXTURES / "pragma_bad.py")
    by_rule: dict[str, int] = {}
    for v in report.violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    assert by_rule.get("REP000") == 2  # missing reason + unknown rule
    assert by_rule.get("REP001") == 2  # neither pragma suppressed anything


def test_pragma_above_the_flagged_line_suppresses() -> None:
    source = (
        "# repro: module-contract(hot-path)\n"
        "def f(rows):\n"
        "    # repro: allow(REP001): next-line suppression form\n"
        "    for i in range(rows.shape[0]):\n"
        "        pass\n"
    )
    report = LintEngine(rules=["REP001"]).check_source(source, "inline.py")
    assert report.violations == []


def test_syntax_error_reports_rep000() -> None:
    report = LintEngine().check_source("def broken(:\n", "broken.py")
    assert report.parse_error is not None
    assert [v.rule for v in report.violations] == ["REP000"]


# ----------------------------------------------------------------------
# engine API
# ----------------------------------------------------------------------
def test_unknown_rule_selection_raises() -> None:
    with pytest.raises(ValueError, match="REP42"):
        LintEngine(rules=["REP42"])


def test_registry_exposes_all_rules() -> None:
    assert [r.rule_id for r in all_rules()] == list(RULE_IDS)


def test_linter_does_not_check_itself() -> None:
    report = LintEngine().run(["src/repro/analysis"])
    assert report.files == []


def test_src_and_benchmarks_are_clean() -> None:
    """The repo's own contract: the tree the CI gate checks stays clean."""
    report = LintEngine().run(["src", "benchmarks"])
    assert report.ok, [v.render() for v in report.violations]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes(capsys: pytest.CaptureFixture) -> None:
    assert cli_main([str(FIXTURES / "rep001_pass.py")]) == 0
    assert cli_main([str(FIXTURES / "rep001_flag.py")]) == 1
    assert cli_main(["--rules", "NOPE", str(FIXTURES)]) == 2
    assert cli_main([str(FIXTURES / "no_such_file.py")]) == 2
    assert cli_main([]) == 2
    capsys.readouterr()


def test_cli_human_output_format(capsys: pytest.CaptureFixture) -> None:
    cli_main([str(FIXTURES / "rep001_flag.py")])
    out = capsys.readouterr().out
    assert "REP001" in out
    assert "repro-lint:" in out and "violation" in out


def test_cli_json_output(capsys: pytest.CaptureFixture) -> None:
    code = cli_main(["--format", "json", str(FIXTURES / "rep001_flag.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["violation_count"] == len(payload["violations"]) == 2
    first = payload["violations"][0]
    assert set(first) == {"rule", "path", "line", "col", "message"}
    assert set(payload["rules"]) == set(RULE_IDS)


def test_cli_rule_subset_runs_only_selected(capsys: pytest.CaptureFixture) -> None:
    code = cli_main(
        ["--rules", "REP006", "--format", "json", str(FIXTURES / "rep001_flag.py")]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["violations"] == []


def test_cli_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out
