"""The batch execution layer agrees exactly with the scalar reference paths.

Every vectorised hot path introduced by the batch layer — extraction,
coefficient encoding, candidate verification, join verification, and the
R-tree lower-bound metrics — is checked against its scalar counterpart
across both coordinate systems, both feature-space layouts, and with and
without ``exploit_symmetry``.  Query-level answers (range, k-NN, all-pairs)
must be identical ``(id, distance)`` sets within float tolerance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import queries as q
from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace, PlainDFTSpace
from repro.core.normal_form import (
    mean_std,
    mean_std_many,
    normal_form,
    normal_form_many,
)
from repro.core.similarity import batch_euclidean_within, euclidean_early_abandon
from repro.core.transforms import identity, moving_average, reverse, scale, shift
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.dft import dft, dft_many
from repro.rtree.geometry import Rect
from repro.storage.stats import IOStats

N = 32


def spaces(n=N):
    """Every (space, coord, symmetry) combination the batch layer covers."""
    out = []
    for coord in ("rect", "polar"):
        for sym in (False, True):
            out.append(PlainDFTSpace(n, 3, coord=coord, exploit_symmetry=sym))
            out.append(NormalFormSpace(n, 2, coord=coord, exploit_symmetry=sym))
    return out


def matches_equal(a, b):
    return [(r, round(d, 9)) for r, d in a] == [(r, round(d, 9)) for r, d in b]


def triples_equal(a, b):
    return [(i, j, round(d, 9)) for i, j, d in a] == [
        (i, j, round(d, 9)) for i, j, d in b
    ]


# ----------------------------------------------------------------------
# extraction / encoding
# ----------------------------------------------------------------------
class TestBatchedExtraction:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 20))
    def test_dft_many_rowwise(self, seed, m):
        rows = random_walks(m, N, seed=seed)
        assert np.allclose(dft_many(rows), np.stack([dft(r) for r in rows]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 20))
    def test_normal_form_many_rowwise(self, seed, m):
        rows = random_walks(m, N, seed=seed)
        rows[0] = 3.5  # include a constant series (std floor path)
        want = np.stack([normal_form(r) for r in rows])
        assert np.allclose(normal_form_many(rows), want)
        want_ms = np.array([mean_std(r) for r in rows])
        assert np.allclose(mean_std_many(rows), want_ms)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 12))
    def test_extract_many_matches_scalar_extract(self, seed, m):
        rows = random_walks(m, N, seed=seed)
        for space in spaces():
            batched = space.extract_many(rows)
            scalar = np.stack([space.extract(r) for r in rows])
            assert np.allclose(batched, scalar, atol=1e-10), type(space).__name__

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 12))
    def test_spectra_and_encoding_match_scalar(self, seed, m):
        rows = random_walks(m, N, seed=seed)
        for space in spaces():
            spec_b = space.series_spectrum_many(rows)
            spec_s = np.stack([space.series_spectrum(r) for r in rows])
            assert np.allclose(spec_b, spec_s)
            coeffs = spec_s[:, space.freqs]
            enc_b = space.encode_coefficients_many(coeffs)
            enc_s = np.stack([space.encode_coefficients(c) for c in coeffs])
            assert np.allclose(enc_b, enc_s)

    def test_extract_many_with_spectra_consistent(self):
        rows = random_walks(15, N, seed=3)
        for space in spaces():
            points, spectra = space.extract_many_with_spectra(rows)
            assert np.allclose(points, space.extract_many(rows), atol=1e-10)
            assert np.allclose(spectra, space.series_spectrum_many(rows))

    def test_extract_many_accepts_empty_matrix(self):
        for space in spaces():
            out = space.extract_many(np.empty((0, N)))
            assert out.shape == (0, space.dim)
            spec = space.series_spectrum_many(np.empty((0, N)))
            assert spec.shape == (0, N) and spec.dtype == np.complex128
            points, spectra = space.extract_many_with_spectra(np.empty((0, N)))
            assert points.shape == (0, space.dim)
            assert spectra.shape == (0, N)

    def test_engine_builds_from_empty_relation_without_special_casing(self):
        eng = SimilarityEngine(SequenceRelation(16))
        assert eng.points.shape == (0, eng.space.dim)
        assert eng.ground_spectra.shape == (0, 16)
        assert eng.range_query(np.zeros(16), 1.0) == []

    def test_circular_mask_is_cached_and_correct(self):
        for space in spaces():
            first = space.circular_mask
            assert space.circular_mask is first  # cached, not rebuilt
            if space.coord == "rect":
                assert first is None
            else:
                want = np.zeros(space.dim, dtype=bool)
                for i in range(space.k):
                    want[space.aux_dims + 2 * i + 1] = True
                assert np.array_equal(first, want)


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------
class TestBatchedVerification:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(0, 25),
        eps=st.floats(0.0, 20.0),
        block=st.integers(1, 11),
    )
    def test_batch_euclidean_within_matches_scalar(self, seed, m, eps, block):
        rows = dft_many(random_walks(max(m, 1), N, seed=seed))[:m]
        qv = dft(random_walks(1, N, seed=seed + 1)[0])
        kept, dists, abandoned = batch_euclidean_within(rows, qv, eps, block=block)
        want = [
            (i, d)
            for i, row in enumerate(rows)
            if (d := euclidean_early_abandon(row, qv, eps, block=block)) is not None
        ]
        assert list(kept) == [i for i, _ in want]
        assert np.allclose(dists, [d for _, d in want])
        assert abandoned == m - len(want)

    def test_batch_euclidean_within_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            batch_euclidean_within(np.zeros((3, 4)), np.zeros(5), 1.0)
        with pytest.raises(ValueError):
            batch_euclidean_within(np.zeros((3, 4)), np.zeros(4), -1.0)


# ----------------------------------------------------------------------
# queries and joins
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def walk_engines():
    rel = SequenceRelation.from_matrix(random_walks(60, N, seed=11))
    return rel, [
        SimilarityEngine(rel, space=space)
        for space in (
            NormalFormSpace(N, 2, coord="polar"),
            NormalFormSpace(N, 2, coord="rect"),
            PlainDFTSpace(N, 3, coord="polar"),
            PlainDFTSpace(N, 3, coord="rect", exploit_symmetry=True),
        )
    ]


def transform_pool(space):
    pool = [None, identity(N), scale(N, 0.5), reverse(N)]
    if space.coord == "polar":
        pool.append(moving_average(N, 4))
    else:
        pool.append(shift(N, 2.0))
    return pool


class TestBatchedQueries:
    @pytest.mark.parametrize("eps", [0.5, 2.0, 8.0])
    def test_range_query_batched_equals_scalar(self, walk_engines, eps):
        rel, engines = walk_engines
        for eng in engines:
            for t in transform_pool(eng.space):
                series = rel.get(7)
                spec = eng.query_spectrum(series)
                pt = eng.query_point(series)
                args = (eng.tree, eng.space, eng.ground_spectra, spec, pt, eps)
                a = q.range_query(*args, transformation=t, batched=True)
                b = q.range_query(*args, transformation=t, batched=False)
                assert matches_equal(a, b)

    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_knn_query_batched_equals_scalar(self, walk_engines, k):
        rel, engines = walk_engines
        for eng in engines:
            for t in transform_pool(eng.space):
                series = rel.get(3)
                spec = eng.query_spectrum(series)
                pt = eng.query_point(series)
                args = (eng.tree, eng.space, eng.ground_spectra, spec, pt, k)
                a = q.knn_query(*args, transformation=t, batched=True)
                b = q.knn_query(*args, transformation=t, batched=False)
                assert matches_equal(a, b)

    def test_engine_batch_apis_equal_single_query_loop(self, walk_engines):
        rel, engines = walk_engines
        eng = engines[0]
        queries = rel.matrix[:8]
        t = moving_average(N, 4)
        batched = eng.range_query_batch(queries, 2.0, transformation=t)
        for i, series in enumerate(queries):
            assert matches_equal(
                batched[i], eng.range_query(series, 2.0, transformation=t)
            )
        batched_k = eng.knn_query_batch(queries, 4, transformation=t)
        for i, series in enumerate(queries):
            assert matches_equal(
                batched_k[i], eng.knn_query(series, 4, transformation=t)
            )
        # transform_query shares the affine map across the whole batch
        sym = eng.range_query_batch(
            queries, 2.0, transformation=t, transform_query=True
        )
        for i, series in enumerate(queries):
            assert matches_equal(
                sym[i],
                eng.range_query(series, 2.0, transformation=t, transform_query=True),
            )


class TestBatchedJoins:
    def test_all_pairs_scan_batched_equals_scalar(self, walk_engines):
        rel, engines = walk_engines
        eng = engines[0]
        for t in (None, moving_average(N, 4)):
            for abandon in (False, True):
                a = q.all_pairs_scan(
                    eng.ground_spectra, 1.5, t, early_abandon=abandon, batched=True
                )
                b = q.all_pairs_scan(
                    eng.ground_spectra, 1.5, t, early_abandon=abandon, batched=False
                )
                assert triples_equal(a, b)

    def test_all_pairs_scan_transform_hoist_regression(self, walk_engines):
        """The O(m) transform hoist must not change any reported pair.

        Reference: re-apply the transformation inside the inner loop (the
        seed's O(m²) behaviour) and compare all four method variants.
        """
        rel, engines = walk_engines
        eng = engines[0]
        t = moving_average(N, 4)
        spectra = eng.ground_spectra
        eps = 1.5
        want = []
        for i in range(spectra.shape[0]):
            ti = t.apply_spectrum(spectra[i])
            for j in range(i + 1, spectra.shape[0]):
                tj = t.apply_spectrum(spectra[j])
                d = float(np.linalg.norm(ti - tj))
                if d <= eps:
                    want.append((i, j, d))
        for abandon in (False, True):
            for batched in (True, False):
                got = q.all_pairs_scan(
                    spectra, eps, t, early_abandon=abandon, batched=batched
                )
                assert triples_equal(got, want)

    def test_all_pairs_index_and_tree_join_batched_equal_scalar(self, walk_engines):
        rel, engines = walk_engines
        eng = engines[0]
        for t in (None, moving_average(N, 4)):
            ai = q.all_pairs_index(
                eng.tree, eng.space, eng.ground_spectra, eng.points, 1.5, t,
                batched=True,
            )
            bi = q.all_pairs_index(
                eng.tree, eng.space, eng.ground_spectra, eng.points, 1.5, t,
                batched=False,
            )
            assert triples_equal(ai, bi)
            at = q.all_pairs_tree_join(
                eng.tree, eng.space, eng.ground_spectra, 1.5, t, batched=True
            )
            bt = q.all_pairs_tree_join(
                eng.tree, eng.space, eng.ground_spectra, 1.5, t, batched=False
            )
            assert triples_equal(at, bt)

    def test_all_methods_agree_under_transformation(self, walk_engines):
        rel, engines = walk_engines
        eng = engines[0]
        t = moving_average(N, 4)
        eps = 1.0
        scan = eng.all_pairs(eps, t, method="scan")
        assert triples_equal(eng.all_pairs(eps, t, method="scan-abandon"), scan)
        assert triples_equal(eng.all_pairs(eps, t, method="index"), scan)
        assert triples_equal(eng.all_pairs(eps, t, method="tree-join"), scan)


# ----------------------------------------------------------------------
# traversal metrics
# ----------------------------------------------------------------------
class TestBatchedTraversalMetrics:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 15))
    def test_rect_mindist_many_matches_scalar(self, seed, m):
        rng = np.random.default_rng(seed)
        for space in spaces():
            dim = space.dim
            lo = rng.normal(size=(m, dim))
            hi = lo + rng.uniform(0.0, 2.0, size=(m, dim))
            lo[:, space.aux_dims :: 2] = np.abs(lo[:, space.aux_dims :: 2])
            hi[:, space.aux_dims :: 2] = (
                lo[:, space.aux_dims :: 2] + rng.uniform(0.0, 2.0, size=(m, space.k))
            )
            point = space.extract(random_walks(1, N, seed=seed + 1)[0])
            batched = space.rect_mindist_many(lo, hi, point)
            scalar = [space.rect_mindist(Rect(lo[i], hi[i]), point) for i in range(m)]
            assert np.allclose(batched, scalar, atol=1e-9), type(space).__name__

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 15))
    def test_point_dist_many_matches_scalar(self, seed, m):
        for space in spaces():
            pts = space.extract_many(random_walks(m, N, seed=seed))
            query = space.extract(random_walks(1, N, seed=seed + 1)[0])
            batched = space.point_dist_many(pts, query)
            scalar = [space.point_dist(p, query) for p in pts]
            assert np.allclose(batched, scalar, atol=1e-9), type(space).__name__

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 20))
    def test_rect_mindist_many_and_intersects_many_euclid(self, seed, m):
        rng = np.random.default_rng(seed)
        d = 4
        lo = rng.normal(size=(m, d))
        hi = lo + rng.uniform(0.0, 3.0, size=(m, d))
        p = rng.normal(size=d)
        assert np.allclose(
            Rect.mindist_many(lo, hi, p),
            [Rect(lo[i], hi[i]).mindist(p) for i in range(m)],
        )
        qlo = rng.normal(size=d)
        qhi = qlo + rng.uniform(0.0, 3.0, size=d)
        query = Rect(qlo, qhi)
        got = Rect.intersects_many(lo, hi, qlo, qhi)
        want = [Rect(lo[i], hi[i]).intersects(query) for i in range(m)]
        assert list(got) == want


# ----------------------------------------------------------------------
# stats accounting
# ----------------------------------------------------------------------
class TestVerificationStats:
    def test_range_query_splits_abandoned_and_completed(self, walk_engines):
        rel, engines = walk_engines
        for batched in (True, False):
            eng = SimilarityEngine(rel)
            eng.stats.reset()
            got = eng.range_query(rel.get(0), 1.0) if batched else q.range_query(
                eng.tree,
                eng.space,
                eng.ground_spectra,
                eng.query_spectrum(rel.get(0)),
                eng.query_point(rel.get(0)),
                1.0,
                stats=eng.stats,
                batched=False,
            )
            s = eng.stats
            assert s.verifications_completed == len(got)
            assert (
                s.verifications_completed + s.verifications_abandoned
                == s.candidate_count
            )
            assert s.distance_computations == s.candidate_count

    def test_stats_reset_and_snapshot_cover_new_counters(self):
        s = IOStats()
        s.verifications_completed = 3
        s.verifications_abandoned = 2
        snap = s.snapshot()
        assert snap["verifications_completed"] == 3
        assert snap["verifications_abandoned"] == 2
        s.reset()
        assert s.verifications_completed == 0
        assert s.verifications_abandoned == 0
