"""Query governance: ResourceBudget semantics across every query path.

The two properties that matter:

* an all-``None`` budget never fires — results are identical to the
  unbudgeted run on range, k-NN, join and subsequence paths;
* a binding budget terminates the query promptly — range-style paths
  raise :class:`QueryBudgetExceeded` (surfaced as ``QueryError`` by the
  language), k-NN paths truncate to exact partial results.
"""

import time

import numpy as np
import pytest

from repro.core.engine import SimilarityEngine
from repro.core.plan import QuerySpec
from repro.data.relation import SequenceRelation
from repro.data.synthetic import random_walks
from repro.storage.budget import QueryBudgetExceeded, ResourceBudget
from repro.subseq.stindex import STIndex

N, LENGTH = 60, 32


@pytest.fixture(scope="module")
def engine():
    rel = SequenceRelation.from_matrix(random_walks(N, LENGTH, seed=7))
    return SimilarityEngine(rel)


class TestResourceBudgetUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(deadline_ms=0)
        with pytest.raises(ValueError):
            ResourceBudget(deadline_ms=-5)

    def test_unlimited_budget_never_fires(self):
        b = ResourceBudget()
        assert b.unlimited
        b.start()
        assert b.exceeded(10**9) is None
        b.check(10**9)  # no raise
        b.charge_candidates(10**9)

    def test_deadline_fires(self):
        b = ResourceBudget(deadline_ms=0.001).start()
        time.sleep(0.002)
        assert b.exceeded() == "deadline"
        with pytest.raises(QueryBudgetExceeded) as exc:
            b.check()
        assert exc.value.kind == "deadline"

    def test_frontier_cap(self):
        b = ResourceBudget(max_frontier=100).start()
        assert b.exceeded(100) is None
        assert b.exceeded(101) == "frontier"

    def test_candidate_cap(self):
        b = ResourceBudget(max_candidates=10).start()
        b.charge_candidates(10)
        with pytest.raises(QueryBudgetExceeded) as exc:
            b.charge_candidates(1)
        assert exc.value.kind == "candidates"

    def test_start_rearms(self):
        b = ResourceBudget(deadline_ms=10_000, max_candidates=5).start()
        b.truncated = True
        b.consume(5)
        b.start()
        assert not b.truncated
        assert b.candidates == 0
        assert b.exceeded() is None  # fresh, far-away deadline

    def test_as_dict(self):
        d = ResourceBudget(deadline_ms=50, max_candidates=9).as_dict()
        assert d == {
            "deadline_ms": 50,
            "max_candidates": 9,
            "max_frontier": None,
            "truncated": False,
        }


class TestRangeBudget:
    def q(self, engine, budget, method="index"):
        return engine.plan(
            QuerySpec(
                kind="range", series=engine.relation.get(0), eps=8.0,
                method=method, budget=budget,
            )
        ).execute()

    def test_unlimited_parity(self, engine):
        free = self.q(engine, None)
        budgeted = self.q(engine, ResourceBudget())
        assert budgeted == free

    def test_candidate_cap_raises(self, engine):
        free = self.q(engine, None)
        assert free  # the query has candidates to cap
        with pytest.raises(QueryBudgetExceeded):
            self.q(engine, ResourceBudget(max_candidates=0))

    def test_deadline_raises_on_scan_too(self, engine):
        budget = ResourceBudget(deadline_ms=0.0001)
        budget.start()
        time.sleep(0.001)
        with pytest.raises(QueryBudgetExceeded):
            self.q(engine, budget, method="scan")

    def test_frontier_cap_raises(self, engine):
        with pytest.raises(QueryBudgetExceeded):
            self.q(engine, ResourceBudget(max_frontier=1))


class TestKnnBudget:
    def knn(self, engine, budget, k=5):
        return engine.plan(
            QuerySpec(
                kind="knn", series=engine.relation.get(3), k=k,
                method="index", budget=budget,
            )
        ).execute()

    def test_unlimited_parity(self, engine):
        free = self.knn(engine, None)
        budgeted = self.knn(engine, ResourceBudget())
        assert [r for r, _ in budgeted] == [r for r, _ in free]

    def test_truncation_returns_exact_partials(self, engine):
        budget = ResourceBudget(max_frontier=1)
        got = self.knn(engine, budget)
        assert budget.truncated
        assert len(got) <= 5
        # whatever was returned is exactly verified: distances match a
        # direct computation
        q = engine.relation.get(3)
        for rid, d in got:
            true = float(np.linalg.norm(engine.relation.get(rid) - q))
            assert d == pytest.approx(true, abs=1e-6)

    def test_batch_knn_parity(self, engine):
        qs = np.stack([engine.relation.get(i) for i in range(4)])
        free = engine.knn_query_batch(qs, k=3)
        spec = QuerySpec(
            kind="knn", series=qs, k=3, method="index",
            budget=ResourceBudget(),
        )
        budgeted = engine.plan(spec).execute()
        assert [[r for r, _ in row] for row in budgeted] == [
            [r for r, _ in row] for row in free
        ]


class TestJoinBudget:
    def test_unlimited_parity(self, engine):
        free = engine.plan(
            QuerySpec(kind="join", eps=3.0, method="index")
        ).execute()
        budgeted = engine.plan(
            QuerySpec(kind="join", eps=3.0, method="index", budget=ResourceBudget())
        ).execute()
        assert budgeted == free

    def test_deadline_raises(self, engine):
        budget = ResourceBudget(deadline_ms=0.0001)
        budget.start()
        time.sleep(0.001)
        with pytest.raises(QueryBudgetExceeded):
            engine.plan(
                QuerySpec(kind="join", eps=3.0, method="index", budget=budget)
            ).execute()


class TestSubseqBudget:
    """The acceptance workload: 200 series x 1024 points."""

    @pytest.fixture(scope="class")
    def stindex(self):
        idx = STIndex(window=64)
        idx.add_series_many(random_walks(200, 1024, seed=11))
        idx.kernel  # freeze once so timing below is pure query time
        return idx

    def test_budgeted_range_terminates_within_deadline(self, stindex):
        q = stindex.series(0)[:256] + 0.25
        budget = ResourceBudget(deadline_ms=0.01)
        t0 = time.perf_counter()
        with pytest.raises(QueryBudgetExceeded):
            stindex.plan(
                QuerySpec(
                    kind="subseq_range", series=q, eps=40.0, window=64,
                    budget=budget,
                )
            ).execute()
        # prompt termination: orders of magnitude under a second even
        # though the unbudgeted query visits thousands of windows
        assert time.perf_counter() - t0 < 2.0

    def test_unlimited_budget_matches_brute_force(self, stindex):
        q = stindex.series(3)[:128]
        eps = 10.0
        got = stindex.plan(
            QuerySpec(
                kind="subseq_range", series=q, eps=eps, window=64,
                budget=ResourceBudget(),
            )
        ).execute()
        expected = stindex.brute_force(q, eps)
        assert [(m.series_id, m.offset) for m in got] == [
            (m.series_id, m.offset) for m in expected
        ]

    def test_subseq_knn_unlimited_parity(self, stindex):
        q = stindex.series(5)[:96]
        free = stindex.plan(
            QuerySpec(kind="subseq_knn", series=q, k=4, window=64)
        ).execute()
        budgeted = stindex.plan(
            QuerySpec(
                kind="subseq_knn", series=q, k=4, window=64,
                budget=ResourceBudget(),
            )
        ).execute()
        assert [(m.series_id, m.offset) for m in budgeted] == [
            (m.series_id, m.offset) for m in free
        ]

    def test_subseq_knn_truncates(self, stindex):
        q = stindex.series(5)[:96]
        budget = ResourceBudget(max_frontier=1)
        got = stindex.plan(
            QuerySpec(
                kind="subseq_knn", series=q, k=4, window=64, budget=budget,
            )
        ).execute()
        assert budget.truncated
        assert len(got) <= 4

    def test_candidate_cap_raises(self, stindex):
        q = stindex.series(0)[:256] + 0.25
        with pytest.raises(QueryBudgetExceeded):
            stindex.plan(
                QuerySpec(
                    kind="subseq_range", series=q, eps=40.0, window=64,
                    budget=ResourceBudget(max_candidates=1),
                )
            ).execute()


class TestExplainBudget:
    def test_explain_reports_budget(self, engine):
        info = engine.explain(
            QuerySpec(
                kind="range", series=engine.relation.get(0), eps=2.0,
                budget=ResourceBudget(deadline_ms=25, max_candidates=500),
            )
        )
        assert info["budget"] == {
            "deadline_ms": 25,
            "max_candidates": 500,
            "max_frontier": None,
            "truncated": False,
        }
        assert info["degraded_from"] is None

    def test_explain_without_budget(self, engine):
        info = engine.explain(
            QuerySpec(kind="range", series=engine.relation.get(0), eps=2.0)
        )
        assert info["budget"] is None
