"""Chaos harness for the execution supervisor (ROADMAP item 2 robustness).

The invariant under test, for every compute failpoint × mode × shard
count: a query through the sharded :class:`KernelExecutor` returns the
**bit-identical serial answer** (after the supervisor's retry or
circuit-breaker fallback) or raises a **typed error**
(:class:`QueryBudgetExceeded` / :class:`ExecutorError`) — never a wrong
or partial answer, never a leaked worker thread, and never a wait that
outlives the query's ``ResourceBudget`` deadline by more than the
watchdog grace.

Faults are injected at the ``kernel.worker:range|knn|join`` sites of
:mod:`repro.storage.faults` (modes ``error``/``oom``/``slow``/``hang``),
which only the sharded block tasks pass through — the serial path is
untouched, which is itself asserted below.  Hypothesis drives the fault
schedules (site, mode, nth hit, worker count, stickiness) so shard/fault
interleavings beyond the hand-picked ones stay covered.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import SimilarityEngine
from repro.core.plan import QuerySpec
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.rtree.parallel import ExecutorError, KernelExecutor
from repro.storage import faults
from repro.storage.budget import QueryBudgetExceeded, ResourceBudget

N, LENGTH = 60, 32
SITES = ("range", "knn", "join")


@pytest.fixture(scope="module")
def relation():
    return SequenceRelation.from_matrix(random_walks(N, LENGTH, seed=77))


def normalize(rows):
    return [[(int(r), float(d)) for r, d in row] for row in rows]


def run_query(engine, site):
    m = engine.relation.matrix
    if site == "range":
        return normalize(engine.range_query_batch(m[:17], 6.0))
    if site == "knn":
        return normalize(engine.knn_query_batch(m[:17], 5))
    return [(int(a), int(b), float(d)) for a, b, d in engine.all_pairs(2.5)]


@pytest.fixture(scope="module")
def serial_answers(relation):
    engine = SimilarityEngine(relation, executor=KernelExecutor(workers=1))
    return {site: run_query(engine, site) for site in SITES}


def sharded_engine(relation, workers):
    return SimilarityEngine(
        relation, executor=KernelExecutor(workers=workers, min_block=1)
    )


def kernel_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-kernel")
    ]


def wait_for_thread_drain(baseline, timeout=10.0):
    """Poll until no more kernel worker threads live than at baseline."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if len(kernel_threads()) <= baseline:
            return True
        time.sleep(0.02)
    return False


@pytest.fixture(autouse=True)
def clean_registry():
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# the Hypothesis fault schedules
# ----------------------------------------------------------------------
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    site=st.sampled_from(SITES),
    mode=st.sampled_from(["error", "oom", "slow"]),
    nth=st.integers(min_value=1, max_value=3),
    workers=st.integers(min_value=2, max_value=4),
    sticky=st.booleans(),
)
def test_chaos_invariant(relation, serial_answers, site, mode, nth, workers, sticky):
    faults.clear()
    engine = sharded_engine(relation, workers)
    faults.fail_at(
        f"kernel.worker:{site}", nth=nth, mode=mode, sticky=sticky,
        delay_ms=5.0,
    )
    try:
        got = run_query(engine, site)
    except ExecutorError:
        # A typed refusal is only legal when the fault survived the
        # supervised retry — and the breaker must now force serial mode.
        assert sticky
        assert engine.executor.tripped
    else:
        # Anything that returns must be the bit-identical serial answer.
        assert got == serial_answers[site]
    finally:
        faults.clear()
    # Whatever happened, the engine must answer correctly afterwards
    # (through the degraded serial path if the breaker tripped).
    assert run_query(engine, site) == serial_answers[site]
    engine.executor.shutdown()


# ----------------------------------------------------------------------
# deterministic supervisor behaviours
# ----------------------------------------------------------------------
class TestRetry:
    def test_one_shot_fault_is_healed_by_one_retry(self, relation, serial_answers):
        engine = sharded_engine(relation, 3)
        faults.fail_at("kernel.worker:range", mode="error")
        assert run_query(engine, "range") == serial_answers["range"]
        assert engine.executor.retries == 1
        assert not engine.executor.tripped

    def test_oom_is_retried_like_any_fault(self, relation, serial_answers):
        engine = sharded_engine(relation, 3)
        faults.fail_at("kernel.worker:knn", mode="oom")
        assert run_query(engine, "knn") == serial_answers["knn"]
        assert engine.executor.retries == 1

    def test_slow_worker_needs_no_retry(self, relation, serial_answers):
        engine = sharded_engine(relation, 3)
        faults.fail_at("kernel.worker:join", mode="slow", delay_ms=30.0)
        assert run_query(engine, "join") == serial_answers["join"]
        assert engine.executor.retries == 0

    def test_explain_analyze_reports_supervision(self, relation, serial_answers):
        engine = sharded_engine(relation, 3)
        faults.fail_at("kernel.worker:range", mode="error")
        plan = engine.plan(
            QuerySpec(
                kind="range", series=relation.matrix[:17], eps=6.0,
                method="index",
            )
        )
        assert normalize(plan.execute()) == serial_answers["range"]
        info = plan.explain()
        assert info["executor"]["retries"] == 1
        assert info["executor"]["degraded_to_serial"] is False

        def supervision_entries(node):
            found = []
            if "supervision" in node:
                found.append(node["supervision"])
            for child in node.get("children", ()):
                found.extend(supervision_entries(child))
            return found

        entries = supervision_entries(info["plan"])
        assert entries and all(e["retries"] == 1 for e in entries)


class TestCircuitBreaker:
    def test_sticky_fault_trips_the_breaker(self, relation, serial_answers):
        engine = sharded_engine(relation, 3)
        faults.fail_at("kernel.worker:range", mode="error", sticky=True)
        with pytest.raises(ExecutorError) as err:
            run_query(engine, "range")
        assert err.value.site == "range"
        assert err.value.__cause__ is not None
        executor = engine.executor
        assert executor.tripped
        assert executor.describe()["degraded_to_serial"] is True
        assert executor.describe()["mode"] == "serial"
        # The failpoint is STILL armed, but the degraded serial path
        # never passes a compute failpoint: answers must be exact.
        assert run_query(engine, "range") == serial_answers["range"]
        # Health surfaces the degradation...
        report = engine.health()
        assert report.component("kernel_executor").status == "degraded"
        assert "circuit breaker" in report.component("kernel_executor").detail
        # ...and an operator can close the breaker once the cause clears.
        faults.clear()
        executor.reset_breaker()
        assert engine.health().component("kernel_executor").status == "ok"
        assert executor.describe()["mode"] == "threads"
        assert run_query(engine, "range") == serial_answers["range"]

    def test_secondary_errors_ride_along_as_notes(self, relation):
        engine = sharded_engine(relation, 4)
        faults.fail_at("kernel.worker:range", mode="error", sticky=True)
        with pytest.raises(ExecutorError) as err:
            run_query(engine, "range")
        # Sticky fault on every block: the primary carries the rest.
        notes = getattr(err.value, "__notes__", [])
        chain = err.value.__cause__
        assert chain is not None or notes  # at minimum the cause survives

    def test_budget_refusals_never_trip_the_breaker(self, relation):
        engine = sharded_engine(relation, 3)
        spec = QuerySpec(
            kind="range", series=relation.matrix[:17], eps=6.0,
            method="index", budget=ResourceBudget(max_candidates=1),
        )
        with pytest.raises(QueryBudgetExceeded):
            engine.plan(spec).execute()
        assert not engine.executor.tripped
        assert engine.executor.retries == 0


class TestWatchdog:
    def test_hang_is_bounded_by_the_budget_deadline(self, relation, serial_answers):
        baseline = len(kernel_threads())
        engine = sharded_engine(relation, 3)
        faults.fail_at("kernel.worker:range", mode="hang")  # 30 s sleep
        spec = QuerySpec(
            kind="range", series=relation.matrix[:17], eps=6.0,
            method="index", budget=ResourceBudget(deadline_ms=150.0),
        )
        t0 = time.perf_counter()
        with pytest.raises(QueryBudgetExceeded) as err:
            engine.plan(spec).execute()
        elapsed = time.perf_counter() - t0
        assert err.value.kind == "deadline"
        # Typed failure arrived near the deadline, not after the 30 s hang.
        assert elapsed < 5.0
        executor = engine.executor
        assert executor.tripped
        assert executor.watchdog_trips == 1
        # The abandoned pool's threads drain once the hang is released.
        faults.clear()
        assert wait_for_thread_drain(baseline)
        # The degraded engine still answers, without a budget, exactly.
        assert run_query(engine, "range") == serial_answers["range"]


class TestSerialPathUntouched:
    def test_workers_1_never_passes_a_failpoint(self, relation, serial_answers):
        engine = SimilarityEngine(relation, executor=KernelExecutor(workers=1))
        for site in SITES:
            faults.fail_at(f"kernel.worker:{site}", mode="error", sticky=True)
        for site in SITES:
            assert run_query(engine, site) == serial_answers[site]
        assert engine.executor.retries == 0

    def test_sub_block_batches_never_pass_a_failpoint(self, relation):
        # One query row -> a single block -> the direct kernel call.
        engine = sharded_engine(relation, 4)
        faults.fail_at("kernel.worker:range", mode="error", sticky=True)
        got = engine.range_query_batch(relation.matrix[:1], 6.0)
        assert len(got) == 1


class TestNoLeakedThreads:
    def test_shutdown_drains_workers(self, relation):
        baseline = len(kernel_threads())
        engine = sharded_engine(relation, 4)
        run_query(engine, "range")
        assert len(kernel_threads()) > baseline
        engine.executor.shutdown()
        assert wait_for_thread_drain(baseline)
