"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import load_relation, main, save_relation
from repro.data import SequenceRelation


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "rel.csv"
    rel = SequenceRelation.from_matrix(
        np.cumsum(np.random.default_rng(0).uniform(-1, 1, (30, 32)), axis=1) + 50
    )
    save_relation(rel, str(path))
    return str(path)


class TestIO:
    def test_roundtrip(self, csv_path):
        rel = load_relation(csv_path)
        assert len(rel) == 30
        assert rel.length == 32

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("# header\n1,2,3\n\n4,5,6  # named\n")
        rel = load_relation(str(path))
        assert len(rel) == 2

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2,x\n")
        with pytest.raises(SystemExit):
            load_relation(str(path))

    def test_inconsistent_lengths_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2,3\n1,2\n")
        with pytest.raises(SystemExit):
            load_relation(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("# nothing\n")
        with pytest.raises(SystemExit):
            load_relation(str(path))


class TestCommands:
    def test_generate_walks(self, tmp_path, capsys):
        out = str(tmp_path / "gen.csv")
        assert main(["generate", out, "--count", "10", "--length", "16"]) == 0
        rel = load_relation(out)
        assert len(rel) == 10 and rel.length == 16

    def test_generate_stocks(self, tmp_path):
        out = str(tmp_path / "gen.csv")
        assert main(
            ["generate", out, "--kind", "stocks", "--count", "12", "--length", "32"]
        ) == 0
        assert len(load_relation(out)) == 12

    def test_generate_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.csv"), str(tmp_path / "b.csv")
        main(["generate", a, "--count", "5", "--length", "8", "--seed", "3"])
        main(["generate", b, "--count", "5", "--length", "8", "--seed", "3"])
        assert open(a).read() == open(b).read()

    def test_info(self, csv_path, capsys):
        assert main(["info", csv_path]) == 0
        out = capsys.readouterr().out
        assert "30 series of length 32" in out
        assert "RStarTree" in out

    def test_query_range(self, csv_path, capsys):
        assert main(["query", csv_path, "RANGE s0 IN r EPS 2.0 USING mavg(4)"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert any(line.startswith("0,") for line in out)  # self-match

    def test_query_knn(self, csv_path, capsys):
        assert main(["query", csv_path, "KNN s1 IN r K 3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3

    def test_query_join_limit(self, csv_path, capsys):
        assert main(["query", csv_path, "JOIN r EPS 50.0", "--limit", "5"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) <= 5

    def test_query_dist(self, csv_path, capsys):
        assert main(["query", csv_path, "DIST s0, s1"]) == 0
        float(capsys.readouterr().out.strip())  # parses as a number

    def test_query_error_is_graceful(self, csv_path, capsys):
        assert main(["query", csv_path, "RANGE nope IN r EPS 1"]) == 1
        assert "query error" in capsys.readouterr().err


class TestGovernanceAndHealth:
    def test_health_verb_prints_json_report(self, csv_path, capsys):
        import json

        assert main(["query", csv_path, "HEALTH r"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert set(report["components"]) == {
            "relation", "index", "kernel", "kernel_executor", "persistence",
        }
        assert report["components"]["relation"]["status"] == "ok"

    def test_explain_json_carries_degraded_and_budget_fields(
        self, csv_path, capsys
    ):
        import json

        assert main(
            ["query", csv_path, "EXPLAIN RANGE s0 IN r EPS 2 BUDGET 250"]
        ) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["degraded_from"] is None
        assert info["budget"]["deadline_ms"] == 250
        assert info["budget"]["truncated"] is False

    def test_explain_without_budget_reports_null(self, csv_path, capsys):
        import json

        assert main(["query", csv_path, "EXPLAIN KNN s0 IN r K 3"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["budget"] is None
        assert info["degraded_from"] is None

    def test_budgeted_query_runs(self, csv_path, capsys):
        # a generous deadline: the query completes normally
        assert main(
            ["query", csv_path, "RANGE s0 IN r EPS 2.0 BUDGET 60000"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert any(line.startswith("0,") for line in out)

    def test_blown_budget_is_a_graceful_query_error(self, csv_path, capsys):
        assert main(
            ["query", csv_path, "JOIN r EPS 50.0 BUDGET 0.0001"]
        ) == 1
        assert "budget exceeded" in capsys.readouterr().err

    def test_bad_budget_rejected(self, csv_path, capsys):
        assert main(["query", csv_path, "RANGE s0 IN r EPS 2 BUDGET -1"]) == 1
        assert "query error" in capsys.readouterr().err

    def test_health_unknown_relation_is_graceful(self, csv_path, capsys):
        assert main(["query", csv_path, "HEALTH nope"]) == 1
        assert "query error" in capsys.readouterr().err
