"""Crash-safety: kill a save at every stage, corrupt images at rest.

The contract under test (the durability half of PR 6's tentpole):

* a save that dies at *any* failpoint leaves the directory loadable —
  either as the previous committed image (identical answers) or as a
  typed :class:`~repro.storage.manifest.PersistError`.  Never a silently
  wrong engine.
* any single-byte corruption of a committed image is either detected
  (typed error) or harmless (the damaged artifact is degradable and the
  rerouted engine still answers exactly).
"""

import os
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SimilarityEngine
from repro.data.relation import SequenceRelation
from repro.data.synthetic import random_walks
from repro.persist import load_engine, save_engine
from repro.storage import faults
from repro.storage.manifest import (
    MANIFEST_NAME,
    CorruptIndexError,
    PersistError,
)

N, LENGTH = 40, 32


def build_engine(seed: int) -> SimilarityEngine:
    rel = SequenceRelation.from_matrix(random_walks(N, LENGTH, seed=seed))
    return SimilarityEngine(rel)


def answers(engine: SimilarityEngine) -> list:
    """A canonical query fingerprint: range hits for the engine's row 0."""
    q = engine.relation.get(0)
    return [(rid, round(d, 9)) for rid, d in engine.range_query(q, eps=6.0)]


@pytest.fixture(scope="module")
def old_image(tmp_path_factory):
    """A committed image of engine A, plus its query fingerprint."""
    directory = str(tmp_path_factory.mktemp("image") / "engine")
    engine = build_engine(seed=1)
    save_engine(engine, directory)
    return directory, answers(engine)


@pytest.fixture()
def workdir(old_image, tmp_path):
    """A throwaway copy of the committed old image."""
    directory, old = old_image
    dst = str(tmp_path / "engine")
    shutil.copytree(directory, dst)
    return dst, old


# Every failpoint stage of a save, with the fault mode to inject there.
SAVE_FAILPOINTS = [
    ("persist.write:relation.npy", {"mode": "crash"}),
    ("persist.write:relation.npy", {"mode": "enospc"}),
    ("persist.write:relation.json", {"mode": "torn"}),
    ("persist.write:relation.json", {"mode": "bitflip"}),
    ("persist.replace:relation.npy", {"mode": "crash"}),
    ("pager.write_page", {"mode": "crash", "nth": 2}),
    ("pager.write_page", {"mode": "enospc", "nth": 2}),
    ("pager.write_page", {"mode": "torn", "nth": 2}),
    ("pager.write_page", {"mode": "truncate", "nth": 2}),
    ("pager.write_page", {"mode": "bitflip", "nth": 2}),
    ("pager.flush", {"mode": "error"}),
    ("persist.replace:index.pages", {"mode": "crash"}),
    ("persist.write:index_columnar.npz", {"mode": "torn"}),
    ("persist.write:index_columnar.npz", {"mode": "truncate"}),
    ("persist.write:index_columnar.npz", {"mode": "bitflip"}),
    ("persist.write:meta.json", {"mode": "crash"}),
    ("persist.write:meta.json", {"mode": "truncate"}),
    ("persist.replace:meta.json", {"mode": "crash"}),
    ("persist.write:MANIFEST.json", {"mode": "crash"}),
    ("persist.write:MANIFEST.json", {"mode": "torn"}),
    ("persist.replace:MANIFEST.json", {"mode": "crash"}),
]


def attempt_overwrite(directory: str, point, kwargs) -> None:
    """Try to overwrite the image with engine B under an armed failpoint.

    Raising faults abort the save (the simulated crash/disk error);
    silent-corruption faults let it "succeed" with mangled bytes.
    """
    new_engine = build_engine(seed=2)
    with faults.armed((point, kwargs)):
        try:
            save_engine(new_engine, directory)
        except (faults.SimulatedCrash, OSError):
            pass


def assert_old_new_or_typed(directory: str, old, new) -> None:
    """The core safety property: a load never invents wrong answers."""
    try:
        loaded = load_engine(directory)
    except PersistError:
        return  # failed typed: acceptable, never wrong
    got = answers(loaded)
    assert got == old or got == new, (
        "loaded engine answered with neither the old nor the new image"
    )


class TestKilledSaves:
    @pytest.mark.parametrize(
        "point,kwargs",
        SAVE_FAILPOINTS,
        ids=[f"{p}-{k['mode']}" for p, k in SAVE_FAILPOINTS],
    )
    def test_save_killed_at_failpoint_never_lies(self, workdir, point, kwargs):
        directory, old = workdir
        new = answers(build_engine(seed=2))
        attempt_overwrite(directory, point, kwargs)
        assert_old_new_or_typed(directory, old, new)

    def test_crash_before_commit_recovers_old_image(self, workdir):
        """A save killed before its manifest commit must load as image A."""
        directory, old = workdir
        attempt_overwrite(directory, "persist.write:relation.npy", {"mode": "crash"})
        assert answers(load_engine(directory)) == old

    def test_crash_between_replaces_is_detected(self, workdir):
        """New core files under the old manifest: checksum mismatch, typed."""
        directory, old = workdir
        attempt_overwrite(directory, "persist.write:meta.json", {"mode": "crash"})
        # relation files were replaced with engine B's; the old manifest
        # no longer vouches for them.
        with pytest.raises(CorruptIndexError):
            load_engine(directory)

    def test_lying_write_during_page_save_is_caught(self, workdir):
        """A silently truncated page write must not survive the manifest.

        The checksum is accumulated over intended payloads, so even
        though the save "succeeds", the committed manifest disagrees
        with the damaged file and the index degrades (or fails typed) —
        answers stay exact either way.
        """
        directory, old = workdir
        new = answers(build_engine(seed=2))
        attempt_overwrite(directory, "pager.write_page", {"mode": "truncate", "nth": 2})
        try:
            loaded = load_engine(directory)
        except PersistError:
            return
        assert getattr(loaded, "_index_failed", None) is not None
        assert answers(loaded) == new  # scan over B's relation: still exact

    def test_save_failure_leaves_no_partial_commit(self, workdir):
        directory, old = workdir
        attempt_overwrite(
            directory, "persist.write:index_columnar.npz", {"mode": "enospc"}
        )
        # The manifest is the old one (commit never ran), so a load either
        # recovers A or reports the mismatch — and here the damaged
        # artifacts are pre-manifest, so the core files already mismatch.
        assert_old_new_or_typed(directory, old, answers(build_engine(seed=2)))


class TestCorruptionAtRest:
    ARTIFACTS = [
        "relation.npy",
        "relation.json",
        "meta.json",
        "index.pages",
        "index_columnar.npz",
        MANIFEST_NAME,
    ]

    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(ARTIFACTS),
        pos=st.integers(min_value=0, max_value=10**9),
        mask=st.integers(min_value=1, max_value=255),
    )
    def test_any_single_byte_corruption_is_detected_or_harmless(
        self, old_image, tmp_path_factory, name, pos, mask
    ):
        directory, old = old_image
        dst = str(tmp_path_factory.mktemp("corrupt") / "engine")
        shutil.copytree(directory, dst)
        path = os.path.join(dst, name)
        with open(path, "r+b") as f:
            data = bytearray(f.read())
            at = pos % len(data)
            data[at] ^= mask
            f.seek(0)
            f.write(data)
        try:
            loaded = load_engine(dst)
        except PersistError:
            return  # detected, typed
        # harmless: a degradable artifact was hit and the engine rerouted
        assert answers(loaded) == old
        shutil.rmtree(dst, ignore_errors=True)

    def test_core_artifact_corruption_raises_typed(self, workdir):
        directory, _ = workdir
        path = os.path.join(directory, "relation.npy")
        with open(path, "r+b") as f:
            f.seek(os.path.getsize(path) // 2)
            f.write(b"\xff")
        with pytest.raises(CorruptIndexError):
            load_engine(directory)

    def test_kernel_corruption_degrades_not_lies(self, workdir):
        directory, old = workdir
        path = os.path.join(directory, "index_columnar.npz")
        with open(path, "r+b") as f:
            f.seek(os.path.getsize(path) - 8)
            f.write(b"\x00" * 4)
        loaded = load_engine(directory)
        assert getattr(loaded.tree, "_kernel_disabled", False)
        assert answers(loaded) == old  # reference node traversal, exact
        report = loaded.health()
        assert report.component("kernel").status in ("degraded", "failed")
        assert not report.ok

    def test_kernel_corruption_raises_under_strict(self, workdir):
        directory, _ = workdir
        path = os.path.join(directory, "index_columnar.npz")
        with open(path, "r+b") as f:
            f.seek(os.path.getsize(path) - 8)
            f.write(b"\x00" * 4)
        with pytest.raises(CorruptIndexError):
            load_engine(directory, strict=True)

    def test_index_pages_corruption_degrades_to_scan(self, workdir):
        directory, old = workdir
        path = os.path.join(directory, "index.pages")
        with open(path, "r+b") as f:
            f.seek(os.path.getsize(path) // 3)
            f.write(b"\xde\xad\xbe\xef")
        loaded = load_engine(directory)
        assert getattr(loaded, "_index_failed", None) is not None
        assert answers(loaded) == old  # SeqScan answers are exact
        info = loaded.explain(
            __import__("repro.core.plan", fromlist=["QuerySpec"]).QuerySpec(
                kind="range", series=loaded.relation.get(0), eps=6.0
            )
        )
        assert info["access_path"] == "scan"
        assert info["degraded_from"] == "index"

    def test_deleted_artifact_is_typed_or_degraded(self, workdir):
        directory, old = workdir
        os.remove(os.path.join(directory, "index.pages"))
        loaded = load_engine(directory)  # degradable: reroutes to scan
        assert answers(loaded) == old
        os.remove(os.path.join(directory, "relation.npy"))
        with pytest.raises(PersistError):
            load_engine(directory)


class TestLegacyImages:
    def test_manifestless_image_loads_degraded(self, tmp_path):
        directory = str(tmp_path / "legacy")
        engine = build_engine(seed=3)
        save_engine(engine, directory, manifest=False)
        assert not os.path.exists(os.path.join(directory, MANIFEST_NAME))
        loaded = load_engine(directory)
        assert answers(loaded) == answers(engine)
        report = loaded.health()
        assert report.component("persistence").status == "degraded"

    def test_schema_from_the_future_is_rejected(self, workdir):
        import json

        from repro.storage.manifest import SchemaVersionError

        directory, _ = workdir
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path) as f:
            doc = json.load(f)
        doc["schema"] = 99
        with open(path, "w") as f:
            json.dump(doc, f)
        with pytest.raises(SchemaVersionError):
            load_engine(directory)

    def test_unknown_tree_class_is_typed(self, workdir):
        import json

        directory, _ = workdir
        meta_path = os.path.join(directory, "meta.json")
        with open(meta_path) as f:
            meta = json.load(f)
        meta["tree"]["class"] = "BTree"
        body = json.dumps(meta).encode()
        with open(meta_path, "wb") as f:
            f.write(body)
        # refresh the manifest so only the class name is at fault
        man_path = os.path.join(directory, MANIFEST_NAME)
        with open(man_path) as f:
            man = json.load(f)
        import zlib

        man["files"]["meta.json"] = {
            "size": len(body),
            "crc32": zlib.crc32(body) & 0xFFFFFFFF,
        }
        with open(man_path, "w") as f:
            json.dump(man, f)
        with pytest.raises(PersistError, match="BTree"):
            load_engine(directory)

    def test_row_count_mismatch_degrades_index(self, workdir):
        import json

        directory, old = workdir
        meta_path = os.path.join(directory, "meta.json")
        with open(meta_path) as f:
            meta = json.load(f)
        meta["tree"]["size"] = meta["tree"]["size"] + 5
        body = json.dumps(meta).encode()
        with open(meta_path, "wb") as f:
            f.write(body)
        man_path = os.path.join(directory, MANIFEST_NAME)
        with open(man_path) as f:
            man = json.load(f)
        import zlib

        man["files"]["meta.json"] = {
            "size": len(body),
            "crc32": zlib.crc32(body) & 0xFFFFFFFF,
        }
        with open(man_path, "w") as f:
            json.dump(man, f)
        loaded = load_engine(directory)
        assert "rows" in loaded._index_failed
        assert answers(loaded) == old
        with pytest.raises(CorruptIndexError):
            load_engine(directory, strict=True)


class TestFailpointRegistry:
    def test_clear_after_context(self):
        with faults.armed(("pager.write_page", {"mode": "error"})):
            assert faults.active()
        assert not faults.active()

    def test_nth_counts_hits(self):
        faults.fail_at("pager.flush", nth=3, mode="error")
        try:
            faults.trigger("pager.flush")
            faults.trigger("pager.flush")
            with pytest.raises(OSError):
                faults.trigger("pager.flush")
            faults.trigger("pager.flush")  # fires once only
        finally:
            faults.clear()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            faults.fail_at("pager.flush", mode="gremlins")

    def test_env_marker(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAILPOINTS", "1")
        assert faults.env_enabled()
        monkeypatch.delenv("REPRO_FAILPOINTS")
        assert not faults.env_enabled()
