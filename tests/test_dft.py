"""Tests for the DFT toolkit: Eqs. 1-8 and the reference cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft import (
    circular_convolve,
    dft,
    distance,
    energy,
    energy_concentration,
    idft,
    power_spectrum,
)
from repro.dft.reference import (
    circular_convolve_reference,
    dft_reference,
    idft_reference,
)

signals = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=1,
    max_size=32,
)


class TestAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(signals)
    def test_dft_matches_literal_formula(self, x):
        assert np.allclose(dft(x), dft_reference(x), atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(signals)
    def test_idft_matches_literal_formula(self, x):
        assert np.allclose(idft(x), idft_reference(x), atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(signals)
    def test_convolution_matches_literal_formula(self, x):
        y = list(reversed(x))
        assert np.allclose(
            circular_convolve(x, y), circular_convolve_reference(x, y), atol=1e-5
        )


class TestUnitaryProperties:
    @settings(max_examples=50, deadline=None)
    @given(signals)
    def test_roundtrip(self, x):
        assert np.allclose(idft(dft(x)).real, x, atol=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(signals)
    def test_parseval(self, x):
        """Eq. 7: E(x) == E(X) under the unitary convention."""
        assert energy(x) == pytest.approx(energy(dft(x)), abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(signals, signals)
    def test_distance_preserved(self, x, y):
        """Eq. 8: D(x, y) == D(X, Y)."""
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        assert distance(x, y) == pytest.approx(
            distance(dft(x), dft(y)), abs=1e-6
        )

    @settings(max_examples=50, deadline=None)
    @given(signals, st.floats(-5, 5), st.floats(-5, 5))
    def test_linearity(self, x, a, b):
        """Eq. 5: DFT(a x + b y) == a X + b Y."""
        y = np.arange(len(x), dtype=np.float64)
        lhs = dft(a * np.asarray(x) + b * y)
        rhs = a * dft(x) + b * dft(y)
        assert np.allclose(lhs, rhs, atol=1e-6)

    def test_dc_coefficient_is_scaled_mean(self):
        x = np.array([2.0, 2.0, 2.0, 2.0])
        X = dft(x)
        assert X[0] == pytest.approx(2.0 * np.sqrt(4))
        assert np.allclose(X[1:], 0.0, atol=1e-12)

    def test_convolution_multiplication_property(self):
        """Eq. 6 with the unitary bookkeeping: DFT(conv) = sqrt(n) X*Y."""
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=16), rng.normal(size=16)
        lhs = dft(circular_convolve(x, y))
        rhs = np.sqrt(16) * dft(x) * dft(y)
        assert np.allclose(lhs, rhs, atol=1e-8)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dft([])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            dft(np.zeros((2, 2)))

    def test_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            distance([1.0, 2.0], [1.0])

    def test_convolution_length_mismatch(self):
        with pytest.raises(ValueError):
            circular_convolve([1.0, 2.0], [1.0])


class TestEnergyConcentration:
    def test_random_walks_concentrate_low_frequencies(self):
        """The premise of the k-index: for random walks, the first few
        coefficients carry most of the energy (after mean removal the
        statement applies to the fluctuating part)."""
        from repro.data.synthetic import random_walks

        walks = random_walks(50, 128, seed=1)
        fractions = []
        for w in walks:
            centered = w - w.mean()
            fractions.append(energy_concentration(centered, 8))
        # One-sided counting: the conjugate mirror coefficients hold a
        # matching share, so ~0.44 one-sided means ~0.88 of total energy
        # lives in the 7 lowest non-DC frequencies.
        assert np.mean(fractions) > 0.4
        assert 2 * np.mean(fractions) > 0.8

    def test_full_k_is_total_energy(self):
        x = np.array([1.0, -2.0, 3.0, 0.5])
        assert energy_concentration(x, 4) == pytest.approx(1.0)

    def test_zero_signal(self):
        assert energy_concentration(np.zeros(8), 2) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            energy_concentration(np.ones(4), 0)
        with pytest.raises(ValueError):
            energy_concentration(np.ones(4), 5)

    def test_power_spectrum_sums_to_energy(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert float(np.sum(power_spectrum(x))) == pytest.approx(energy(x))
