"""Integration tests: SimilarityEngine against brute force, all query types."""

import numpy as np
import pytest

from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace, PlainDFTSpace
from repro.core.transforms import identity, moving_average, reverse, scale, time_warp
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.rtree.guttman import GuttmanRTree


@pytest.fixture(scope="module")
def relation():
    return SequenceRelation.from_matrix(random_walks(180, 64, seed=21))


@pytest.fixture(scope="module")
def engine(relation):
    return SimilarityEngine(relation, space=NormalFormSpace(64, k=2, coord="polar"))


def brute_range(engine, q, eps, t=None):
    Q = engine.query_spectrum(q)
    out = []
    for rid in range(len(engine.relation)):
        d = engine.space.ground_distance(engine.ground_spectra[rid], Q, t)
        if d <= eps:
            out.append((rid, d))
    return sorted(out, key=lambda m: (m[1], m[0]))


class TestRangeQueries:
    @pytest.mark.parametrize("eps", [0.5, 2.0, 5.0, 10.0])
    def test_matches_brute_force_no_transform(self, relation, engine, eps):
        q = relation.get(17)
        got = engine.range_query(q, eps)
        want = brute_range(engine, q, eps)
        assert [(r, round(d, 8)) for r, d in got] == [
            (r, round(d, 8)) for r, d in want
        ]

    @pytest.mark.parametrize(
        "make_t",
        [
            lambda n: identity(n),
            lambda n: moving_average(n, 10),
            lambda n: reverse(n),
            lambda n: scale(n, 2.0),
            lambda n: time_warp(n, 2),
            lambda n: moving_average(n, 5).power(2),
        ],
        ids=["identity", "mavg10", "reverse", "scale2", "warp2", "mavg5x2"],
    )
    def test_matches_brute_force_with_transform(self, relation, engine, make_t):
        t = make_t(64)
        q = relation.get(3)
        got = engine.range_query(q, 4.0, transformation=t)
        want = brute_range(engine, q, 4.0, t)
        assert sorted(r for r, _ in got) == sorted(r for r, _ in want)

    def test_query_not_in_relation(self, relation, engine, rng):
        q = np.cumsum(rng.normal(size=64)) + 50
        got = engine.range_query(q, 3.0)
        want = brute_range(engine, q, 3.0)
        assert sorted(r for r, _ in got) == sorted(r for r, _ in want)

    def test_self_match_at_eps_zero(self, relation, engine):
        q = relation.get(44)
        got = engine.range_query(q, 0.0)
        assert (44, 0.0) in [(r, round(d, 9)) for r, d in got]

    def test_results_sorted_by_distance(self, relation, engine):
        got = engine.range_query(relation.get(9), 8.0)
        dists = [d for _, d in got]
        assert dists == sorted(dists)

    def test_aux_bounds_restrict_answers(self, relation):
        """Mean bounds emulate [GK95] shift constraints."""
        engine = SimilarityEngine(relation)
        q = relation.get(0)
        free = engine.range_query(q, 6.0)
        mean_lo = float(np.mean(relation.get(0))) - 1.0
        mean_hi = float(np.mean(relation.get(0))) + 1.0
        bounded = engine.range_query(
            q, 6.0, aux_bounds=[(mean_lo, mean_hi), (-1e18, 1e18)]
        )
        assert set(r for r, _ in bounded) <= set(r for r, _ in free)
        means = [float(np.mean(relation.get(r))) for r, _ in bounded]
        assert all(mean_lo - 1e-9 <= m <= mean_hi + 1e-9 for m in means)


class TestKnnQueries:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_brute_force(self, relation, engine, k):
        q = relation.get(60)
        got = engine.knn_query(q, k)
        Q = engine.query_spectrum(q)
        dists = sorted(
            (engine.space.ground_distance(engine.ground_spectra[rid], Q), rid)
            for rid in range(len(relation))
        )
        want_d = [d for d, _ in dists[:k]]
        assert np.allclose([d for _, d in got], want_d, atol=1e-9)

    def test_with_transformation(self, relation, engine):
        t = moving_average(64, 10)
        q = relation.get(2)
        got = engine.knn_query(q, 7, transformation=t)
        Q = engine.query_spectrum(q)
        dists = sorted(
            (engine.space.ground_distance(engine.ground_spectra[rid], Q, t), rid)
            for rid in range(len(relation))
        )
        assert np.allclose([d for _, d in got], [d for d, _ in dists[:7]], atol=1e-9)

    def test_k_exceeding_relation(self, relation, engine):
        got = engine.knn_query(relation.get(0), len(relation) + 50)
        assert len(got) == len(relation)

    def test_k_zero_returns_empty(self, relation, engine):
        assert engine.knn_query(relation.get(0), 0) == []

    def test_invalid_k(self, relation, engine):
        with pytest.raises(ValueError):
            engine.knn_query(relation.get(0), -1)


class TestAllPairs:
    @pytest.fixture(scope="class")
    def small_engine(self):
        rel = SequenceRelation.from_matrix(random_walks(60, 64, seed=5))
        return SimilarityEngine(rel)

    def brute_pairs(self, engine, eps, t):
        out = []
        m = len(engine.relation)
        for i in range(m):
            ti = (
                engine.ground_spectra[i]
                if t is None
                else t.apply_spectrum(engine.ground_spectra[i])
            )
            for j in range(i + 1, m):
                tj = (
                    engine.ground_spectra[j]
                    if t is None
                    else t.apply_spectrum(engine.ground_spectra[j])
                )
                d = float(np.linalg.norm(ti - tj))
                if d <= eps:
                    out.append((i, j))
        return sorted(out)

    @pytest.mark.parametrize("method", ["scan", "scan-abandon", "index", "tree-join"])
    @pytest.mark.parametrize("use_t", [False, True])
    def test_all_methods_agree_with_brute_force(self, small_engine, method, use_t):
        t = moving_average(64, 10) if use_t else None
        eps = 1.5
        got = sorted((i, j) for i, j, _ in small_engine.all_pairs(eps, t, method))
        assert got == self.brute_pairs(small_engine, eps, t)

    def test_unknown_method_rejected(self, small_engine):
        with pytest.raises(ValueError):
            small_engine.all_pairs(1.0, None, method="quantum")

    def test_transformed_join_differs_from_plain(self, small_engine):
        """Paper's c vs d: smoothing merges more pairs."""
        t = moving_average(64, 20)
        plain = small_engine.all_pairs(2.0, None, "index")
        smoothed = small_engine.all_pairs(2.0, t, "index")
        assert len(smoothed) >= len(plain)


class TestEngineConfigurations:
    def test_paged_and_memory_engines_agree(self, relation):
        q = relation.get(8)
        mem = SimilarityEngine(relation, paged=False)
        paged = SimilarityEngine(relation, paged=True, buffer_capacity=4)
        a = mem.range_query(q, 5.0)
        b = paged.range_query(q, 5.0)
        assert [(r, round(d, 9)) for r, d in a] == [(r, round(d, 9)) for r, d in b]
        assert paged.stats.disk_accesses > 0  # it really did paged I/O

    def test_bulk_and_inserted_engines_agree(self, relation):
        q = relation.get(8)
        bulk = SimilarityEngine(relation, bulk_load=True)
        ins = SimilarityEngine(relation, bulk_load=False)
        ins.tree.validate()
        assert sorted(r for r, _ in bulk.range_query(q, 5.0)) == sorted(
            r for r, _ in ins.range_query(q, 5.0)
        )

    def test_guttman_engine_agrees(self, relation):
        q = relation.get(8)
        rstar = SimilarityEngine(relation)
        gutt = SimilarityEngine(relation, index_cls=GuttmanRTree, bulk_load=False)
        assert sorted(r for r, _ in rstar.range_query(q, 5.0)) == sorted(
            r for r, _ in gutt.range_query(q, 5.0)
        )

    def test_rect_space_engine(self, relation):
        eng = SimilarityEngine(relation, space=PlainDFTSpace(64, 4, coord="rect"))
        q = relation.get(8)
        got = eng.range_query(q, 10.0)
        want = brute_range(eng, q, 10.0)
        assert sorted(r for r, _ in got) == sorted(r for r, _ in want)

    def test_space_length_mismatch_rejected(self, relation):
        with pytest.raises(ValueError):
            SimilarityEngine(relation, space=NormalFormSpace(32, 2))

    def test_empty_relation(self):
        rel = SequenceRelation(16)
        eng = SimilarityEngine(rel)
        assert eng.range_query(np.zeros(16), 1.0) == []
        assert eng.knn_query(np.zeros(16), 3) == []

    def test_stats_track_candidates(self, relation):
        eng = SimilarityEngine(relation)
        eng.stats.reset()
        eng.range_query(relation.get(0), 5.0)
        assert eng.stats.candidate_count >= 0
        assert eng.stats.distance_computations == eng.stats.candidate_count

    def test_distance_helper(self, relation, engine):
        t = moving_average(64, 10)
        q = relation.get(10)
        d = engine.distance(3, q, t)
        Q = engine.query_spectrum(q)
        want = engine.space.ground_distance(engine.ground_spectra[3], Q, t)
        assert d == pytest.approx(want)

    def test_repr_mentions_parts(self, engine):
        text = repr(engine)
        assert "SimilarityEngine" in text and "RStarTree" in text


class TestFilterQuality:
    def test_candidates_superset_of_answers(self, relation, engine):
        """Lemma 1 at the engine level: every true answer is a candidate."""
        engine.stats.reset()
        q = relation.get(31)
        got = engine.range_query(q, 6.0)
        assert engine.stats.candidate_count >= len(got)

    def test_identity_transform_same_answers_as_none(self, relation, engine):
        q = relation.get(12)
        a = engine.range_query(q, 5.0)
        b = engine.range_query(q, 5.0, transformation=identity(64))
        assert [(r, round(d, 9)) for r, d in a] == [(r, round(d, 9)) for r, d in b]

    def test_identity_transform_same_node_reads(self, relation):
        """The paper's Figures 8/9 claim: identical disk accesses."""
        eng = SimilarityEngine(relation, paged=True, buffer_capacity=0)
        q = relation.get(12)
        eng.stats.reset()
        eng.range_query(q, 5.0)
        plain_reads = eng.stats.node_reads
        eng.stats.reset()
        eng.range_query(q, 5.0, transformation=identity(64))
        assert eng.stats.node_reads == plain_reads
