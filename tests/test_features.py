"""Tests for the feature spaces: layouts, Fig. 7, Theorems 2-3, bounds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import (
    AUX_RANGE,
    NormalFormSpace,
    PlainDFTSpace,
    UnsafeTransformationError,
)
from repro.core.normal_form import normal_form
from repro.core.transforms import (
    moving_average,
    reverse,
    scale,
    shift,
    time_warp,
)
from repro.dft import dft

series32 = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=32,
    max_size=32,
)


def spaces(n=32, k=3):
    return [
        PlainDFTSpace(n, k, coord="rect"),
        PlainDFTSpace(n, k, coord="polar"),
        NormalFormSpace(n, k, coord="rect"),
        NormalFormSpace(n, k, coord="polar"),
    ]


class TestLayout:
    def test_plain_dims(self):
        s = PlainDFTSpace(32, 4, coord="rect")
        assert s.dim == 8
        assert s.freqs == [0, 1, 2, 3]
        assert s.circular_mask is None

    def test_normal_form_dims(self):
        s = NormalFormSpace(128, 2, coord="polar")
        assert s.dim == 6  # the paper's exact index layout
        assert s.freqs == [1, 2]
        mask = s.circular_mask
        assert list(mask) == [False, False, False, True, False, True]

    def test_invalid_coord(self):
        with pytest.raises(ValueError):
            PlainDFTSpace(16, 2, coord="cylindrical")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PlainDFTSpace(16, 0)
        with pytest.raises(ValueError):
            NormalFormSpace(16, 0)

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            PlainDFTSpace(4, 5)

    def test_extract_validates_length(self):
        s = PlainDFTSpace(16, 2)
        with pytest.raises(ValueError):
            s.extract(np.zeros(15))


class TestExtraction:
    def test_rect_encoding_roundtrip(self, rng):
        s = PlainDFTSpace(32, 4, coord="rect")
        c = rng.normal(size=4) + 1j * rng.normal(size=4)
        assert np.allclose(s.decode_coefficients(s.encode_coefficients(c)), c)

    def test_polar_encoding_roundtrip(self, rng):
        s = PlainDFTSpace(32, 4, coord="polar")
        c = rng.normal(size=4) + 1j * rng.normal(size=4)
        assert np.allclose(s.decode_coefficients(s.encode_coefficients(c)), c)

    def test_plain_point_is_truncated_spectrum(self, rng):
        x = rng.normal(size=32)
        s = PlainDFTSpace(32, 3, coord="rect")
        p = s.extract(x)
        X = dft(x)
        assert np.allclose(p[0::2], X[:3].real)
        assert np.allclose(p[1::2], X[:3].imag)

    def test_normal_form_point_layout(self, rng):
        x = rng.normal(5, 2, size=64)
        s = NormalFormSpace(64, 2, coord="polar")
        p = s.extract(x)
        assert p[0] == pytest.approx(float(np.mean(x)))
        assert p[1] == pytest.approx(float(np.std(x)))
        Z = dft(normal_form(x))
        assert p[2] == pytest.approx(abs(Z[1]))
        assert p[3] == pytest.approx(float(np.angle(Z[1])))

    def test_extract_many_matches_extract(self, rng):
        xs = rng.normal(size=(5, 32))
        for s in spaces():
            many = s.extract_many(xs)
            for i in range(5):
                assert np.allclose(many[i], s.extract(xs[i]))


class TestSearchRect:
    """Fig. 7: the search rectangle must contain every point whose true
    distance to the query is within eps (the superset property)."""

    @settings(max_examples=30, deadline=None)
    @given(series32, series32, st.floats(0.1, 20.0))
    def test_epsilon_ball_containment(self, q_list, x_list, eps):
        q = np.asarray(q_list) + np.linspace(0, 1, 32)  # avoid constant
        x = np.asarray(x_list) + np.linspace(1, 0, 32)
        for space in spaces():
            d = float(
                np.linalg.norm(space.series_spectrum(x) - space.series_spectrum(q))
            )
            if d > eps:
                continue
            rect = space.search_rect(space.extract(q), eps)
            from repro.rtree.geometry import intersects_circular, Rect

            point_rect = Rect.from_point(space.extract(x))
            assert intersects_circular(rect, point_rect, space.circular_mask), (
                type(space).__name__,
                space.coord,
                d,
                eps,
            )

    def test_polar_angle_window_formula(self):
        """The angle half-width is asin(eps/m), magnitudes m-eps..m+eps."""
        s = PlainDFTSpace(32, 1, coord="polar")
        point = np.array([4.0, 0.5])
        rect = s.search_rect(point, 1.0)
        assert rect.lows[0] == pytest.approx(3.0)
        assert rect.highs[0] == pytest.approx(5.0)
        half = math.asin(1.0 / 4.0)
        assert rect.lows[1] == pytest.approx(0.5 - half)
        assert rect.highs[1] == pytest.approx(0.5 + half)

    def test_polar_small_magnitude_gives_full_circle(self):
        s = PlainDFTSpace(32, 1, coord="polar")
        rect = s.search_rect(np.array([0.5, 1.0]), 1.0)
        assert rect.lows[1] == pytest.approx(-math.pi)
        assert rect.highs[1] == pytest.approx(math.pi)
        assert rect.lows[0] == 0.0  # magnitudes clamped at zero

    def test_aux_dims_unbounded_by_default(self, rng):
        s = NormalFormSpace(32, 2, coord="polar")
        rect = s.search_rect(s.extract(rng.normal(size=32)), 1.0)
        assert rect.lows[0] == -AUX_RANGE
        assert rect.highs[1] == AUX_RANGE

    def test_aux_bounds_respected(self, rng):
        s = NormalFormSpace(32, 2, coord="polar")
        rect = s.search_rect(
            s.extract(rng.normal(size=32)), 1.0, aux_bounds=[(0.0, 5.0), (1.0, 2.0)]
        )
        assert rect.lows[0] == 0.0 and rect.highs[0] == 5.0
        assert rect.lows[1] == 1.0 and rect.highs[1] == 2.0

    def test_aux_bounds_wrong_count(self, rng):
        s = NormalFormSpace(32, 2)
        with pytest.raises(ValueError):
            s.search_rect(s.extract(rng.normal(size=32)), 1.0, aux_bounds=[(0, 1)])

    def test_negative_eps_rejected(self, rng):
        s = PlainDFTSpace(32, 2)
        with pytest.raises(ValueError):
            s.search_rect(s.extract(rng.normal(size=32)), -1.0)

    def test_symmetry_tightens_rect(self, rng):
        """exploit_symmetry shrinks per-coefficient windows by sqrt(2)."""
        x = rng.normal(size=32)
        plain = PlainDFTSpace(32, 3, coord="rect")
        tight = PlainDFTSpace(32, 3, coord="rect", exploit_symmetry=True)
        r1 = plain.search_rect(plain.extract(x), 2.0)
        r2 = tight.search_rect(tight.extract(x), 2.0)
        # f=0 dims identical; f=1,2 dims narrower by sqrt(2).
        assert r2.extents[0] == pytest.approx(r1.extents[0])
        assert r2.extents[2] == pytest.approx(r1.extents[2] / math.sqrt(2))


class TestExpandRect:
    @settings(max_examples=25, deadline=None)
    @given(series32, series32, st.floats(0.1, 10.0))
    def test_expansion_covers_epsilon_neighbours(self, a_list, b_list, eps):
        """If D(x, y) <= eps then y's point is inside expand(point-rect of x)."""
        from repro.rtree.geometry import Rect, intersects_circular

        x = np.asarray(a_list) + np.linspace(0, 2, 32)
        y = np.asarray(b_list) + np.linspace(2, 0, 32)
        for space in spaces():
            d = float(
                np.linalg.norm(space.series_spectrum(x) - space.series_spectrum(y))
            )
            if d > eps:
                continue
            grown = space.expand_rect(Rect.from_point(space.extract(x)), eps)
            py = Rect.from_point(space.extract(y))
            assert intersects_circular(grown, py, space.circular_mask)

    def test_negative_eps_rejected(self, rng):
        s = PlainDFTSpace(32, 2)
        from repro.rtree.geometry import Rect

        with pytest.raises(ValueError):
            s.expand_rect(Rect.from_point(s.extract(rng.normal(size=32))), -0.5)

    def test_expand_rect_many_matches_scalar_rows(self, rng):
        from repro.rtree.geometry import Rect

        for space in spaces():
            dim = space.dim
            lows = rng.normal(size=(9, dim))
            highs = lows + rng.uniform(0, 1, size=(9, dim))
            if space.coord == "polar":
                # keep magnitude dimensions non-negative like real extents
                for i in range(space.k):
                    base = space.aux_dims + 2 * i
                    lows[:, base] = np.abs(lows[:, base])
                    highs[:, base] = lows[:, base] + np.abs(highs[:, base])
            for eps in [0.0, 0.3, 2.5]:
                got_lo, got_hi = space.expand_rect_many(lows, highs, eps)
                for r in range(9):
                    want = space.expand_rect(Rect(lows[r], highs[r]), eps)
                    assert np.allclose(got_lo[r], want.lows, atol=1e-12)
                    assert np.allclose(got_hi[r], want.highs, atol=1e-12)
            with pytest.raises(ValueError):
                space.expand_rect_many(lows, highs, -1.0)
            with pytest.raises(ValueError):
                space.expand_rect_many(lows[:, :-1], highs[:, :-1], 1.0)


class TestAffineMaps:
    """Theorems 2 and 3: the affine map on index points must agree with
    transforming the series and re-extracting."""

    @pytest.mark.parametrize(
        "make_t",
        [
            lambda n: scale(n, 2.5),
            lambda n: scale(n, -1.5),
            lambda n: shift(n, 3.0),
            lambda n: reverse(n),
        ],
        ids=["scale", "negscale", "shift", "reverse"],
    )
    def test_rect_space_theorem2(self, rng, make_t):
        n = 32
        space = PlainDFTSpace(n, 3, coord="rect")
        t = make_t(n)
        amap = space.affine_map(t)
        x = rng.normal(size=n)
        mapped = amap.apply_point(space.extract(x))
        direct = space.point_from_spectrum(t.apply_spectrum(dft(x)))
        assert np.allclose(mapped, direct, atol=1e-8)

    @pytest.mark.parametrize(
        "make_t",
        [
            lambda n: moving_average(n, 5),
            lambda n: scale(n, 2.0),
            lambda n: reverse(n),
            lambda n: time_warp(n, 2),
        ],
        ids=["mavg", "scale", "reverse", "warp"],
    )
    def test_polar_space_theorem3(self, rng, make_t):
        n = 32
        space = PlainDFTSpace(n, 3, coord="polar")
        t = make_t(n)
        amap = space.affine_map(t)
        x = rng.normal(size=n)
        mapped = amap.apply_point(space.extract(x))
        direct = space.point_from_spectrum(t.apply_spectrum(dft(x)))
        # Magnitudes must agree exactly; angles up to 2*pi wrap.
        assert np.allclose(mapped[0::2], direct[0::2], atol=1e-8)
        dtheta = (mapped[1::2] - direct[1::2]) % (2 * math.pi)
        dtheta = np.minimum(dtheta, 2 * math.pi - dtheta)
        # Skip angle comparison where the coefficient vanished.
        nonzero = direct[0::2] > 1e-9
        assert np.allclose(dtheta[nonzero], 0.0, atol=1e-6)

    def test_complex_stretch_unsafe_in_rect(self):
        space = PlainDFTSpace(16, 2, coord="rect")
        with pytest.raises(UnsafeTransformationError):
            space.affine_map(moving_average(16, 3))

    def test_translation_unsafe_in_polar(self):
        space = PlainDFTSpace(16, 2, coord="polar")
        with pytest.raises(UnsafeTransformationError):
            space.affine_map(shift(16, 1.0))

    def test_length_mismatch_rejected(self):
        space = PlainDFTSpace(16, 2)
        with pytest.raises(ValueError):
            space.affine_map(scale(8, 2.0))

    def test_normal_form_aux_maps(self):
        space = NormalFormSpace(16, 2, coord="rect")
        amap = space.affine_map(shift(16, 5.0))
        # mean dim shifts by 5, std dim unchanged.
        assert amap.scale[0] == 1.0 and amap.offset[0] == 5.0
        assert amap.scale[1] == 1.0 and amap.offset[1] == 0.0

    def test_zero_coefficient_pins_angle(self):
        """When a_f == 0 the angle dimension is pinned (no false dismissal
        through an arbitrary angle)."""
        n = 16
        space = PlainDFTSpace(n, 5, coord="polar")
        t = moving_average(n, 4)  # FFT of boxcar has exact zeros at f=4,8,12
        assert abs(t.a[4]) < 1e-12
        amap = space.affine_map(t)
        base = 2 * 4  # coefficient f=4 is the 5th retained pair
        assert amap.scale[base] == 0.0
        assert amap.scale[base + 1] == 0.0
        assert amap.offset[base + 1] == 0.0


class TestLowerBounds:
    @settings(max_examples=40, deadline=None)
    @given(series32, series32)
    def test_point_dist_lower_bounds_true_distance(self, a_list, b_list):
        """Lemma 1's inequality in feature coordinates, both spaces."""
        x = np.asarray(a_list) + np.linspace(0, 1, 32)
        y = np.asarray(b_list) + np.linspace(1, 0, 32)
        for space in spaces():
            true = float(
                np.linalg.norm(space.series_spectrum(x) - space.series_spectrum(y))
            )
            lb = space.point_dist(space.extract(x), space.extract(y))
            assert lb <= true + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(series32, series32)
    def test_rect_mindist_bounds_point_dist(self, a_list, b_list):
        """mindist(rect, q) <= point_dist(p, q) for any p in rect."""
        from repro.rtree.geometry import Rect

        x = np.asarray(a_list) + np.linspace(0, 1, 32)
        y = np.asarray(b_list) + np.linspace(1, 0, 32)
        for space in spaces():
            px, py = space.extract(x), space.extract(y)
            rect = Rect.from_point(px)
            assert space.rect_mindist(rect, py) <= space.point_dist(px, py) + 1e-6

    def test_rect_mindist_wider_box(self, rng):
        """For a genuine box containing the point, mindist still bounds."""
        from repro.rtree.geometry import Rect

        for space in spaces():
            x = rng.normal(size=32)
            y = rng.normal(size=32)
            px, py = space.extract(x), space.extract(y)
            rect = Rect(px - 0.3, px + 0.3)
            assert space.rect_mindist(rect, py) <= space.point_dist(px, py) + 1e-9

    def test_point_dist_rect_equals_euclidean_on_coeff_dims(self, rng):
        space = PlainDFTSpace(32, 3, coord="rect")
        x, y = rng.normal(size=32), rng.normal(size=32)
        px, py = space.extract(x), space.extract(y)
        assert space.point_dist(px, py) == pytest.approx(
            float(np.linalg.norm(px - py))
        )

    def test_polar_point_dist_equals_complex_distance(self, rng):
        space = PlainDFTSpace(32, 3, coord="polar")
        x, y = rng.normal(size=32), rng.normal(size=32)
        cx, cy = dft(x)[:3], dft(y)[:3]
        want = float(np.linalg.norm(cx - cy))
        got = space.point_dist(space.extract(x), space.extract(y))
        assert got == pytest.approx(want, abs=1e-9)
