"""The vectorised intersection path must agree with the scalar one.

``TransformedIndexView.search`` tests whole nodes at once through
:func:`repro.rtree.geometry.intersects_circular_many`; the scalar
:func:`intersects_circular` is the independently-tested reference.  These
property tests pin the two together, including the wrap-around closed
form the vectorised path uses.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.geometry import (
    Rect,
    intersects_circular,
    intersects_circular_many,
)

coord = st.floats(min_value=-20, max_value=20, allow_nan=False)
width = st.floats(min_value=0, max_value=8, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(
    lows=st.lists(st.tuples(coord, coord, coord), min_size=1, max_size=20),
    widths=st.lists(st.tuples(width, width, width), min_size=1, max_size=20),
    qlo=st.tuples(coord, coord, coord),
    qw=st.tuples(width, width, width),
    mask_bits=st.tuples(st.booleans(), st.booleans(), st.booleans()),
)
def test_vectorized_agrees_with_scalar(lows, widths, qlo, qw, mask_bits):
    m = min(len(lows), len(widths))
    lo = np.array(lows[:m], dtype=np.float64)
    hi = lo + np.array(widths[:m], dtype=np.float64)
    qlo_arr = np.array(qlo, dtype=np.float64)
    qhi_arr = qlo_arr + np.array(qw, dtype=np.float64)
    mask = np.array(mask_bits)
    got = intersects_circular_many(lo, hi, qlo_arr, qhi_arr, mask)
    query = Rect(qlo_arr, qhi_arr)
    for i in range(m):
        want = intersects_circular(Rect(lo[i], hi[i]), query, mask)
        assert bool(got[i]) == want, (lo[i], hi[i], qlo_arr, qhi_arr, mask)


@settings(max_examples=150, deadline=None)
@given(
    a0=coord,
    wa=st.floats(0, 10),
    b0=coord,
    wb=st.floats(0, 10),
)
def test_closed_form_matches_segment_form_1d(a0, wa, b0, wb):
    """The (b0-a0) mod P <= wa closed form == the split-segment test."""
    lo = np.array([[a0]])
    hi = np.array([[a0 + wa]])
    got = intersects_circular_many(
        lo, hi, np.array([b0]), np.array([b0 + wb]), np.array([True])
    )
    want = intersects_circular(
        Rect([a0], [a0 + wa]), Rect([b0], [b0 + wb]), np.array([True])
    )
    assert bool(got[0]) == want


def test_no_mask_is_plain_intersection():
    lo = np.array([[0.0, 0.0], [5.0, 5.0]])
    hi = np.array([[1.0, 1.0], [6.0, 6.0]])
    got = intersects_circular_many(
        lo, hi, np.array([0.5, 0.5]), np.array([0.8, 0.8]), None
    )
    assert list(got) == [True, False]


def test_full_circle_rectangle_hits_everything():
    lo = np.array([[0.0, -np.pi]])
    hi = np.array([[1.0, np.pi]])
    mask = np.array([False, True])
    got = intersects_circular_many(
        lo, hi, np.array([0.5, 100.0]), np.array([0.6, 100.1]), mask
    )
    assert bool(got[0])


def test_empty_input():
    got = intersects_circular_many(
        np.empty((0, 2)), np.empty((0, 2)), np.zeros(2), np.ones(2), None
    )
    assert got.shape == (0,)
