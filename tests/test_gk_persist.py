"""Tests for GK95-constrained queries and engine persistence."""

import numpy as np
import pytest

from repro.core.engine import SimilarityEngine
from repro.core.features import PlainDFTSpace
from repro.core.gk import gk_bounds, gk_similar
from repro.core.transforms import moving_average
from repro.data import SequenceRelation, make_stock_universe
from repro.data.synthetic import random_walks
from repro.persist import load_engine, save_engine


@pytest.fixture(scope="module")
def stock_engine():
    rel = make_stock_universe(count=120, length=64, seed=13)
    return SimilarityEngine(rel)


class TestGKBounds:
    def test_default_unbounded(self):
        b = gk_bounds(np.arange(10.0))
        assert b[0][0] < -1e17 and b[0][1] > 1e17
        assert b[1][0] < -1e17 and b[1][1] > 1e17

    def test_shift_window_centred_on_mean(self):
        x = np.array([1.0, 3.0])  # mean 2
        b = gk_bounds(x, shift_tolerance=0.5)
        assert b[0] == pytest.approx((1.5, 2.5))

    def test_scale_window_relative_to_std(self):
        x = np.array([0.0, 2.0])  # std 1
        b = gk_bounds(x, scale_range=(0.5, 2.0))
        assert b[1] == pytest.approx((0.5, 2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            gk_bounds(np.arange(4.0), shift_tolerance=-1.0)
        with pytest.raises(ValueError):
            gk_bounds(np.arange(4.0), scale_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            gk_bounds(np.arange(4.0), scale_range=(-1.0, 1.0))


class TestGKSimilar:
    def test_unconstrained_equals_plain_range_query(self, stock_engine):
        q = stock_engine.relation.get(0)
        a = gk_similar(stock_engine, q, eps=5.0)
        b = stock_engine.range_query(q, 5.0)
        assert [(r, round(d, 9)) for r, d in a] == [(r, round(d, 9)) for r, d in b]

    def test_shift_window_filters_by_mean(self, stock_engine):
        rel = stock_engine.relation
        q = rel.get(0)
        got = gk_similar(stock_engine, q, eps=8.0, shift_tolerance=2.0)
        q_mean = float(np.mean(q))
        for rid, _ in got:
            assert abs(float(np.mean(rel.get(rid))) - q_mean) <= 2.0 + 1e-9
        # And it is exactly the mean-filtered subset of the free query.
        free = stock_engine.range_query(q, 8.0)
        want = sorted(
            r
            for r, _ in free
            if abs(float(np.mean(rel.get(r))) - q_mean) <= 2.0
        )
        assert sorted(r for r, _ in got) == want

    def test_scale_window_filters_by_std(self, stock_engine):
        rel = stock_engine.relation
        q = rel.get(3)
        got = gk_similar(stock_engine, q, eps=8.0, scale_range=(0.5, 2.0))
        q_std = float(np.std(q))
        for rid, _ in got:
            ratio = float(np.std(rel.get(rid))) / q_std
            assert 0.5 - 1e-9 <= ratio <= 2.0 + 1e-9

    def test_combined_windows_and_transformation(self, stock_engine):
        q = stock_engine.relation.get(5)
        t = moving_average(64, 10)
        got = gk_similar(
            stock_engine, q, eps=6.0, shift_tolerance=5.0,
            scale_range=(0.25, 4.0), transformation=t, transform_query=True,
        )
        free = stock_engine.range_query(q, 6.0, transformation=t, transform_query=True)
        assert {r for r, _ in got} <= {r for r, _ in free}

    def test_requires_normal_form_space(self):
        rel = SequenceRelation.from_matrix(random_walks(10, 16, seed=1))
        engine = SimilarityEngine(rel, space=PlainDFTSpace(16, 2))
        with pytest.raises(TypeError):
            gk_similar(engine, rel.get(0), eps=1.0)


class TestPersistence:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        rel = make_stock_universe(count=80, length=64, seed=17)
        engine = SimilarityEngine(rel)
        path = str(tmp_path_factory.mktemp("engine"))
        save_engine(engine, path)
        return engine, path

    def test_files_written(self, saved):
        import os

        _, path = saved
        for name in ("relation.npy", "relation.json", "meta.json", "index.pages"):
            assert os.path.exists(os.path.join(path, name))

    def test_loaded_engine_answers_identically(self, saved):
        engine, path = saved
        loaded = load_engine(path)
        q = engine.relation.get(7)
        t = moving_average(64, 10)
        for kwargs in [
            dict(eps=5.0),
            dict(eps=3.0, transformation=t, transform_query=True),
        ]:
            a = engine.range_query(q, **kwargs)
            b = loaded.range_query(q, **kwargs)
            assert [(r, round(d, 8)) for r, d in a] == [
                (r, round(d, 8)) for r, d in b
            ]

    def test_loaded_knn_matches(self, saved):
        engine, path = saved
        loaded = load_engine(path)
        q = engine.relation.get(11)
        a = engine.knn_query(q, 5)
        b = loaded.knn_query(q, 5)
        assert [r for r, _ in a] == [r for r, _ in b]

    def test_loaded_tree_is_structurally_valid(self, saved):
        _, path = saved
        loaded = load_engine(path)
        loaded.tree.validate()
        assert len(loaded.tree) == 80

    def test_loaded_index_does_paged_io(self, saved):
        """The node tree is backed by the saved page file, not rebuilt.

        Batch queries run on the deserialised columnar kernel, so the
        paged-I/O property is asserted on the reference traversal, which
        still reads node pages through the buffer pool.
        """
        _, path = saved
        loaded = load_engine(path, buffer_capacity=0)
        loaded.stats.reset()
        view = loaded.view()
        mbr = view.root_mbr()
        assert len(view.search(mbr)) == 80
        assert loaded.stats.page_reads > 0

    def test_loaded_kernel_matches_refrozen_tree(self, saved):
        """The saved columnar arrays equal a fresh freeze of the paged tree."""
        from repro.rtree.kernel import FrozenRTree

        _, path = saved
        loaded = load_engine(path)
        saved_kernel = loaded.kernel
        refrozen = FrozenRTree.freeze(loaded.tree)
        for key, arr in refrozen.to_arrays().items():
            assert np.array_equal(saved_kernel.to_arrays()[key], arr), key

    def test_relation_metadata_survives(self, saved):
        engine, path = saved
        loaded = load_engine(path)
        assert loaded.relation.name(3) == engine.relation.name(3)
        assert loaded.relation.attrs(3) == engine.relation.attrs(3)

    def test_save_from_paged_engine(self, tmp_path):
        rel = make_stock_universe(count=40, length=64, seed=19)
        engine = SimilarityEngine(rel, paged=True)
        save_engine(engine, str(tmp_path / "e2"))
        loaded = load_engine(str(tmp_path / "e2"))
        a = engine.range_query(rel.get(1), 4.0)
        b = loaded.range_query(rel.get(1), 4.0)
        assert [r for r, _ in a] == [r for r, _ in b]

    def test_save_insert_built_guttman(self, tmp_path):
        from repro.rtree.guttman import GuttmanRTree

        rel = SequenceRelation.from_matrix(random_walks(50, 32, seed=23))
        engine = SimilarityEngine(rel, index_cls=GuttmanRTree, bulk_load=False)
        save_engine(engine, str(tmp_path / "e3"))
        loaded = load_engine(str(tmp_path / "e3"))
        assert isinstance(loaded.tree, GuttmanRTree)
        a = engine.range_query(rel.get(2), 3.0)
        b = loaded.range_query(rel.get(2), 3.0)
        assert [r for r, _ in a] == [r for r, _ in b]
