"""Engine health reports and planner-level graceful degradation."""


import pytest

from repro.core.engine import SimilarityEngine
from repro.core.health import ComponentHealth, HealthReport
from repro.core.language import QueryError, QuerySession, parse
from repro.core.plan import QuerySpec
from repro.data.relation import SequenceRelation
from repro.data.synthetic import random_walks
from repro.rtree.kernel import cached_kernel, frozen_kernel
from repro.storage.manifest import CorruptIndexError

N, LENGTH = 50, 32


@pytest.fixture
def engine():
    rel = SequenceRelation.from_matrix(random_walks(N, LENGTH, seed=5))
    return SimilarityEngine(rel)


class TestHealthReportUnit:
    def test_worst_of_overall(self):
        r = HealthReport(
            [
                ComponentHealth("a", "ok"),
                ComponentHealth("b", "degraded", "why"),
                ComponentHealth("c", "ok"),
            ]
        )
        assert r.status == "degraded"
        assert not r.ok
        assert r.component("b").detail == "why"

    def test_failed_beats_degraded(self):
        r = HealthReport(
            [ComponentHealth("a", "degraded"), ComponentHealth("b", "failed")]
        )
        assert r.status == "failed"

    def test_empty_report_is_ok(self):
        assert HealthReport([]).ok

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            HealthReport([ComponentHealth("a", "meh")])

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            HealthReport([]).component("kernel")

    def test_as_dict_shape(self):
        d = HealthReport([ComponentHealth("a", "ok", "fine")]).as_dict()
        assert d == {
            "status": "ok",
            "components": {"a": {"status": "ok", "detail": "fine"}},
        }


class TestEngineHealth:
    def test_fresh_engine_is_all_ok(self, engine):
        report = engine.health()
        assert report.ok
        assert {c.name for c in report.components} == {
            "relation", "index", "kernel", "kernel_executor", "persistence",
        }
        assert report.component("persistence").detail.startswith("built in memory")

    def test_kernel_disabled_reports_degraded(self, engine):
        engine.tree._kernel_disabled = True
        report = engine.health()
        assert report.status == "degraded"
        assert report.component("kernel").status == "degraded"
        assert report.component("index").status == "ok"

    def test_index_failed_reports_failed(self, engine):
        engine._index_failed = "checksum mismatch"
        report = engine.health()
        assert report.status == "failed"
        assert report.component("index").status == "failed"
        assert report.component("kernel").status == "failed"


class TestKernelDegradation:
    def test_disabled_kernel_blocks_frozen_and_cached(self, engine):
        engine.tree._kernel_disabled = True
        assert cached_kernel(engine.tree) is None
        with pytest.raises(CorruptIndexError):
            frozen_kernel(engine.tree)

    def test_queries_fall_back_to_reference_path(self, engine):
        q = engine.relation.get(0)
        expected = engine.range_query(q, eps=6.0)
        engine.tree._kernel_disabled = True
        assert engine.range_query(q, eps=6.0) == expected

    def test_explain_records_kernel_degradation(self, engine):
        engine.tree._kernel_disabled = True
        info = engine.explain(
            QuerySpec(
                kind="range", series=engine.relation.get(0), eps=2.0,
                method="index",
            )
        )
        assert info["access_path"] == "index"
        assert info["degraded_from"] == "frozen-kernel"


class TestIndexDegradation:
    def test_range_reroutes_to_scan(self, engine):
        q = engine.relation.get(0)
        expected = engine.range_query(q, eps=6.0)
        engine._index_failed = "index.pages failed its checksum"
        info = engine.explain(
            QuerySpec(kind="range", series=q, eps=6.0, method="index")
        )
        assert info["access_path"] == "scan"
        assert info["degraded_from"] == "index"
        assert engine.range_query(q, eps=6.0) == expected

    def test_knn_reroutes_to_scan(self, engine):
        q = engine.relation.get(2)
        expected = engine.knn_query(q, k=4)
        engine._index_failed = "bad pages"
        got = engine.plan(
            QuerySpec(kind="knn", series=q, k=4, method="index")
        ).execute()
        assert [r for r, _ in got] == [r for r, _ in expected]

    def test_join_abandons_index_methods(self, engine):
        expected = engine.plan(
            QuerySpec(kind="join", eps=3.0, method="index")
        ).execute()
        engine._index_failed = "bad pages"
        info = engine.explain(QuerySpec(kind="join", eps=3.0, method="index"))
        assert info["degraded_from"] == "index"
        got = engine.plan(QuerySpec(kind="join", eps=3.0, method="index")).execute()
        # pair sets agree; distances may differ in the last ulp between
        # the index join's and the scan-abandon join's verification order
        assert sorted((i, j) for i, j, _ in got) == sorted(
            (i, j) for i, j, _ in expected
        )

    def test_aux_bounds_cannot_degrade(self, engine):
        engine._index_failed = "bad pages"
        with pytest.raises(CorruptIndexError):
            engine.plan(
                QuerySpec(
                    kind="range", series=engine.relation.get(0), eps=2.0,
                    aux_bounds=[(0.0, 1.0)],
                    method="index",
                )
            )


class TestHealthLanguage:
    @pytest.fixture
    def session(self, engine):
        s = QuerySession()
        s.bind_relation("walks", engine.relation)
        s.bind_sequence("q", engine.relation.get(0))
        return s

    def test_health_statement(self, session):
        report = session.execute("HEALTH walks")
        assert report["status"] == "ok"

    def test_explain_health_rejected(self):
        with pytest.raises(QueryError, match="EXPLAIN"):
            parse("EXPLAIN HEALTH walks")

    def test_health_requires_relation_name(self):
        with pytest.raises(QueryError):
            parse("HEALTH")

    def test_budget_clause_parses(self):
        node = parse("RANGE q IN r EPS 2 BUDGET 100")
        assert node.budget_ms == 100
        node = parse("KNN SUBSEQ q IN r K 3 WINDOW 8 BUDGET 5")
        assert node.budget_ms == 5

    def test_budget_must_be_positive(self):
        with pytest.raises(QueryError, match="BUDGET"):
            parse("RANGE q IN r EPS 2 BUDGET 0")
