"""Tests for the hot-path regression gate (:mod:`benchmarks.check_hotpath_regression`).

The gate compares speedup *ratios* against the committed baseline, so it
must handle families whose committed value is deliberately below 1.0
(``persist_save`` trades throughput for fsync durability) exactly like
the >1.0 ones, and it must fail loudly — not silently pass everything —
when a baseline entry is zero, negative or non-finite.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.check_hotpath_regression import collect_speedups, compare, main


def report(**families: float) -> dict:
    return {name: {"speedup": value} for name, value in families.items()}


# ----------------------------------------------------------------------
# collect_speedups
# ----------------------------------------------------------------------
def test_collect_walks_nested_trees_and_keys_by_path() -> None:
    tree = {
        "knn_batch": {"speedup": 8.3},
        "subseq": {"knn": {"speedup": 2.0}, "note": "text"},
        "meta": {"speedup": "not-a-number"},
    }
    assert collect_speedups(tree) == {
        "knn_batch.speedup": 8.3,
        "subseq.knn.speedup": 2.0,
    }


# ----------------------------------------------------------------------
# ratio-space comparison, including sub-1.0 families
# ----------------------------------------------------------------------
def test_matching_report_passes() -> None:
    base = report(knn_batch=8.3, persist_save=0.41)
    assert compare(base, base, tolerance=1.25) == []


def test_sub_unity_family_passes_within_tolerance() -> None:
    # 0.41 -> 0.40 is well inside a 1.25x ratio window; the gate must not
    # fail it just because the absolute value sits below 1.0.
    base = report(persist_save=0.41)
    assert compare(base, report(persist_save=0.40), tolerance=1.25) == []


def test_sub_unity_family_fails_past_tolerance() -> None:
    base = report(persist_save=0.41)
    failures = compare(base, report(persist_save=0.30), tolerance=1.25)
    assert len(failures) == 1
    assert "persist_save" in failures[0]


def test_improvement_always_passes() -> None:
    base = report(persist_save=0.41, knn_batch=8.3)
    cur = report(persist_save=1.2, knn_batch=12.0)
    assert compare(base, cur, tolerance=1.25) == []


def test_fast_family_regression_fails() -> None:
    base = report(knn_batch=8.3)
    failures = compare(base, report(knn_batch=5.0), tolerance=1.25)
    assert len(failures) == 1
    assert "knn_batch" in failures[0]


def test_missing_family_fails() -> None:
    failures = compare(report(knn_batch=8.3), report(range=2.0), tolerance=1.25)
    assert len(failures) == 1
    assert "missing from current report" in failures[0]


# ----------------------------------------------------------------------
# degenerate baselines must fail loudly, not mask regressions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [0.0, -3.0, float("nan"), float("inf")])
def test_degenerate_baseline_fails_instead_of_masking(bad: float) -> None:
    failures = compare(report(knn_batch=bad), report(knn_batch=0.0001), tolerance=1.25)
    assert len(failures) == 1
    assert "gates nothing" in failures[0]


@pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
def test_degenerate_current_value_fails(bad: float) -> None:
    failures = compare(report(knn_batch=8.3), report(knn_batch=bad), tolerance=1.25)
    assert len(failures) == 1
    assert "not a positive finite ratio" in failures[0]


# ----------------------------------------------------------------------
# CLI: --require and exit codes
# ----------------------------------------------------------------------
def write(tmp_path, name: str, payload: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def run_gate(tmp_path, baseline: dict, current: dict, *extra: str) -> int:
    argv = [
        "check",
        "--baseline", write(tmp_path, "base.json", baseline),
        "--current", write(tmp_path, "cur.json", current),
        *extra,
    ]
    import sys
    import unittest.mock
    with unittest.mock.patch.object(sys, "argv", argv):
        return main()


def test_cli_passes_matching_reports(tmp_path, capsys) -> None:
    base = report(knn_batch=8.3, persist_save=0.41)
    assert run_gate(tmp_path, base, base) == 0
    assert "passed" in capsys.readouterr().out


def test_cli_fails_on_regression(tmp_path, capsys) -> None:
    assert run_gate(tmp_path, report(knn_batch=8.3), report(knn_batch=2.0)) == 1
    assert "FAILED" in capsys.readouterr().out


def test_cli_require_missing_family_fails(tmp_path, capsys) -> None:
    base = report(knn_batch=8.3)
    code = run_gate(tmp_path, base, base, "--require", "parallel_range")
    assert code == 1
    assert "parallel_range" in capsys.readouterr().out


def test_cli_require_present_family_passes(tmp_path, capsys) -> None:
    base = report(knn_batch=8.3, parallel_range=1.0)
    code = run_gate(tmp_path, base, base, "--require", "parallel_range")
    assert code == 0
    capsys.readouterr()
