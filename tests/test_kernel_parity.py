"""Columnar-kernel parity: the frontier engine vs the node-object reference.

The frozen struct-of-arrays kernel (:mod:`repro.rtree.kernel`) must return
*identical* result sets to the recursive node-object traversals for every
workload it subsumes — range, fused multi-query range, incremental
nearest, multi-step k-NN and the index nested-loop join — across both
coordinate systems, all three build algorithms (Guttman insertion, R*
insertion, STR bulk load) and ``exploit_symmetry`` on/off.  The reference
paths stay in-tree precisely so these tests can hold the kernel to them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import queries as q
from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace
from repro.core.transforms import moving_average, scale
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.kernel import FrontierStats, FrozenRTree, frozen_kernel
from repro.rtree.rstar import RStarTree
from repro.rtree.search import incremental_nearest
from repro.rtree.transformed import TransformedIndexView

N = 64
COUNT = 120

#: (coord, exploit_symmetry, builder-name) grid of the acceptance criteria.
SPACES = [
    ("polar", False),
    ("polar", True),
    ("rect", False),
    ("rect", True),
]
BUILDS = [
    ("str-pack", dict(bulk_load=True, index_cls=RStarTree)),
    ("rstar-insert", dict(bulk_load=False, index_cls=RStarTree)),
    ("guttman-insert", dict(bulk_load=False, index_cls=GuttmanRTree)),
]


@pytest.fixture(scope="module")
def matrix() -> np.ndarray:
    return random_walks(COUNT, N, seed=97)


def build_engine(matrix, coord, symmetry, build_kwargs) -> SimilarityEngine:
    rel = SequenceRelation.from_matrix(matrix)
    space = NormalFormSpace(N, k=2, coord=coord, exploit_symmetry=symmetry)
    return SimilarityEngine(rel, space=space, max_entries=8, **build_kwargs)


def reference_view(engine, transformation=None) -> TransformedIndexView:
    """A view *without* the kernel — forces the recursive reference paths."""
    view = q._make_view(engine.tree, engine.space, transformation)
    view.kernel = None
    return view


def kernel_view(engine, transformation=None) -> TransformedIndexView:
    view = q._make_view(engine.tree, engine.space, transformation)
    assert view.kernel is not None
    return view


def transform_for(coord):
    # Theorem 2 limits S_rect to real stretch vectors; S_pol (Theorem 3)
    # takes the paper's moving average (complex stretch, zero shift).
    return moving_average(N, 8) if coord == "polar" else scale(N, 1.5)


@pytest.mark.parametrize("coord,symmetry", SPACES)
@pytest.mark.parametrize("build_name,build_kwargs", BUILDS)
class TestKernelParity:
    def test_range_ids_match_reference(
        self, matrix, coord, symmetry, build_name, build_kwargs
    ):
        eng = build_engine(matrix, coord, symmetry, build_kwargs)
        t = transform_for(coord)
        for transformation in (None, t):
            kv = kernel_view(eng, transformation)
            rv = reference_view(eng, transformation)
            for i in (0, 7, 33):
                for eps in (1.0, 4.0, 12.0):
                    qrect = eng.space.search_rect(eng.query_point(matrix[i]), eps)
                    got = sorted(kv.search_ids(qrect).tolist())
                    want = sorted(e.child for e in rv.search(qrect))
                    assert got == want, (build_name, coord, symmetry, i, eps)

    def test_fused_multi_query_range_matches_per_query(
        self, matrix, coord, symmetry, build_name, build_kwargs
    ):
        eng = build_engine(matrix, coord, symmetry, build_kwargs)
        t = transform_for(coord)
        kv = kernel_view(eng, t)
        rv = reference_view(eng, t)
        points = np.stack([eng.query_point(matrix[i]) for i in range(20)])
        qlows, qhighs = eng.space.search_rect_many(points, 5.0)
        fused = kv.search_many(qlows, qhighs)
        for i in range(20):
            from repro.rtree.geometry import Rect

            want = sorted(e.child for e in rv.search(Rect(qlows[i], qhighs[i])))
            assert sorted(fused[i].tolist()) == want, (build_name, coord, i)

    def test_knn_matches_reference(
        self, matrix, coord, symmetry, build_name, build_kwargs
    ):
        eng = build_engine(matrix, coord, symmetry, build_kwargs)
        t = transform_for(coord)
        for transformation in (None, t):
            for i in (3, 41):
                for k in (1, 5, COUNT + 10):
                    args = (
                        eng.tree, eng.space, eng.ground_spectra,
                        eng.query_spectrum(matrix[i]), eng.query_point(matrix[i]), k,
                    )
                    got = q.knn_query(*args, transformation=transformation)
                    want = q.knn_query(
                        *args, transformation=transformation, batched=False
                    )
                    # identical ids and identical distance multisets
                    assert [r for r, _ in got] == [r for r, _ in want]
                    assert np.allclose(
                        [d for _, d in got], [d for _, d in want], atol=1e-9
                    ), (build_name, coord, symmetry, i, k)

    def test_incremental_nearest_stream_matches_reference(
        self, matrix, coord, symmetry, build_name, build_kwargs
    ):
        eng = build_engine(matrix, coord, symmetry, build_kwargs)
        t = transform_for(coord)
        kv = kernel_view(eng, t)
        rv = reference_view(eng, t)
        qp = eng.query_point(matrix[9])
        kwargs = dict(
            rect_dist_many=eng.space.rect_mindist_many,
            point_dist_many=eng.space.point_dist_many,
        )
        stream_k = incremental_nearest(kv, qp, **kwargs)
        stream_r = incremental_nearest(rv, qp, **kwargs)
        got = [(d, e.child) for d, e in (next(stream_k) for _ in range(40))]
        want = [(d, e.child) for d, e in (next(stream_r) for _ in range(40))]
        # distances stream out in the same non-decreasing order
        assert np.allclose([d for d, _ in got], [d for d, _ in want], atol=1e-9)
        assert all(a <= b + 1e-12 for (a, _), (b, _) in zip(got, got[1:]))
        # the prefix sets agree wherever distances are distinct
        assert sorted(r for _, r in got) == sorted(r for _, r in want)

    def test_join_pairs_match_reference(
        self, matrix, coord, symmetry, build_name, build_kwargs
    ):
        eng = build_engine(matrix, coord, symmetry, build_kwargs)
        t = transform_for(coord)
        eps = 3.0
        got = q.all_pairs_index(
            eng.tree, eng.space, eng.ground_spectra, eng.points, eps, t,
        )
        want = q.all_pairs_index(
            eng.tree, eng.space, eng.ground_spectra, eng.points, eps, t,
            batched=False,
        )
        assert [(i, j, round(d, 9)) for i, j, d in got] == [
            (i, j, round(d, 9)) for i, j, d in want
        ]


class TestFrozenImage:
    def test_arrays_round_trip(self, matrix):
        eng = build_engine(matrix, "polar", False, BUILDS[0][1])
        kernel = frozen_kernel(eng.tree)
        clone = FrozenRTree.from_arrays(kernel.to_arrays())
        for key, arr in kernel.to_arrays().items():
            assert np.array_equal(clone.to_arrays()[key], arr), key
        assert clone.size == len(eng.relation)
        assert clone.height == eng.tree.height

    def test_mutation_invalidates_cache(self, matrix):
        eng = build_engine(matrix, "polar", False, BUILDS[1][1])
        before = frozen_kernel(eng.tree)
        assert frozen_kernel(eng.tree) is before  # cached
        eng.tree.insert_point(eng.points[0], 9999)
        after = frozen_kernel(eng.tree)
        assert after is not before
        assert after.size == before.size + 1
        qrect = eng.space.search_rect(eng.points[0], 1e-9)
        assert 9999 in after.range_ids(qrect.lows, qrect.highs).tolist()

    def test_long_lived_view_sees_mutations(self, matrix):
        """A view built before a mutation must not serve a stale kernel."""
        eng = build_engine(matrix, "polar", False, BUILDS[1][1])
        view = kernel_view(eng)
        qrect = eng.space.search_rect(eng.points[0], 1e-9)
        before = view.search_ids(qrect).tolist()
        assert 9999 not in before
        eng.tree.insert_point(eng.points[0], 9999)
        after = view.search_ids(qrect).tolist()
        assert 9999 in after
        assert sorted(after) == sorted(e.child for e in view.search(qrect))

    def test_refreeze_is_deferred_not_per_query(self, matrix):
        """Interleaved mutate/query must not pay an O(tree) refreeze per query.

        A stale cache serves ``None`` (reference path) for the first few
        accesses of a tree version and only refreezes once the same
        version keeps being queried; answers are correct throughout.
        """
        from repro.rtree.kernel import (
            REFREEZE_AFTER_STALE_READS,
            cached_kernel,
        )

        eng = build_engine(matrix, "polar", False, BUILDS[1][1])
        eng.tree.insert_point(eng.points[0], 9999)
        frozen_before = eng.tree._frozen_cache[1]
        for _ in range(REFREEZE_AFTER_STALE_READS - 1):
            assert cached_kernel(eng.tree) is None  # deferred, reference path
            assert eng.tree._frozen_cache[1] is frozen_before  # no rebuild yet
        rebuilt = cached_kernel(eng.tree)
        assert rebuilt is not None and rebuilt is not frozen_before
        assert cached_kernel(eng.tree) is rebuilt  # now cached and fresh
        # probes during the deferred window are still correct (they run the
        # recursive reference path against the live tree)
        eng.tree.insert_point(eng.points[1], 8888)
        view = eng.view()
        qrect = eng.space.search_rect(eng.points[1], 1e-9)
        assert 8888 in view.search_ids(qrect).tolist()

    def test_empty_tree_freezes_and_answers(self):
        tree = RStarTree(3)
        kernel = frozen_kernel(tree)
        assert kernel.size == 0
        assert kernel.range_ids(np.zeros(3), np.ones(3)).size == 0
        assert list(kernel.nearest_stream(np.zeros(3))) == []
        assert kernel.knn_batch(np.zeros((2, 3)), 4, lambda qi, r: r) == [[], []]

    def test_frontier_stats_populated(self, matrix):
        eng = build_engine(matrix, "polar", False, BUILDS[0][1])
        fstats = FrontierStats()
        kv = kernel_view(eng)
        qrect = eng.space.search_rect(eng.query_point(matrix[0]), 5.0)
        kv.search_ids(qrect, fstats=fstats)
        assert fstats.nodes_expanded > 0
        assert fstats.entries_scanned >= fstats.nodes_expanded
        assert fstats.frontier_peak > 0
        assert set(fstats.as_dict()) == {
            "nodes_expanded", "entries_scanned", "frontier_peak"
        }

    def test_explain_reports_frontier_after_run(self, matrix):
        from repro.core.plan import QuerySpec

        eng = build_engine(matrix, "polar", False, BUILDS[0][1])
        plan = eng.plan(
            QuerySpec(kind="range", series=matrix[0], eps=4.0, method="index")
        )
        plan.execute()
        probe = plan.explain()["plan"]["children"][0]
        assert probe["op"] == "IndexProbe"
        assert probe["frontier"]["nodes_expanded"] > 0

        knn_plan = eng.plan(QuerySpec(kind="knn", series=matrix[:6], k=3))
        knn_plan.execute()
        assert knn_plan.explain()["plan"]["frontier"]["nodes_expanded"] > 0

        join_plan = eng.plan(QuerySpec(kind="join", eps=2.0, method="index"))
        join_plan.execute()
        assert join_plan.explain()["plan"]["frontier"]["nodes_expanded"] > 0

    def test_explain_analyze_statement_carries_frontier(self, matrix):
        from repro.core.language import QuerySession

        session = QuerySession()
        session.bind_relation("r", SequenceRelation.from_matrix(matrix))
        session.bind_sequence("s0", matrix[0])
        out = session.execute("EXPLAIN ANALYZE RANGE s0 IN r EPS 4 PLAN index")
        probe = out["plan"]["children"][0]
        assert probe["frontier"]["entries_scanned"] > 0
        # plain EXPLAIN still compiles without running
        cold = session.execute("EXPLAIN RANGE s0 IN r EPS 4 PLAN index")
        assert "frontier" not in cold["plan"]["children"][0]


class TestSearchRectMany:
    @pytest.mark.parametrize("coord,symmetry", SPACES)
    def test_rows_match_scalar_construction(self, matrix, coord, symmetry):
        space = NormalFormSpace(N, k=2, coord=coord, exploit_symmetry=symmetry)
        points, _ = space.extract_many_with_spectra(matrix[:40])
        for eps in (0.0, 0.5, 6.0):
            lows, highs = space.search_rect_many(points, eps)
            for i in range(points.shape[0]):
                rect = space.search_rect(points[i], eps)
                assert np.allclose(lows[i], rect.lows, atol=1e-12), (coord, eps, i)
                assert np.allclose(highs[i], rect.highs, atol=1e-12), (coord, eps, i)

    def test_rows_metrics_match_many(self, matrix):
        space = NormalFormSpace(N, k=2, coord="polar")
        points, _ = space.extract_many_with_spectra(matrix[:30])
        qs = points[::-1].copy()
        rows = space.point_dist_rows(points, qs)
        for i in range(points.shape[0]):
            assert abs(rows[i] - space.point_dist(points[i], qs[i])) < 1e-9
        lows, highs = space.search_rect_many(points, 1.5)
        rrows = space.rect_mindist_rows(lows, highs, qs)
        for i in range(points.shape[0]):
            from repro.rtree.geometry import Rect

            want = space.rect_mindist(Rect(lows[i], highs[i]), qs[i])
            assert abs(rrows[i] - want) < 1e-9
