"""FrozenRTree ``savez`` round-trips: identical answers after reload.

Freezes trees produced by every build algorithm (Guttman insertion, R*
insertion, STR bulk load over points, and ``str_pack_rects`` over true
boxes — the ST-index's sub-trail payload), writes the columnar image
through ``to_arrays`` → ``np.savez`` → ``np.load`` → ``from_arrays``,
and asserts the reloaded kernel is bit-identical and answers every
traversal kind exactly like the original.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rtree.bulk import str_pack, str_pack_rects
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.kernel import FrozenRTree, frozen_kernel
from repro.rtree.rstar import RStarTree
from repro.subseq import STIndex

DIM = 4
COUNT = 160


def _points(seed=17):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 5, size=(COUNT, DIM))


def build_tree(name: str):
    pts = _points()
    if name == "str-pack":
        return str_pack(pts, max_entries=8)
    if name == "str-pack-rects":
        rng = np.random.default_rng(23)
        half = np.abs(rng.normal(0, 0.5, size=pts.shape))
        return str_pack_rects(pts - half, pts + half, max_entries=8)
    cls = {"guttman-insert": GuttmanRTree, "rstar-insert": RStarTree}[name]
    tree = cls(DIM, max_entries=8)
    for rid, p in enumerate(pts):
        tree.insert_point(p, rid)
    return tree


BUILDS = ["guttman-insert", "rstar-insert", "str-pack", "str-pack-rects"]


def roundtrip(kernel: FrozenRTree, tmp_path) -> FrozenRTree:
    path = tmp_path / "kernel.npz"
    np.savez(path, **kernel.to_arrays())
    with np.load(path) as arrays:
        return FrozenRTree.from_arrays(arrays)


@pytest.mark.parametrize("build", BUILDS)
class TestSavezRoundTrip:
    def test_arrays_bit_identical(self, build, tmp_path):
        kernel = frozen_kernel(build_tree(build))
        loaded = roundtrip(kernel, tmp_path)
        assert loaded.dim == kernel.dim and loaded.size == kernel.size
        for key, value in kernel.to_arrays().items():
            np.testing.assert_array_equal(value, loaded.to_arrays()[key])

    def test_range_answers_identical(self, build, tmp_path):
        kernel = frozen_kernel(build_tree(build))
        loaded = roundtrip(kernel, tmp_path)
        rng = np.random.default_rng(5)
        centers = rng.normal(0, 5, size=(6, DIM))
        for r in (0.5, 3.0, 20.0):
            lows, highs = centers - r, centers + r
            for c, lo, hi in zip(centers, lows, highs):
                np.testing.assert_array_equal(
                    np.sort(kernel.range_ids(lo, hi)),
                    np.sort(loaded.range_ids(lo, hi)),
                )
            got = kernel.range_ids_many(lows, highs)
            want = loaded.range_ids_many(lows, highs)
            for a, b in zip(got, want):
                np.testing.assert_array_equal(np.sort(a), np.sort(b))

    def test_leaf_entries_identical(self, build, tmp_path):
        kernel = frozen_kernel(build_tree(build))
        loaded = roundtrip(kernel, tmp_path)
        for a, b in zip(kernel.leaf_entries(), loaded.leaf_entries()):
            np.testing.assert_array_equal(a, b)

    def test_knn_answers_identical(self, build, tmp_path):
        kernel = frozen_kernel(build_tree(build))
        loaded = roundtrip(kernel, tmp_path)
        pts = _points()
        rng = np.random.default_rng(7)
        queries = rng.normal(0, 5, size=(4, DIM))

        def verify(qidx, rids):
            # Exact ground distance = feature distance for the point
            # trees; for the rect tree score against the box centers.
            if build == "str-pack-rects":
                lows, highs, ids = kernel.leaf_entries()
                order = np.argsort(ids)
                centers = ((lows + highs) / 2)[order]
                return np.linalg.norm(centers[rids] - queries[qidx], axis=1)
            return np.linalg.norm(pts[rids] - queries[qidx], axis=1)

        kwargs = dict(box_leaves=build == "str-pack-rects")
        got = kernel.knn_batch(queries, 5, verify, **kwargs)
        want = loaded.knn_batch(queries, 5, verify, **kwargs)
        assert got == want

    def test_nearest_stream_identical(self, build, tmp_path):
        if build == "str-pack-rects":
            pytest.skip("nearest_stream assumes point leaves")
        kernel = frozen_kernel(build_tree(build))
        loaded = roundtrip(kernel, tmp_path)
        q = np.zeros(DIM)
        got = [(rid, round(d, 12)) for d, rid, _ in kernel.nearest_stream(q)]
        want = [(rid, round(d, 12)) for d, rid, _ in loaded.nearest_stream(q)]
        assert got[:20] == want[:20]


class TestSTIndexKernelRoundTrip:
    def test_subseq_answers_survive_reload(self, tmp_path):
        rng = np.random.default_rng(31)
        idx = STIndex(window=8, k=3, chunk=8)
        for _ in range(8):
            idx.add_series(np.cumsum(rng.uniform(-1, 1, size=90)))
        loaded = roundtrip(idx.kernel, tmp_path)
        # Swap the reloaded image in for the frozen one: every fused
        # probe must return the same candidates.
        q = idx.series(2)[5:25]
        before = [(m.series_id, m.offset) for m in idx.range_query(q, 2.0)]
        idx._kernel = loaded
        after = [(m.series_id, m.offset) for m in idx.range_query(q, 2.0)]
        assert before == after
        knn_before = [(m.series_id, m.offset) for m in idx.knn_query(q, 5)]
        idx._kernel = loaded
        knn_after = [(m.series_id, m.offset) for m in idx.knn_query(q, 5)]
        assert knn_before == knn_after
