"""k-NN edge cases, defined once in the kernel (regression tests).

The contract — uniform across the scalar and batch paths and both access
paths: ``k == 0`` returns an empty answer (it used to raise on some paths
and not others), ``k > len(relation)`` returns every record, an empty
relation returns empty answers, and negative ``k`` raises everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SimilarityEngine
from repro.core.plan import QuerySpec
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.scan import scan_knn

N = 48
COUNT = 30


@pytest.fixture(scope="module")
def matrix() -> np.ndarray:
    return random_walks(COUNT, N, seed=11)


@pytest.fixture(scope="module")
def engine(matrix) -> SimilarityEngine:
    return SimilarityEngine(SequenceRelation.from_matrix(matrix))


@pytest.fixture(scope="module")
def empty_engine() -> SimilarityEngine:
    return SimilarityEngine(SequenceRelation(N))


class TestKZero:
    @pytest.mark.parametrize("method", ["index", "scan", "auto"])
    def test_scalar_returns_empty(self, engine, matrix, method):
        assert engine.knn_query(matrix[0], 0, method=method) == []

    @pytest.mark.parametrize("method", ["index", "scan", "auto"])
    def test_batch_returns_empty_per_query(self, engine, matrix, method):
        got = engine.knn_query_batch(matrix[:4], 0, method=method)
        assert got == [[], [], [], []]

    def test_scan_knn_returns_empty(self, engine):
        assert scan_knn(engine.ground_spectra, engine.ground_spectra[0], 0) == []


class TestKExceedsRelation:
    @pytest.mark.parametrize("method", ["index", "scan"])
    def test_scalar_returns_all(self, engine, matrix, method):
        got = engine.knn_query(matrix[0], COUNT + 25, method=method)
        assert sorted(r for r, _ in got) == list(range(COUNT))

    def test_batch_returns_all(self, engine, matrix):
        got = engine.knn_query_batch(matrix[:3], COUNT + 25)
        for per_query in got:
            assert sorted(r for r, _ in per_query) == list(range(COUNT))

    def test_batch_matches_scalar_order(self, engine, matrix):
        got = engine.knn_query_batch(matrix[:3], COUNT)
        for i in range(3):
            want = engine.knn_query(matrix[i], COUNT)
            assert [(r, round(d, 9)) for r, d in got[i]] == [
                (r, round(d, 9)) for r, d in want
            ]


class TestEmptyRelation:
    @pytest.mark.parametrize("k", [0, 1, 5])
    def test_scalar(self, empty_engine, matrix, k):
        assert empty_engine.knn_query(matrix[0], k) == []

    def test_batch(self, empty_engine, matrix):
        assert empty_engine.knn_query_batch(matrix[:2], 3) == [[], []]

    def test_range_still_empty(self, empty_engine, matrix):
        assert empty_engine.range_query(matrix[0], 10.0) == []


class TestNegativeK:
    def test_scalar_raises(self, engine, matrix):
        with pytest.raises(ValueError):
            engine.knn_query(matrix[0], -1)

    def test_batch_raises(self, engine, matrix):
        with pytest.raises(ValueError):
            engine.knn_query_batch(matrix[:2], -3)

    def test_compile_raises(self, engine, matrix):
        with pytest.raises(ValueError):
            engine.plan(QuerySpec(kind="knn", series=matrix[0], k=-1))

    def test_scan_raises(self, engine):
        with pytest.raises(ValueError):
            scan_knn(engine.ground_spectra, engine.ground_spectra[0], -1)


class TestKZeroThroughPlanAndLanguage:
    def test_plan_executes_empty(self, engine, matrix):
        plan = engine.plan(QuerySpec(kind="knn", series=matrix[0], k=0))
        assert plan.execute() == []
        batch = engine.plan(QuerySpec(kind="knn", series=matrix[:3], k=0))
        assert batch.execute() == [[], [], []]

    def test_language_statement(self, matrix):
        from repro.core.language import QuerySession

        session = QuerySession()
        session.bind_relation("r", SequenceRelation.from_matrix(matrix))
        session.bind_sequence("s0", matrix[0])
        assert session.execute("KNN s0 IN r K 0") == []
