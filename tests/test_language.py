"""Tests for the declarative query language."""

import numpy as np
import pytest

from repro.core.language import (
    JoinQuery,
    KnnQuery,
    QueryError,
    QuerySession,
    RangeQuery,
    parse,
    tokenize,
)
from repro.core.transforms import moving_average
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks


@pytest.fixture(scope="module")
def session():
    rel = SequenceRelation.from_matrix(random_walks(80, 64, seed=3))
    s = QuerySession()
    s.bind_relation("walks", rel)
    s.bind_sequence("q", rel.get(0))
    s.bind_sequence("p", rel.get(1))
    return s


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("range Q in R eps 1.5")
        assert toks[0].kind == "kw" and toks[0].text == "RANGE"
        assert toks[2].kind == "kw" and toks[2].text == "IN"

    def test_numbers(self):
        toks = tokenize("EPS -2.5e3")
        assert toks[1].kind == "number"
        assert float(toks[1].text) == -2500.0

    def test_bad_character(self):
        with pytest.raises(QueryError):
            tokenize("RANGE q @ r")

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize("mavg(20)")]
        assert kinds == ["ident", "punct", "number", "punct", "end"]


class TestParser:
    def test_range_ast(self):
        q = parse("RANGE q IN stocks EPS 2.5 USING mavg(20)")
        assert isinstance(q, RangeQuery)
        assert q.seq == "q" and q.relation == "stocks" and q.eps == 2.5
        assert q.using.calls[0].name == "mavg"
        assert q.using.calls[0].args == [20.0]

    def test_knn_ast(self):
        q = parse("KNN q IN stocks K 10")
        assert isinstance(q, KnnQuery)
        assert q.k == 10 and q.using is None

    def test_join_ast_with_method(self):
        q = parse("JOIN stocks EPS 1 USING reverse METHOD index")
        assert isinstance(q, JoinQuery)
        assert q.method == "index"
        assert q.using.calls[0].name == "reverse"

    def test_then_chain(self):
        q = parse("RANGE q IN r EPS 1 USING reverse THEN mavg(20) THEN identity")
        assert [c.name for c in q.using.calls] == ["reverse", "mavg", "identity"]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse("RANGE q IN r EPS 1 JUNK more")

    def test_missing_clause_rejected(self):
        with pytest.raises(QueryError):
            parse("RANGE q IN r")

    def test_non_integer_k_rejected(self):
        with pytest.raises(QueryError):
            parse("KNN q IN r K 2.5")

    def test_unknown_verb(self):
        with pytest.raises(QueryError):
            parse("FETCH q IN r EPS 1")

    def test_empty_query(self):
        with pytest.raises(QueryError):
            parse("")


class TestExecution:
    def test_range_equals_engine_call(self, session):
        got = session.execute("RANGE q IN walks EPS 5.0 USING mavg(10)")
        engine = session.engine("walks")
        want = engine.range_query(
            engine.relation.get(0),
            5.0,
            transformation=moving_average(64, 10),
            transform_query=True,
        )
        assert [(r, round(d, 9)) for r, d in got] == [
            (r, round(d, 9)) for r, d in want
        ]

    def test_knn_returns_k_results(self, session):
        got = session.execute("KNN q IN walks K 4")
        assert len(got) == 4

    def test_join_runs(self, session):
        got = session.execute("JOIN walks EPS 1.0 USING mavg(20)")
        assert all(i < j for i, j, _ in got)

    def test_dist_with_transform(self, session):
        d_plain = session.execute("DIST q, p")
        d_smooth = session.execute("DIST q, p USING mavg(10)")
        assert d_smooth <= d_plain + 1e-9

    def test_then_composition_order(self, session):
        a = session.execute("RANGE q IN walks EPS 4.0 USING reverse THEN mavg(10)")
        engine = session.engine("walks")
        from repro.core.transforms import reverse as rev

        t = rev(64).then(moving_average(64, 10))
        b = engine.range_query(
            engine.relation.get(0), 4.0, transformation=t, transform_query=True
        )
        assert sorted(r for r, _ in a) == sorted(r for r, _ in b)

    def test_unknown_relation(self, session):
        with pytest.raises(QueryError):
            session.execute("RANGE q IN nothing EPS 1")

    def test_unknown_sequence(self, session):
        with pytest.raises(QueryError):
            session.execute("RANGE missing IN walks EPS 1")

    def test_unknown_transformation(self, session):
        with pytest.raises(QueryError):
            session.execute("RANGE q IN walks EPS 1 USING fourier")

    def test_wrong_arity(self, session):
        with pytest.raises(QueryError):
            session.execute("RANGE q IN walks EPS 1 USING mavg")
        with pytest.raises(QueryError):
            session.execute("RANGE q IN walks EPS 1 USING reverse(3)")

    def test_invalid_builtin_argument(self, session):
        with pytest.raises(QueryError):
            session.execute("RANGE q IN walks EPS 1 USING mavg(1000)")

    def test_bad_join_method(self, session):
        with pytest.raises(QueryError):
            session.execute("JOIN walks EPS 1 METHOD bogus")

    def test_dist_length_mismatch(self, session):
        session.bind_sequence("short", np.zeros(8))
        with pytest.raises(QueryError):
            session.execute("DIST q, short")


class TestBindings:
    def test_user_transformation(self, session):
        t = moving_average(64, 10)
        session.bind_transformation("smooth10", t)
        a = session.execute("RANGE q IN walks EPS 5.0 USING smooth10")
        b = session.execute("RANGE q IN walks EPS 5.0 USING mavg(10)")
        assert [(r, round(d, 9)) for r, d in a] == [(r, round(d, 9)) for r, d in b]

    def test_cannot_shadow_builtin(self, session):
        with pytest.raises(QueryError):
            session.bind_transformation("mavg", moving_average(64, 3))

    def test_bound_transformation_length_checked(self, session):
        session.bind_transformation("tiny", moving_average(8, 2))
        with pytest.raises(QueryError):
            session.execute("RANGE q IN walks EPS 1 USING tiny")

    def test_bound_transformation_with_args_rejected(self, session):
        session.bind_transformation("noargs", moving_average(64, 2))
        with pytest.raises(QueryError):
            session.execute("RANGE q IN walks EPS 1 USING noargs(2)")

    def test_rebinding_relation_drops_engine(self, session):
        rel2 = SequenceRelation.from_matrix(random_walks(10, 64, seed=9))
        session.bind_relation("tmp", rel2)
        e1 = session.engine("tmp")
        session.bind_relation("tmp", rel2)
        e2 = session.engine("tmp")
        assert e1 is not e2
