"""Property tests for Lemma 1: the k-index filter has no false dismissals.

For random data sets, random query objects, random thresholds and every
safe transformation in a pool, the candidate set produced by the (possibly
transformed) index traversal must contain every true answer.  This is the
paper's central correctness claim; it holds here for both coordinate
systems and both index layouts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace, PlainDFTSpace
from repro.core.queries import _make_view
from repro.core.transforms import (
    identity,
    moving_average,
    reverse,
    scale,
    shift,
    time_warp,
)
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks

N = 32

POLAR_TRANSFORMS = [
    lambda: identity(N),
    lambda: moving_average(N, 4),
    lambda: moving_average(N, 9),
    lambda: reverse(N),
    lambda: scale(N, 0.5),
    lambda: time_warp(N, 3),
]
RECT_TRANSFORMS = [
    lambda: identity(N),
    lambda: reverse(N),
    lambda: scale(N, -2.0),
    lambda: shift(N, 4.0),
]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    eps=st.floats(0.05, 30.0),
    t_idx=st.integers(0, len(POLAR_TRANSFORMS) - 1),
    coord_nf=st.booleans(),
)
def test_no_false_dismissals_polar(seed, eps, t_idx, coord_nf):
    rng = np.random.default_rng(seed)
    rel = SequenceRelation.from_matrix(random_walks(40, N, seed=seed))
    space = (
        NormalFormSpace(N, 2, coord="polar")
        if coord_nf
        else PlainDFTSpace(N, 3, coord="polar")
    )
    engine = SimilarityEngine(rel, space=space)
    t = POLAR_TRANSFORMS[t_idx]()
    q = rel.get(int(rng.integers(0, 40)))
    q_spec = engine.query_spectrum(q)
    view = _make_view(engine.tree, space, t)
    rect = space.search_rect(engine.query_point(q), eps)
    candidates = {e.child for e in view.search(rect)}
    for rid in range(len(rel)):
        d = space.ground_distance(engine.ground_spectra[rid], q_spec, t)
        if d <= eps:
            assert rid in candidates, (
                f"false dismissal: record {rid} at distance {d} <= {eps} "
                f"missing under {t.name} in {type(space).__name__}"
            )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    eps=st.floats(0.05, 30.0),
    t_idx=st.integers(0, len(RECT_TRANSFORMS) - 1),
    coord_nf=st.booleans(),
)
def test_no_false_dismissals_rect(seed, eps, t_idx, coord_nf):
    rel = SequenceRelation.from_matrix(random_walks(40, N, seed=seed + 1))
    space = (
        NormalFormSpace(N, 2, coord="rect")
        if coord_nf
        else PlainDFTSpace(N, 3, coord="rect")
    )
    engine = SimilarityEngine(rel, space=space)
    t = RECT_TRANSFORMS[t_idx]()
    q = rel.get(0)
    q_spec = engine.query_spectrum(q)
    view = _make_view(engine.tree, space, t)
    rect = space.search_rect(engine.query_point(q), eps)
    candidates = {e.child for e in view.search(rect)}
    for rid in range(len(rel)):
        d = space.ground_distance(engine.ground_spectra[rid], q_spec, t)
        if d <= eps:
            assert rid in candidates


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 5000), eps=st.floats(0.05, 10.0))
def test_no_false_dismissals_with_symmetry_weights(seed, eps):
    """The tighter FRM94-style filter must still never dismiss answers."""
    rel = SequenceRelation.from_matrix(random_walks(30, N, seed=seed + 2))
    space = PlainDFTSpace(N, 3, coord="rect", exploit_symmetry=True)
    engine = SimilarityEngine(rel, space=space)
    q = rel.get(0)
    q_spec = engine.query_spectrum(q)
    view = _make_view(engine.tree, space, None)
    rect = space.search_rect(engine.query_point(q), eps)
    candidates = {e.child for e in view.search(rect)}
    for rid in range(len(rel)):
        d = space.ground_distance(engine.ground_spectra[rid], q_spec, None)
        if d <= eps:
            assert rid in candidates


def test_paper_unsafety_counterexample():
    """Section 3.1's counterexample: multiplying by s = 2-3j maps the point
    r = -2+2j from inside the rectangle [p, q] to outside its image —
    complex stretches are not safe in S_rect."""
    s = 2 - 3j
    p, q, r = -5 - 5j, 5 + 5j, -2 + 2j
    ps, qs, rs = p * s, q * s, r * s
    lo = np.array([min(ps.real, qs.real), min(ps.imag, qs.imag)])
    hi = np.array([max(ps.real, qs.real), max(ps.imag, qs.imag)])
    inside_before = (
        min(p.real, q.real) <= r.real <= max(p.real, q.real)
        and min(p.imag, q.imag) <= r.imag <= max(p.imag, q.imag)
    )
    inside_after = lo[0] <= rs.real <= hi[0] and lo[1] <= rs.imag <= hi[1]
    assert inside_before and not inside_after
    assert rs == pytest.approx(2 + 10j)
