"""Tests for the Goldin-Kanellakis normal form (Eq. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normal_form import denormalize, is_normal_form, mean_std, normal_form

series = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=2,
    max_size=64,
)


class TestNormalForm:
    def test_mean_zero_std_one(self, rng):
        x = rng.normal(10, 3, size=100)
        z = normal_form(x)
        assert float(np.mean(z)) == pytest.approx(0.0, abs=1e-10)
        assert float(np.std(z)) == pytest.approx(1.0, abs=1e-10)

    def test_constant_series_maps_to_zero(self):
        assert np.array_equal(normal_form(np.full(10, 7.0)), np.zeros(10))

    def test_idempotent(self, rng):
        x = rng.normal(size=50)
        once = normal_form(x)
        assert np.allclose(normal_form(once), once, atol=1e-9)

    def test_shift_scale_invariance(self, rng):
        """The whole point: normal form is invariant under positive affine
        rescaling of the series."""
        x = rng.normal(size=40)
        assert np.allclose(normal_form(3.5 * x + 100.0), normal_form(x), atol=1e-9)

    def test_negative_scale_flips(self, rng):
        x = rng.normal(size=40)
        assert np.allclose(normal_form(-x), -normal_form(x), atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            normal_form([])
        with pytest.raises(ValueError):
            normal_form(np.zeros((2, 2)))

    @settings(max_examples=50, deadline=None)
    @given(series)
    def test_roundtrip_property(self, xs):
        x = np.asarray(xs)
        m, s = mean_std(x)
        z = normal_form(x)
        if s > 1e-9:
            assert np.allclose(denormalize(z, m, s), x, atol=1e-6 * max(1, abs(m)))


class TestHelpers:
    def test_denormalize_validation(self):
        with pytest.raises(ValueError):
            denormalize([0.0], 1.0, -1.0)

    def test_is_normal_form(self, rng):
        x = rng.normal(size=30)
        assert is_normal_form(normal_form(x))
        assert not is_normal_form(x + 100)
        assert is_normal_form(np.zeros(5))

    def test_mean_std(self):
        m, s = mean_std([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)
        assert s == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_example_2_1_statistics_shape(self, stock_relation):
        """Normal forms of two stocks are closer than shifted forms, which
        are closer than the originals (Example 2.1's chain), for a typical
        correlated pair."""
        a = stock_relation.get(30)
        b = stock_relation.get(31)
        d_orig = float(np.linalg.norm(a - b))
        d_shift = float(np.linalg.norm((a - a.mean()) - (b - b.mean())))
        d_norm = float(np.linalg.norm(normal_form(a) - normal_form(b)))
        assert d_shift <= d_orig + 1e-9
        # Scaling to unit variance cannot be guaranteed to shrink further in
        # every case, but it must stay bounded by the crude upper bound.
        assert d_norm <= d_shift + 2 * np.sqrt(len(a))
