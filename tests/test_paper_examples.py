"""Exact reproductions of the numbers printed in the paper."""

import numpy as np
import pytest

from repro.core.normal_form import normal_form
from repro.core.similarity import euclidean
from repro.core.transforms import moving_average, reverse, time_warp, warp_series
from repro.data.examples import EX11_S1, EX11_S2, EX12_P, EX12_S
from repro.dft import dft


class TestExample11:
    """Example 1.1: two stocks that look different raw, similar smoothed."""

    def test_raw_distance_is_11_92(self):
        assert euclidean(EX11_S1, EX11_S2) == pytest.approx(11.92, abs=0.005)

    def test_three_day_moving_average_distance_is_0_47(self):
        t = moving_average(15, 3)
        d = euclidean(t.apply_series(EX11_S1), t.apply_series(EX11_S2))
        assert d == pytest.approx(0.47, abs=0.005)

    def test_moving_average_computed_via_convolution_rule(self):
        """Section 3.2: T_mavg3(S1) = S1 * M3 in the frequency domain
        equals conv(s1, m3) in the time domain."""
        from repro.dft import circular_convolve

        m3 = np.zeros(15)
        m3[:3] = 1.0 / 3.0
        t = moving_average(15, 3)
        assert np.allclose(
            t.apply_series(EX11_S1), circular_convolve(EX11_S1, m3), atol=1e-9
        )


class TestExample12:
    """Example 1.2: time warping aligns series sampled at different rates."""

    def test_warping_p_by_2_gives_s_exactly(self):
        assert np.array_equal(warp_series(EX12_P, 2), EX12_S)

    def test_direct_distance_is_large(self):
        """Any length-4 subsequence of s is far from p (paper: > 1.41)."""
        dists = [
            euclidean(EX12_S[i : i + 4], EX12_P) for i in range(len(EX12_S) - 3)
        ]
        assert min(dists) >= 1.41 - 1e-9

    def test_warp_transformation_matches_warped_spectrum(self):
        """Eq. 18/19 on the actual example, paper normalisation."""
        t = time_warp(4, 2)
        S = dft(EX12_P)
        S_warp = np.fft.fft(EX12_S) / np.sqrt(4)
        assert np.allclose(t.a * S, S_warp[:4], atol=1e-9)


class TestExample22Reverse:
    """Example 2.2's machinery: T_rev in the frequency domain negates."""

    def test_trev_is_negation(self, rng):
        x = rng.normal(size=128)
        t = reverse(128)
        assert np.allclose(t.apply_series(x), -x, atol=1e-9)

    def test_reversed_series_match_after_reversal(self, rng):
        """D(T_rev(x), y) == 0 when y = -x: opposite movers are found."""
        x = rng.normal(size=128)
        t = reverse(128)
        assert euclidean(t.apply_series(x), -x) == pytest.approx(0.0, abs=1e-9)


class TestSection5IndexLayout:
    """Section 5: normal form's first coefficient is always zero."""

    def test_first_coefficient_of_normal_form_is_zero(self, rng):
        for _ in range(10):
            x = rng.normal(50, 10, size=128)
            Z = dft(normal_form(x))
            assert abs(Z[0]) < 1e-9

    def test_paper_feature_vector_is_six_dimensional(self):
        from repro.core.features import NormalFormSpace

        space = NormalFormSpace(128, k=2, coord="polar")
        assert space.dim == 6
