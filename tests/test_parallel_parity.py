"""Parallel kernel execution is bit-identical to serial execution.

The :class:`~repro.rtree.parallel.KernelExecutor` shards fused query
batches (and the outer side of ``join_pairs``) across worker threads.
The contract checked here: for every kernel entry point, the sharded
answer equals the serial answer *exactly* — same ids, same distances,
same ordering — regardless of worker count or chunk boundaries, and the
merged ``IOStats``/``FrontierStats`` counters match the serial run.

Also covers the supporting seams introduced with the executor:
``resolve_worker_count`` (the ``REPRO_KERNEL_THREADS`` knob), the
thread-safe stats counters (no lost increments under concurrent
``add``/``bump``), and budget determinism when a shared budget fires
mid-shard.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import SimilarityEngine
from repro.core.plan import QuerySpec
from repro.core.transforms import moving_average
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.rtree.backend import KERNEL_THREADS_VAR, resolve_worker_count
from repro.rtree.kernel import FrontierStats
from repro.rtree.parallel import KernelExecutor
from repro.storage.budget import QueryBudgetExceeded, ResourceBudget
from repro.storage.stats import IOStats
from repro.subseq.stindex import STIndex

N, LENGTH = 150, 64


@pytest.fixture(scope="module")
def relation():
    return SequenceRelation.from_matrix(random_walks(N, LENGTH, seed=33))


@pytest.fixture(scope="module")
def serial_engine(relation):
    return SimilarityEngine(relation, executor=KernelExecutor(workers=1))


def sharded_engine(relation, workers):
    # min_block=1 forces real chunking even on small test batches, so the
    # shard boundaries (including uneven splits) actually exercise the
    # merge paths.
    return SimilarityEngine(
        relation, executor=KernelExecutor(workers=workers, min_block=1)
    )


def matches_equal(a, b):
    return [[(r, d) for r, d in row] for row in a] == [
        [(r, d) for r, d in row] for row in b
    ]


# ----------------------------------------------------------------------
# resolve_worker_count: the REPRO_KERNEL_THREADS knob
# ----------------------------------------------------------------------
class TestResolveWorkerCount:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_VAR, raising=False)
        assert resolve_worker_count() == 1

    def test_env_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_VAR, "3")
        assert resolve_worker_count() == 3

    @pytest.mark.parametrize("spec", ["auto", "0", "", 0])
    def test_auto_resolves_to_at_least_one(self, spec):
        assert resolve_worker_count(spec) >= 1

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_VAR, "7")
        assert resolve_worker_count(2) == 2

    @pytest.mark.parametrize("bad", ["three", "1.5", -1, "-2"])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            resolve_worker_count(bad)

    def test_env_error_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_VAR, "lots")
        with pytest.raises(ValueError, match=KERNEL_THREADS_VAR):
            resolve_worker_count()


# ----------------------------------------------------------------------
# thread-safe stats: no lost counts under concurrent writers
# ----------------------------------------------------------------------
class TestConcurrentStats:
    THREADS, ROUNDS = 8, 2_000

    def test_concurrent_add_loses_no_counts(self):
        stats = IOStats()

        def hammer():
            for _ in range(self.ROUNDS):
                stats.add(candidate_count=1, distance_computations=2)

        workers = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert stats.candidate_count == self.THREADS * self.ROUNDS
        assert stats.distance_computations == 2 * self.THREADS * self.ROUNDS

    def test_concurrent_bump_loses_no_counts(self):
        stats = IOStats()

        def hammer():
            for _ in range(self.ROUNDS):
                stats.bump("probe_rounds")

        workers = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert stats.extra["probe_rounds"] == self.THREADS * self.ROUNDS

    def test_add_rejects_unknown_counters(self):
        with pytest.raises(AttributeError):
            IOStats().add(not_a_counter=1)

    def test_merge_and_dunder_add_sum_all_fields(self):
        a, b = IOStats(), IOStats()
        a.add(page_reads=3, node_reads=5)
        b.add(page_reads=4, verifications_completed=2)
        total = a + b
        assert total.page_reads == 7
        assert total.node_reads == 5
        assert total.verifications_completed == 2
        a.merge(b)
        assert a.page_reads == 7 and a.verifications_completed == 2
        assert b.page_reads == 4  # merge leaves the source untouched

    def test_frontier_stats_merge_sums_counts_and_maxes_peak(self):
        a, b = FrontierStats(), FrontierStats()
        a.nodes_expanded, a.entries_scanned = 5, 50
        a.observe(12)
        b.nodes_expanded, b.entries_scanned = 3, 30
        b.observe(9)
        a.merge(b)
        assert (a.nodes_expanded, a.entries_scanned, a.frontier_peak) == (8, 80, 12)
        c = FrontierStats()
        c.observe(40)
        total = a + c
        assert (total.nodes_expanded, total.frontier_peak) == (8, 40)


# ----------------------------------------------------------------------
# whole-sequence parity: range / knn / join across worker counts
# ----------------------------------------------------------------------
WORKER_GRID = [2, 3, "auto"]


class TestEngineParity:
    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_range_batch(self, relation, serial_engine, workers):
        queries = relation.matrix[:23]
        want = serial_engine.range_query_batch(queries, 6.0)
        got = sharded_engine(relation, workers).range_query_batch(queries, 6.0)
        assert matches_equal(got, want)

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_range_batch_with_transformation(self, relation, serial_engine, workers):
        queries = relation.matrix[40:51]
        t = moving_average(LENGTH, 8)
        want = serial_engine.range_query_batch(
            queries, 4.0, transformation=t, transform_query=True
        )
        got = sharded_engine(relation, workers).range_query_batch(
            queries, 4.0, transformation=t, transform_query=True
        )
        assert matches_equal(got, want)

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_knn_batch(self, relation, serial_engine, workers):
        queries = relation.matrix[10:27]  # 17 rows: uneven across any grid
        want = serial_engine.knn_query_batch(queries, 7)
        got = sharded_engine(relation, workers).knn_query_batch(queries, 7)
        assert matches_equal(got, want)

    @pytest.mark.parametrize("workers", WORKER_GRID)
    @pytest.mark.parametrize("method", ["index", "tree-join"])
    def test_all_pairs_join(self, relation, serial_engine, workers, method):
        want = serial_engine.all_pairs(2.5, method=method)
        got = sharded_engine(relation, workers).all_pairs(2.5, method=method)
        assert got == want

    def test_single_query_batch_degenerates_cleanly(self, relation, serial_engine):
        queries = relation.matrix[5:6]
        engine = sharded_engine(relation, 4)
        assert matches_equal(
            engine.range_query_batch(queries, 6.0),
            serial_engine.range_query_batch(queries, 6.0),
        )
        assert matches_equal(
            engine.knn_query_batch(queries, 3),
            serial_engine.knn_query_batch(queries, 3),
        )

    def test_env_driven_default_executor(self, relation, serial_engine, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_VAR, "2")
        engine = SimilarityEngine(relation)
        assert engine.executor.workers == 2
        queries = relation.matrix[:19]
        assert matches_equal(
            engine.range_query_batch(queries, 6.0),
            serial_engine.range_query_batch(queries, 6.0),
        )

    def test_explain_reports_the_executor(self, relation):
        engine = sharded_engine(relation, 3)
        spec = QuerySpec(kind="range", series=relation.matrix[:4], eps=1.0)
        info = engine.explain(spec)["executor"]
        assert info == {
            "workers": 3,
            "min_block": 1,
            "mode": "threads",
            "retries": 0,
            "degraded_to_serial": False,
            "breaker_reason": None,
        }
        serial = SimilarityEngine(relation, executor=KernelExecutor(workers=1))
        assert serial.explain(spec)["executor"]["mode"] == "serial"

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_merged_io_stats_match_serial(self, relation, serial_engine, workers):
        queries = relation.matrix[:23]
        serial_engine.tree.store.stats.reset()
        serial_engine.range_query_batch(queries, 6.0)
        want = serial_engine.tree.store.stats.snapshot()
        engine = sharded_engine(relation, workers)
        engine.tree.store.stats.reset()
        engine.range_query_batch(queries, 6.0)
        assert engine.tree.store.stats.snapshot() == want


# ----------------------------------------------------------------------
# subsequence (ST-index) parity
# ----------------------------------------------------------------------
def build_stindex(executor=None):
    walks = random_walks(20, 180, seed=9)
    idx = STIndex(window=16, k=3, chunk=8, executor=executor)
    idx.add_series_many(walks)
    return idx


class TestSubseqParity:
    @pytest.fixture(scope="class")
    def serial_idx(self):
        return build_stindex()

    @pytest.fixture(scope="class")
    def sharded_idx(self):
        return build_stindex(KernelExecutor(workers=3, min_block=1))

    def triples(self, matches):
        return [(m.series_id, m.offset, m.distance) for m in matches]

    @pytest.mark.parametrize("qlen,eps", [(16, 2.0), (24, 4.0), (40, 8.0)])
    def test_range(self, serial_idx, sharded_idx, qlen, eps):
        q = serial_idx.series(4)[10 : 10 + qlen].copy()
        got = self.triples(sharded_idx.range_query(q, eps))
        assert got == self.triples(serial_idx.range_query(q, eps))
        assert got == self.triples(serial_idx.brute_force(q, eps))

    def test_range_batch(self, serial_idx, sharded_idx):
        queries = [serial_idx.series(i)[7:23].copy() for i in range(9)]
        got = sharded_idx.range_query_batch(queries, 3.0)
        want = serial_idx.range_query_batch(queries, 3.0)
        assert [self.triples(m) for m in got] == [self.triples(m) for m in want]

    def test_knn_batch(self, serial_idx, sharded_idx):
        queries = [serial_idx.series(i)[5:21].copy() for i in range(7)]
        got = sharded_idx.knn_query_batch(queries, 5)
        want = serial_idx.knn_query_batch(queries, 5)
        assert [self.triples(m) for m in got] == [self.triples(m) for m in want]


# ----------------------------------------------------------------------
# budgets under sharding: same typed error / same exact partials
# ----------------------------------------------------------------------
class TestBudgetDeterminism:
    def run_range(self, relation, engine, budget):
        spec = QuerySpec(
            kind="range", series=relation.matrix[:17], eps=6.0,
            method="index", budget=budget,
        )
        return engine.plan(spec).execute()

    def test_candidate_cap_raises_identically(self, relation, serial_engine):
        with pytest.raises(QueryBudgetExceeded) as serial_exc:
            self.run_range(relation, serial_engine, ResourceBudget(max_candidates=0))
        engine = sharded_engine(relation, 3)
        with pytest.raises(QueryBudgetExceeded) as sharded_exc:
            self.run_range(relation, engine, ResourceBudget(max_candidates=0))
        assert sharded_exc.value.kind == serial_exc.value.kind == "candidates"

    def test_expired_deadline_raises_identically(self, relation, serial_engine):
        # A deadline this small has always elapsed by the first frontier
        # check, in every worker — so all shards see the same verdict.
        with pytest.raises(QueryBudgetExceeded) as serial_exc:
            self.run_range(relation, serial_engine, ResourceBudget(deadline_ms=1e-4))
        engine = sharded_engine(relation, 3)
        with pytest.raises(QueryBudgetExceeded) as sharded_exc:
            self.run_range(relation, engine, ResourceBudget(deadline_ms=1e-4))
        assert sharded_exc.value.kind == serial_exc.value.kind == "deadline"

    def test_knn_truncation_partials_match(self, relation, serial_engine):
        queries = relation.matrix[:11]
        serial_budget = ResourceBudget(deadline_ms=1e-4)
        want = serial_engine.plan(
            QuerySpec(kind="knn", series=queries, k=5, budget=serial_budget)
        ).execute()
        sharded_budget = ResourceBudget(deadline_ms=1e-4)
        engine = sharded_engine(relation, 3)
        got = engine.plan(
            QuerySpec(kind="knn", series=queries, k=5, budget=sharded_budget)
        ).execute()
        assert serial_budget.truncated and sharded_budget.truncated
        assert matches_equal(got, want)


# ----------------------------------------------------------------------
# executor lifecycle: shutdown, lazy rebuild, circuit-breaker surface
# ----------------------------------------------------------------------
class TestExecutorLifecycle:
    def test_shutdown_is_idempotent(self, relation):
        engine = sharded_engine(relation, 3)
        engine.range_query_batch(relation.matrix[:9], 6.0)
        engine.executor.shutdown()
        engine.executor.shutdown()  # second call is a no-op, not an error

    def test_pool_rebuilds_lazily_after_shutdown(self, relation, serial_engine):
        engine = sharded_engine(relation, 3)
        queries = relation.matrix[:19]
        want = serial_engine.range_query_batch(queries, 6.0)
        assert matches_equal(engine.range_query_batch(queries, 6.0), want)
        engine.executor.shutdown()
        # The next sharded batch must transparently rebuild the pool.
        assert matches_equal(engine.range_query_batch(queries, 6.0), want)

    def test_describe_reflects_a_tripped_breaker(self, relation):
        executor = KernelExecutor(workers=3, min_block=1)
        assert executor.describe()["mode"] == "threads"
        executor._trip("test: simulated repeated block failure")
        info = executor.describe()
        assert info["mode"] == "serial"
        assert info["degraded_to_serial"] is True
        assert "simulated" in info["breaker_reason"]
        # A tripped breaker collapses every batch to one serial block.
        assert executor._blocks(100) == [(0, 100)]
        executor.reset_breaker()
        assert executor.describe()["mode"] == "threads"
        assert executor.describe()["breaker_reason"] is None
        assert len(executor._blocks(100)) == 3

    def test_tripped_breaker_still_answers_exactly(self, relation, serial_engine):
        engine = sharded_engine(relation, 3)
        queries = relation.matrix[:19]
        want = serial_engine.range_query_batch(queries, 6.0)
        engine.executor._trip("test: simulated repeated block failure")
        assert matches_equal(engine.range_query_batch(queries, 6.0), want)

    def test_watchdog_grace_resolution(self, monkeypatch):
        from repro.rtree.backend import (
            DEFAULT_WATCHDOG_GRACE_MS,
            WATCHDOG_GRACE_VAR,
            resolve_watchdog_grace,
        )

        monkeypatch.delenv(WATCHDOG_GRACE_VAR, raising=False)
        assert resolve_watchdog_grace() == DEFAULT_WATCHDOG_GRACE_MS
        monkeypatch.setenv(WATCHDOG_GRACE_VAR, "125")
        assert resolve_watchdog_grace() == 125.0
        assert resolve_watchdog_grace(10) == 10.0  # explicit beats env
        monkeypatch.setenv(WATCHDOG_GRACE_VAR, "nope")
        with pytest.raises(ValueError, match=WATCHDOG_GRACE_VAR):
            resolve_watchdog_grace()
        with pytest.raises(ValueError):
            resolve_watchdog_grace(-1)
