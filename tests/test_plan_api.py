"""Plan-API parity: ``plan(spec).execute()`` ≡ the pre-redesign paths.

The redesign's acceptance bar: compiling a :class:`QuerySpec` and
executing the resulting operator tree must return answers identical to
the original scalar/batch implementations in :mod:`repro.core.queries`
and :mod:`repro.scan` — for range, k-NN and all four join methods, with
and without transformations, on both access paths, scalar and batched.
Plus: EXPLAIN output shape, planner routing, and error behaviour.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import queries as q
from repro.core.engine import SimilarityEngine
from repro.core.plan import QuerySpec, dist_plan
from repro.core.transforms import identity, moving_average, reverse, scale
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.scan import scan_knn, scan_range

N = 64


@pytest.fixture(scope="module")
def relation():
    return SequenceRelation.from_matrix(random_walks(160, N, seed=11))


@pytest.fixture(scope="module")
def engine(relation):
    return SimilarityEngine(relation)


def matches_equal(a, b):
    return [(r, round(d, 9)) for r, d in a] == [(r, round(d, 9)) for r, d in b]


def triples_equal(a, b):
    return [(i, j, round(d, 9)) for i, j, d in a] == [
        (i, j, round(d, 9)) for i, j, d in b
    ]


TRANSFORMS = {
    "none": lambda n: None,
    "identity": lambda n: identity(n),
    "mavg10": lambda n: moving_average(n, 10),
    "reverse": lambda n: reverse(n),
    "scale2": lambda n: scale(n, 2.0),
}


# ----------------------------------------------------------------------
# range parity
# ----------------------------------------------------------------------
class TestRangeParity:
    @pytest.mark.parametrize("tname", list(TRANSFORMS))
    @pytest.mark.parametrize("transform_query", [False, True])
    def test_index_plan_matches_legacy_range(
        self, relation, engine, tname, transform_query
    ):
        t = TRANSFORMS[tname](N)
        series = relation.get(5)
        spec = QuerySpec(
            kind="range", series=series, eps=4.0, transformation=t,
            transform_query=transform_query, method="index",
        )
        got = engine.plan(spec).execute()
        q_spec, q_point = engine._query_reps(series, t, transform_query)
        want = q.range_query(
            engine.tree, engine.space, engine.ground_spectra,
            q_spec, q_point, 4.0, transformation=t,
        )
        assert matches_equal(got, want)

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        rid=st.integers(0, 159),
        eps=st.floats(0.1, 40.0),
        tname=st.sampled_from(list(TRANSFORMS)),
        method=st.sampled_from(["index", "scan", "auto"]),
    )
    def test_every_access_path_is_exact(self, relation, engine, rid, eps, tname, method):
        """Property: any spec routing returns the legacy index answer set."""
        t = TRANSFORMS[tname](N)
        series = relation.get(rid)
        spec = QuerySpec(
            kind="range", series=series, eps=eps, transformation=t,
            transform_query=True, method=method,
        )
        got = engine.plan(spec).execute()
        q_spec, q_point = engine._query_reps(series, t, True)
        want = q.range_query(
            engine.tree, engine.space, engine.ground_spectra,
            q_spec, q_point, eps, transformation=t,
        )
        assert matches_equal(got, want)

    def test_scan_plan_matches_seqscan(self, relation, engine):
        series = relation.get(9)
        t = moving_average(N, 10)
        spec = QuerySpec(
            kind="range", series=series, eps=6.0, transformation=t, method="scan"
        )
        got = engine.plan(spec).execute()
        want = scan_range(
            engine.ground_spectra, engine.query_spectrum(series), 6.0,
            transformation=t,
        )
        assert matches_equal(got, want)

    def test_aux_bounds_flow_through_plan(self, relation, engine):
        series = relation.get(0)
        mean = float(np.mean(series))
        bounds = [(mean - 1.0, mean + 1.0), (-1e18, 1e18)]
        spec = QuerySpec(
            kind="range", series=series, eps=6.0, aux_bounds=bounds, method="auto"
        )
        plan = engine.plan(spec)
        # aux bounds force the index path (only it can apply them).
        assert plan.logical.access_path == "index"
        assert matches_equal(
            plan.execute(), engine.range_query(series, 6.0, aux_bounds=bounds)
        )

    def test_aux_bounds_with_forced_scan_rejected(self, relation, engine):
        """A scan cannot apply aux bounds; dropping them silently would
        change the answer set, so the compile must refuse."""
        bounds = [(0.0, 1.0), (-1e18, 1e18)]
        with pytest.raises(ValueError):
            engine.plan(
                QuerySpec(kind="range", series=relation.get(0), eps=6.0,
                          aux_bounds=bounds, method="scan")
            )

    def test_empty_batch_auto_routes_cleanly(self, engine):
        """An empty (0, n) batch must not average an empty fraction list."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan = engine.plan(
                QuerySpec(kind="range", series=np.empty((0, N)), eps=1.0,
                          method="auto")
            )
        assert plan.logical.access_path == "index"
        assert plan.logical.estimated_fraction is None
        assert plan.execute() == []


# ----------------------------------------------------------------------
# batch parity (the fused BatchIndexProbe)
# ----------------------------------------------------------------------
class TestBatchParity:
    @pytest.mark.parametrize("tname", ["none", "mavg10", "reverse"])
    @pytest.mark.parametrize("transform_query", [False, True])
    def test_fused_batch_range_matches_scalar_loop(
        self, relation, engine, tname, transform_query
    ):
        t = TRANSFORMS[tname](N)
        batch = relation.matrix[:25]
        got = engine.range_query_batch(
            batch, 5.0, transformation=t, transform_query=transform_query
        )
        assert len(got) == 25
        for i, row in enumerate(batch):
            want = engine.range_query(
                row, 5.0, transformation=t, transform_query=transform_query
            )
            assert matches_equal(got[i], want), f"query {i}"

    def test_fused_batch_candidates_match_per_query_search(self, relation, engine):
        """The shared descent yields exactly the per-query candidate sets."""
        batch = relation.matrix[:15]
        eps = 6.0
        view = q._make_view(engine.tree, engine.space, None)
        qlows = np.empty((15, engine.space.dim))
        qhighs = np.empty((15, engine.space.dim))
        for i, row in enumerate(batch):
            rect = engine.space.search_rect(engine.query_point(row), eps)
            qlows[i], qhighs[i] = rect.lows, rect.highs
        fused = view.search_many(qlows, qhighs)
        for i in range(15):
            from repro.rtree.geometry import Rect

            single = view.search(Rect(qlows[i], qhighs[i]))
            assert sorted(fused[i]) == sorted(e.child for e in single), f"query {i}"

    def test_batch_knn_matches_scalar(self, relation, engine):
        t = moving_average(N, 10)
        batch = relation.matrix[40:55]
        got = engine.knn_query_batch(batch, 7, transformation=t)
        for i, row in enumerate(batch):
            assert matches_equal(got[i], engine.knn_query(row, 7, transformation=t))

    def test_batch_scan_matches_scalar_scan(self, relation, engine):
        batch = relation.matrix[:10]
        t = moving_average(N, 10)
        spec = QuerySpec(
            kind="range", series=batch, eps=8.0, transformation=t,
            transform_query=True, method="scan",
        )
        got = engine.plan(spec).execute()
        for i, row in enumerate(batch):
            want = engine.range_query(
                row, 8.0, transformation=t, transform_query=True
            )
            assert matches_equal(got[i], want), f"query {i}"

    def test_batch_shape_validation(self, engine):
        with pytest.raises(ValueError):
            engine.range_query_batch(np.zeros((3, N + 1)), 1.0)


# ----------------------------------------------------------------------
# k-NN parity
# ----------------------------------------------------------------------
class TestKnnParity:
    @pytest.mark.parametrize("tname", list(TRANSFORMS))
    def test_index_plan_matches_legacy_knn(self, relation, engine, tname):
        t = TRANSFORMS[tname](N)
        series = relation.get(33)
        spec = QuerySpec(kind="knn", series=series, k=9, transformation=t)
        got = engine.plan(spec).execute()
        q_spec, q_point = engine._query_reps(series, t, False)
        want = q.knn_query(
            engine.tree, engine.space, engine.ground_spectra,
            q_spec, q_point, 9, transformation=t,
        )
        assert matches_equal(got, want)

    def test_scan_knn_agrees_with_index_knn(self, relation, engine):
        series = relation.get(2)
        idx = engine.plan(
            QuerySpec(kind="knn", series=series, k=5, method="index")
        ).execute()
        scn = engine.plan(
            QuerySpec(kind="knn", series=series, k=5, method="scan")
        ).execute()
        assert matches_equal(idx, scn)
        want = scan_knn(engine.ground_spectra, engine.query_spectrum(series), 5)
        assert matches_equal(scn, want)

    def test_invalid_k_rejected_at_compile(self, relation, engine):
        with pytest.raises(ValueError):
            engine.plan(QuerySpec(kind="knn", series=relation.get(0), k=-1))

    def test_k_zero_compiles_to_empty_answer(self, relation, engine):
        plan = engine.plan(QuerySpec(kind="knn", series=relation.get(0), k=0))
        assert plan.execute() == []


# ----------------------------------------------------------------------
# join parity (all four Table-1 methods)
# ----------------------------------------------------------------------
class TestJoinParity:
    @pytest.fixture(scope="class")
    def small_engine(self):
        rel = SequenceRelation.from_matrix(random_walks(50, N, seed=4))
        return SimilarityEngine(rel)

    @pytest.mark.parametrize("method", ["scan", "scan-abandon", "index", "tree-join"])
    @pytest.mark.parametrize("use_t", [False, True])
    def test_join_plan_matches_legacy(self, small_engine, method, use_t):
        eng = small_engine
        t = moving_average(N, 10) if use_t else None
        eps = 2.0
        got = eng.plan(
            QuerySpec(kind="join", eps=eps, transformation=t, method=method)
        ).execute()
        if method in ("scan", "scan-abandon"):
            want = q.all_pairs_scan(
                eng.ground_spectra, eps, t, early_abandon=(method == "scan-abandon")
            )
        elif method == "index":
            want = q.all_pairs_index(
                eng.tree, eng.space, eng.ground_spectra, eng.points, eps, t
            )
        else:
            want = q.all_pairs_tree_join(
                eng.tree, eng.space, eng.ground_spectra, eps, t
            )
        assert triples_equal(got, want)

    def test_auto_join_resolves_to_index(self, small_engine):
        plan = small_engine.plan(QuerySpec(kind="join", eps=1.0, method="auto"))
        assert plan.logical.access_path == "index"

    def test_unknown_join_method_rejected(self, small_engine):
        with pytest.raises(ValueError):
            small_engine.plan(QuerySpec(kind="join", eps=1.0, method="quantum"))


# ----------------------------------------------------------------------
# dist
# ----------------------------------------------------------------------
class TestDist:
    def test_dist_spec_matches_direct_norm(self, relation, engine):
        a, b = relation.get(0), relation.get(1)
        t = moving_average(N, 5)
        got = engine.plan(
            QuerySpec(kind="dist", series=a, other=b, transformation=t,
                      transform_query=True)
        ).execute()
        ta = np.asarray(t.apply_series(a))
        tb = np.asarray(t.apply_series(b))
        assert got == pytest.approx(float(np.linalg.norm(ta - tb)))

    def test_standalone_dist_plan(self, relation):
        a, b = relation.get(2), relation.get(3)
        assert dist_plan(a, b).execute() == pytest.approx(
            float(np.linalg.norm(a - b))
        )

    def test_length_mismatch_rejected(self, engine):
        with pytest.raises(ValueError):
            dist_plan(np.zeros(8), np.zeros(9))


# ----------------------------------------------------------------------
# planner routing + EXPLAIN shape
# ----------------------------------------------------------------------
EXPLAIN_KEYS = {
    "kind", "access_path", "method_hint", "batch",
    "estimated_candidate_fraction", "crossover_fraction", "reason",
    "eps", "k", "transformation", "transform_query", "plan",
    "degraded_from", "budget", "executor",
}


class TestExplain:
    def test_auto_routes_broad_queries_to_scan(self, relation, engine):
        series = relation.get(0)
        narrow = engine.plan(
            QuerySpec(kind="range", series=series, eps=0.5, method="auto")
        )
        broad = engine.plan(
            QuerySpec(kind="range", series=series, eps=50.0, method="auto")
        )
        assert narrow.logical.access_path == "index"
        assert broad.logical.access_path == "scan"
        assert broad.logical.estimated_fraction > narrow.logical.estimated_fraction
        # routing never changes the answer set
        assert matches_equal(broad.execute(), engine.range_query(series, 50.0))

    def test_explain_shape(self, relation, engine):
        info = engine.explain(
            QuerySpec(kind="range", series=relation.get(0), eps=2.0,
                      transformation=moving_average(N, 10), method="auto")
        )
        assert set(info) == EXPLAIN_KEYS
        assert info["kind"] == "range"
        assert info["access_path"] in ("index", "scan")
        assert 0.0 <= info["estimated_candidate_fraction"] <= 1.0
        assert info["crossover_fraction"] == pytest.approx(0.15)
        assert info["transformation"] == "mavg10"
        tree = info["plan"]
        assert "op" in tree
        if tree["op"] == "Verify":
            assert tree["children"][0]["op"] == "IndexProbe"
        else:
            assert tree["op"] == "SeqScan"

    def test_explain_reports_per_operator_io_after_execute(self, relation, engine):
        plan = engine.plan(
            QuerySpec(kind="range", series=relation.get(7), eps=4.0, method="index")
        )
        assert "io" not in plan.explain()["plan"]  # not executed yet
        plan.execute()
        tree = plan.explain()["plan"]
        assert tree["op"] == "Verify" and "io" in tree
        probe = tree["children"][0]
        assert probe["op"] == "IndexProbe"
        assert probe["io"].get("candidate_count", 0) == tree["io"].get(
            "candidate_count", 0
        )

    def test_batch_explain_uses_batch_probe(self, relation, engine):
        info = engine.explain(
            QuerySpec(kind="range", series=relation.matrix[:4], eps=2.0,
                      method="index")
        )
        assert info["batch"] is True
        assert info["plan"]["children"][0]["op"] == "BatchIndexProbe"

    def test_unknown_kind_and_method_rejected(self, relation, engine):
        with pytest.raises(ValueError):
            engine.plan(QuerySpec(kind="fuzzy", series=relation.get(0)))
        with pytest.raises(ValueError):
            engine.plan(
                QuerySpec(kind="range", series=relation.get(0), eps=1.0,
                          method="quantum")
            )


# ----------------------------------------------------------------------
# language-level EXPLAIN / PLAN
# ----------------------------------------------------------------------
class TestLanguagePlans:
    @pytest.fixture(scope="class")
    def session(self, relation):
        from repro.core.language import QuerySession

        s = QuerySession()
        s.bind_relation("walks", relation)
        s.bind_sequence("q", relation.get(0))
        s.bind_sequence("p", relation.get(1))
        return s

    def test_plan_hints_do_not_change_answers(self, session):
        a = session.execute("RANGE q IN walks EPS 3.0 USING mavg(10) PLAN index")
        b = session.execute("RANGE q IN walks EPS 3.0 USING mavg(10) PLAN scan")
        c = session.execute("RANGE q IN walks EPS 3.0 USING mavg(10) PLAN auto")
        assert matches_equal(a, b) and matches_equal(b, c)

    def test_explain_statement_returns_plan_dict(self, session):
        info = session.execute("EXPLAIN RANGE q IN walks EPS 50 USING mavg(10)")
        assert isinstance(info, dict)
        assert set(info) == EXPLAIN_KEYS
        assert info["access_path"] == "scan"  # eps 50 is a broad query
        info2 = session.execute("EXPLAIN KNN q IN walks K 3")
        assert info2["kind"] == "knn" and info2["plan"]["op"] == "KnnSearch"
        info3 = session.execute("EXPLAIN JOIN walks EPS 1 METHOD index")
        assert info3["plan"]["op"] == "PairJoin"
        info4 = session.execute("EXPLAIN DIST q, p")
        assert info4["plan"]["op"] == "DistCompute"

    def test_bad_plan_hint_rejected(self, session):
        from repro.core.language import QueryError

        with pytest.raises(QueryError):
            session.execute("RANGE q IN walks EPS 1 PLAN quantum")
