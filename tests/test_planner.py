"""Tests for access-path selection (the Figure-12 crossover planner)."""

import numpy as np
import pytest

from repro.core.engine import SimilarityEngine
from repro.core.planner import QueryPlanner
from repro.core.transforms import moving_average
from repro.data import make_stock_universe


@pytest.fixture(scope="module")
def engine():
    return SimilarityEngine(make_stock_universe(count=300, length=128, seed=3))


@pytest.fixture(scope="module")
def planner(engine):
    return QueryPlanner(engine, sample_size=100, seed=1)


class TestEstimation:
    def test_fraction_monotone_in_eps(self, engine, planner):
        q = engine.relation.get(0)
        t = moving_average(128, 20)
        fractions = [
            planner.estimate_candidate_fraction(q, eps, t, transform_query=True)
            for eps in [0.5, 2.0, 8.0, 30.0]
        ]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 0.9  # a huge ball catches (almost) everything

    def test_fraction_bounds(self, engine, planner):
        q = engine.relation.get(0)
        f = planner.estimate_candidate_fraction(q, 1.0)
        assert 0.0 <= f <= 1.0

    def test_estimate_close_to_true_fraction(self, engine, planner):
        """Sampled estimate within a reasonable band of the exact count."""
        q = engine.relation.get(5)
        t = moving_average(128, 20)
        eps = 4.0
        est = planner.estimate_candidate_fraction(q, eps, t, transform_query=True)
        engine.stats.reset()
        engine.range_query(q, eps, transformation=t, transform_query=True)
        true = engine.stats.candidate_count / len(engine.relation)
        assert abs(est - true) < 0.15


class TestChoice:
    def test_selective_query_uses_index(self, engine, planner):
        q = engine.relation.get(0)
        t = moving_average(128, 20)
        assert planner.choose(q, 0.5, t, transform_query=True) == "index"

    def test_broad_query_uses_scan(self, engine, planner):
        q = engine.relation.get(0)
        t = moving_average(128, 20)
        assert planner.choose(q, 50.0, t, transform_query=True) == "scan"

    def test_execute_returns_exact_answers_either_way(self, engine, planner):
        q = engine.relation.get(7)
        t = moving_average(128, 20)
        for eps in [1.0, 50.0]:
            plan, got = planner.execute(q, eps, t, transform_query=True)
            want = engine.range_query(q, eps, transformation=t, transform_query=True)
            assert [(r, round(d, 8)) for r, d in got] == [
                (r, round(d, 8)) for r, d in want
            ], plan
        # And the two eps values exercised both plans.
        assert planner.choose(q, 1.0, t, transform_query=True) == "index"
        assert planner.choose(q, 50.0, t, transform_query=True) == "scan"


class TestValidation:
    def test_bad_sample_size(self, engine):
        with pytest.raises(ValueError):
            QueryPlanner(engine, sample_size=0)

    def test_bad_crossover(self, engine):
        with pytest.raises(ValueError):
            QueryPlanner(engine, crossover_fraction=0.0)
        with pytest.raises(ValueError):
            QueryPlanner(engine, crossover_fraction=1.5)

    def test_empty_relation(self):
        from repro.data import SequenceRelation

        eng = SimilarityEngine(SequenceRelation(16))
        planner = QueryPlanner(eng)
        assert planner.choose(np.zeros(16), 1.0) == "index"
        plan, got = planner.execute(np.zeros(16), 1.0)
        assert got == []
