"""Directed tests for phase-angle wrap-around at the ±pi seam.

The polar feature space stores phase angles in [-pi, pi].  A query whose
Fig.-7 angle window crosses the seam (e.g. centre 3.1, half-width 0.2)
must still find data whose stored angle sits on the other side (-3.1).
The paper's construction silently assumes no wrap; the reproduction
handles it via circular interval intersection, and these tests pin that
behaviour with hand-built spectra rather than random sweeps.
"""

import numpy as np
import pytest

from repro.core.engine import SimilarityEngine
from repro.core.features import PlainDFTSpace
from repro.core.transforms import Transformation
from repro.data import SequenceRelation
from repro.dft import idft

N = 32


def series_with_phase(phase: float, magnitude: float = 3.0, f: int = 1) -> np.ndarray:
    """A real series whose coefficient ``f`` has the given phase/magnitude."""
    spec = np.zeros(N, dtype=np.complex128)
    spec[0] = 10.0 * np.sqrt(N)  # positive level, irrelevant to the test
    spec[f] = magnitude * np.exp(1j * phase)
    spec[N - f] = np.conj(spec[f])  # keep the series real
    x = idft(spec)
    assert np.allclose(x.imag, 0.0, atol=1e-9)
    return x.real


@pytest.fixture(scope="module")
def seam_engine():
    rel = SequenceRelation(N)
    # Data on both sides of the seam plus controls far from it.
    for phase in [np.pi - 0.05, -np.pi + 0.05, np.pi - 0.3, -np.pi + 0.3, 0.0, 1.5]:
        rel.add(series_with_phase(phase), name=f"p{phase:+.2f}")
    space = PlainDFTSpace(N, 2, coord="polar")
    return rel, SimilarityEngine(rel, space=space)


class TestSeamQueries:
    def test_query_near_pi_finds_neighbour_across_seam(self, seam_engine):
        rel, engine = seam_engine
        q = series_with_phase(np.pi - 0.05)
        # True distance between phase pi-0.05 and -pi+0.05 coefficients:
        # |3e^{j(pi-.05)} - 3e^{-j(pi-.05)}| = 2*3*sin(0.05) ~ 0.3.
        got = {r for r, _ in engine.range_query(q, 0.5)}
        assert rel.id_of("p+3.09") in got
        assert rel.id_of("p-3.09") in got  # the cross-seam neighbour
        assert rel.id_of("p+0.00") not in got

    def test_cross_seam_distance_is_exact(self, seam_engine):
        rel, engine = seam_engine
        q = series_with_phase(np.pi - 0.05)
        matches = dict(engine.range_query(q, 0.5))
        d = matches[rel.id_of("p-3.09")]
        per_coeff = abs(
            3.0 * np.exp(1j * (np.pi - 0.05)) - 3.0 * np.exp(1j * (-np.pi + 0.05))
        )
        # Coefficient f=1 and its conjugate mirror f=N-1 both differ, so the
        # full-spectrum distance carries the per-coefficient gap twice.
        assert d == pytest.approx(np.sqrt(2) * per_coeff, abs=1e-9)

    def test_rotation_through_seam_no_false_dismissal(self, seam_engine):
        """A transformation that rotates phases pushes stored angles out of
        [-pi, pi]; matches must survive the wrap."""
        rel, engine = seam_engine
        # Rotate every coefficient by +0.2 rad: a = e^{j0.2} (safe in polar).
        a = np.full(N, np.exp(1j * 0.2))
        a[0] = 1.0  # keep the DC term real so the level stays put
        t = Transformation(a, np.zeros(N), name="rot0.2")
        # Query = rotated version of the near-seam series.
        base = series_with_phase(np.pi - 0.05)
        q_spec = t.apply_spectrum(engine.query_spectrum(base))
        q_point = engine.space.point_from_spectrum(q_spec)
        from repro.core.queries import range_query

        got = range_query(
            engine.tree,
            engine.space,
            engine.ground_spectra,
            q_spec,
            q_point,
            0.5,
            transformation=t,
        )
        ids = {r for r, _ in got}
        assert rel.id_of("p+3.09") in ids  # itself, rotated through the seam
        assert rel.id_of("p-3.09") in ids

    def test_knn_across_seam(self, seam_engine):
        rel, engine = seam_engine
        q = series_with_phase(np.pi - 0.05)
        got = engine.knn_query(q, 2)
        ids = [r for r, _ in got]
        assert rel.id_of("p+3.09") in ids
        assert rel.id_of("p-3.09") in ids

    def test_polar_box_dist_wraps(self):
        """The k-NN rectangle metric must treat the seam circularly."""
        space = PlainDFTSpace(N, 1, coord="polar")
        from repro.rtree.geometry import Rect

        # Box at angle ~ -pi, query at angle ~ +pi, same magnitude.
        rect = Rect([3.0, -np.pi + 0.02], [3.0, -np.pi + 0.04])
        qpoint = np.array([3.0, np.pi - 0.02])
        d = space.rect_mindist(rect, qpoint)
        # Smallest angular gap is 0.04 rad -> distance ~ 2*3*sin(0.02).
        want = 2 * 3.0 * np.sin(0.04 / 2)
        assert d == pytest.approx(want, abs=1e-6)
