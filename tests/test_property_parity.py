"""Property-based parity: fast == reference == brute force, generatively.

Every fast path in the system is held to its reference implementation on
*randomized* inputs (Hypothesis), not just the hand-picked examples of
the per-subsystem parity suites: random relations drive the engine's
range/k-NN/join access paths against each other and against a direct
per-record distance scan, and random ragged series collections drive the
ST-index's columnar pipeline (all probe strategies) and subsequence k-NN
against the recursive reference and the exhaustive window scan — across
build modes (STR bulk load vs insertion) and coordinate systems (rect vs
polar).

Thresholds are sanitised with ``assume`` so that no true distance falls
within float-rounding reach of ``eps`` (the access paths accumulate in
different orders, so a knife-edge threshold would flap); the k-NN checks
likewise assume a resolvable gap at the k-th boundary unless the tie is
exact, where the deterministic ``(series, offset)`` order must hold.

``TestRegressionSeeds`` replays previously-found falsifying examples as
plain tests, so they stay covered even where the Hypothesis example
database is absent (fresh checkouts, CI).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.engine import SimilarityEngine
from repro.core.features import NormalFormSpace
from repro.core.plan import QuerySpec
from repro.data import SequenceRelation
from repro.rtree.geometry import Rect
from repro.subseq import STIndex

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

finite = dict(allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def engine_cases(draw):
    """A small relation + engine knobs + a query series."""
    m = draw(st.integers(4, 9))
    n = draw(st.sampled_from([16, 32]))
    matrix = draw(
        hnp.arrays(np.float64, (m, n), elements=st.floats(-8, 8, **finite))
    )
    coord = draw(st.sampled_from(["rect", "polar"]))
    bulk = draw(st.booleans())
    if draw(st.booleans()):
        query = matrix[draw(st.integers(0, m - 1))] + draw(
            hnp.arrays(np.float64, n, elements=st.floats(-0.5, 0.5, **finite))
        )
    else:
        query = draw(
            hnp.arrays(np.float64, n, elements=st.floats(-8, 8, **finite))
        )
    return matrix, coord, bulk, query


def make_engine(matrix, coord, bulk) -> SimilarityEngine:
    n = matrix.shape[1]
    return SimilarityEngine(
        SequenceRelation.from_matrix(matrix),
        space=NormalFormSpace(n, k=2, coord=coord),
        bulk_load=bulk,
        max_entries=4,
    )


def safe_eps(draw_t: float, dists: np.ndarray) -> float:
    """A threshold clear of every true distance (no knife edges)."""
    top = float(dists.max()) + 0.1 if dists.size else 1.0
    eps = draw_t * top
    if dists.size:
        assume(float(np.min(np.abs(dists - eps))) > 1e-7 * (1.0 + eps))
    return eps


@st.composite
def subseq_cases(draw):
    """A ragged series collection + ST-index knobs + a query."""
    window = draw(st.sampled_from([4, 6, 8]))
    k = draw(st.integers(1, min(4, window)))
    grouping = draw(st.sampled_from(["fixed", "adaptive"]))
    build = draw(st.sampled_from(["bulk", "insert"]))
    chunk = draw(st.integers(3, 8))
    num = draw(st.integers(2, 5))
    seriess = []
    for _ in range(num):
        length = draw(st.integers(window, 40))
        seriess.append(
            draw(
                hnp.arrays(
                    np.float64, length, elements=st.floats(-8, 8, **finite)
                )
            )
        )
    qlen = draw(st.integers(window, 3 * window + 2))
    host = next((x for x in seriess if x.shape[0] >= qlen), None)
    if host is not None and draw(st.booleans()):
        start = draw(st.integers(0, host.shape[0] - qlen))
        query = host[start : start + qlen] + draw(
            hnp.arrays(
                np.float64, qlen, elements=st.floats(-0.3, 0.3, **finite)
            )
        )
    else:
        query = draw(
            hnp.arrays(np.float64, qlen, elements=st.floats(-8, 8, **finite))
        )
    knobs = dict(window=window, k=k, grouping=grouping, chunk=chunk, build=build)
    return seriess, knobs, query


def build_stindex(seriess, knobs) -> STIndex:
    idx = STIndex(**knobs)
    for x in seriess:
        idx.add_series(x)
    return idx


def window_distances(seriess, query) -> np.ndarray:
    """Every alignable window's true distance (the brute-force relation)."""
    L = query.shape[0]
    out = []
    for x in seriess:
        if x.shape[0] >= L:
            w = np.lib.stride_tricks.sliding_window_view(x, L)
            out.append(np.linalg.norm(w - query, axis=1))
    return np.concatenate(out) if out else np.empty(0)


def keys(matches):
    return [(m.series_id, m.offset) for m in matches]


def key_set(matches):
    """Order-insensitive view of a result list.

    The generative checks compare answer *sets*: result lists are sorted
    by ``(distance, series, offset)``, and two correct paths may compute
    a pair of distinct windows' distances in different accumulation
    orders, swapping ulp-close neighbours — e.g. windows that are
    permutations of each other, where ``np.linalg.norm`` and the
    blockwise early-abandon sum disagree in the last ulp.  Membership is
    the property; the deterministic orderings are pinned separately on
    exact ties (``TestRegressionSeeds``, ``test_subseq_knn.py``).
    """
    return sorted((m.series_id, m.offset) for m in matches)


# ----------------------------------------------------------------------
# engine parity: range / knn / join
# ----------------------------------------------------------------------
class TestEngineParity:
    @SETTINGS
    @given(case=engine_cases(), t=st.floats(0, 1))
    def test_range_index_scan_brute_agree(self, case, t):
        matrix, coord, bulk, query = case
        engine = make_engine(matrix, coord, bulk)
        dists = np.array(
            [engine.distance(rid, query) for rid in range(matrix.shape[0])]
        )
        eps = safe_eps(t, dists)
        brute = sorted(
            (rid, float(d)) for rid, d in enumerate(dists) if d <= eps
        )
        for method in ("index", "scan", "auto"):
            got = sorted(engine.range_query(query, eps, method=method))
            assert [r for r, _ in got] == [r for r, _ in brute]
            np.testing.assert_allclose(
                [d for _, d in got], [d for _, d in brute], atol=1e-8
            )

    @SETTINGS
    @given(case=engine_cases(), k=st.integers(0, 12))
    def test_knn_index_scan_agree(self, case, k):
        matrix, coord, bulk, query = case
        engine = make_engine(matrix, coord, bulk)
        m = matrix.shape[0]
        dists = np.sort(
            [engine.distance(rid, query) for rid in range(m)]
        )
        if 0 < k < m:
            gap = dists[k] - dists[k - 1]
            assume(gap > 1e-9 or gap == 0.0)
        via_index = engine.knn_query(query, k)
        via_scan = engine.knn_query(query, k, method="scan")
        assert len(via_index) == len(via_scan) == min(k, m)
        np.testing.assert_allclose(
            [d for _, d in via_index], [d for _, d in via_scan], atol=1e-8
        )
        np.testing.assert_allclose(
            [d for _, d in via_index], dists[: min(k, m)], atol=1e-8
        )

    @SETTINGS
    @given(case=engine_cases(), t=st.floats(0, 1))
    def test_join_methods_agree(self, case, t):
        matrix, coord, bulk, _ = case
        engine = make_engine(matrix, coord, bulk)
        m = matrix.shape[0]
        pair_d = np.array(
            [
                engine.space.ground_distance(
                    engine.ground_spectra[i], engine.ground_spectra[j], None
                )
                for i in range(m)
                for j in range(i + 1, m)
            ]
        )
        eps = safe_eps(t, pair_d)
        results = {
            method: engine.all_pairs(eps, method=method)
            for method in ("scan", "scan-abandon", "index", "tree-join")
        }
        want = sorted((i, j) for i, j, _ in results["scan"])
        for method, got in results.items():
            assert sorted((i, j) for i, j, _ in got) == want, method


# ----------------------------------------------------------------------
# subsequence parity: range (all probes) / knn
# ----------------------------------------------------------------------
class TestSubseqParity:
    @SETTINGS
    @given(case=subseq_cases(), t=st.floats(0, 1))
    def test_range_fast_reference_brute_agree(self, case, t):
        seriess, knobs, query = case
        idx = build_stindex(seriess, knobs)
        eps = safe_eps(t, window_distances(seriess, query))
        brute = idx.brute_force(query, eps)
        ref_multi = idx.range_query_reference(query, eps)
        ref_prefix = idx.range_query_reference(query, eps, probe="prefix")
        assert key_set(ref_multi) == key_set(brute)
        assert key_set(ref_prefix) == key_set(brute)
        for probe in ("auto", "multipiece", "prefix"):
            fast = idx.range_query(query, eps, probe=probe)
            assert key_set(fast) == key_set(brute), probe
            np.testing.assert_allclose(
                sorted(m.distance for m in fast),
                sorted(m.distance for m in brute),
                atol=1e-8,
            )

    @SETTINGS
    @given(case=subseq_cases(), k=st.integers(0, 30))
    def test_knn_fast_brute_agree(self, case, k):
        seriess, knobs, query = case
        idx = build_stindex(seriess, knobs)
        all_d = np.sort(window_distances(seriess, query))
        if 0 < k < all_d.size:
            # The k-th boundary must be resolvable: windows that are
            # *permutations* of each other can tie exactly under one
            # accumulation order yet differ by an ulp under another, so
            # even an exact tie here does not guarantee both paths see
            # one.  Bitwise-identical ties (duplicate windows) are pinned
            # deterministically in test_subseq_knn.py instead.
            assume(all_d[k] - all_d[k - 1] > 1e-9)
        fast = idx.knn_query(query, k)
        brute = idx.brute_force_knn(query, k)
        assert key_set(fast) == key_set(brute)
        np.testing.assert_allclose(
            sorted(m.distance for m in fast),
            sorted(m.distance for m in brute),
            atol=1e-8,
        )

    @SETTINGS
    @given(case=subseq_cases(), t=st.floats(0, 1))
    def test_batch_equals_loop(self, case, t):
        seriess, knobs, query = case
        idx = build_stindex(seriess, knobs)
        eps = safe_eps(t, window_distances(seriess, query))
        half = query[: max(knobs["window"], query.shape[0] // 2)]
        # Batch vs loop run the *same* computation per query, so ordering
        # is deterministic here and compared strictly.
        batched = idx.range_query_batch([query, half], eps)
        assert keys(batched[0]) == keys(idx.range_query(query, eps))
        assert keys(batched[1]) == keys(idx.range_query(half, eps))
        kb = idx.knn_query_batch([query, half], 3)
        assert keys(kb[0]) == keys(idx.knn_query(query, 3))
        assert keys(kb[1]) == keys(idx.knn_query(half, 3))


# ----------------------------------------------------------------------
# checked-in regression seeds
# ----------------------------------------------------------------------
class TestRegressionSeeds:
    """Falsifying examples found while developing the generative suite.

    Replayed as plain tests so they run on fresh checkouts where the
    Hypothesis example database does not exist.
    """

    def test_minmaxdist_cancellation_stays_above_mindist(self):
        # Found by Hypothesis in test_rtree_geometry: a box whose one
        # huge extent cancelled catastrophically in the old
        # ``total - far + near`` form, pushing MINMAXDIST below MINDIST.
        r = Rect([0.0, 0.0, 1.90234375], [0.0, 370728.0, 1.90234375])
        p = np.zeros(3)
        assert r.mindist(p) <= r.minmaxdist(p)

    def test_all_zero_relation(self):
        matrix = np.zeros((5, 16))
        engine = make_engine(matrix, "polar", True)
        hits = engine.range_query(np.zeros(16), 0.5)
        assert [rid for rid, _ in hits] == [0, 1, 2, 3, 4]
        assert engine.range_query(np.zeros(16), 0.5, method="scan") == hits
        knn = engine.knn_query(np.zeros(16), 3)
        assert [d for _, d in knn] == [0.0, 0.0, 0.0]

    def test_all_zero_series_subseq_ties(self):
        idx = build_stindex(
            [np.zeros(12), np.zeros(9)],
            dict(window=4, k=2, grouping="fixed", chunk=4, build="bulk"),
        )
        q = np.zeros(4)
        fast = idx.knn_query(q, 5)
        assert keys(fast) == keys(idx.brute_force_knn(q, 5))
        assert keys(fast)[:3] == [(0, 0), (0, 1), (0, 2)]
        hits = idx.range_query(q, 0.0)
        assert keys(hits) == keys(idx.brute_force(q, 0.0))

    def test_eps_zero_exact_subsequence_match(self):
        rng = np.random.default_rng(40)
        x = np.cumsum(rng.uniform(-1, 1, 30))
        idx = build_stindex(
            [x], dict(window=4, k=3, grouping="adaptive", chunk=6, build="bulk")
        )
        q = x[7:19].copy()  # 3 pieces of 4
        for probe in ("multipiece", "prefix"):
            hits = idx.range_query(q, 0.0, probe=probe)
            assert (0, 7) in keys(hits)

    def test_duplicate_slice_in_one_series(self):
        # The same window content at two offsets of one series: exact
        # distance ties must order deterministically by offset.
        block = np.array([1.0, -2.0, 3.0, -4.0, 5.0, -6.0])
        x = np.concatenate([block, np.zeros(3), block])
        idx = build_stindex(
            [x], dict(window=6, k=3, grouping="fixed", chunk=4, build="insert")
        )
        res = idx.knn_query(block, 2)
        assert keys(res) == [(0, 0), (0, 9)]
        assert [m.distance for m in res] == [0.0, 0.0]

    def test_permuted_windows_ulp_tie(self):
        # Two windows that are permutations of each other: their true
        # distances to a constant query are equal up to the last ulp,
        # and different accumulation orders (np.linalg.norm vs the
        # blockwise early-abandon sum) may order them differently.  The
        # answer *set* must agree across every path regardless.
        idx = build_stindex(
            [np.array([6.0, 6.0, 2.6067123456, 6.0, 6.0])],
            dict(window=4, k=2, grouping="fixed", chunk=4, build="bulk"),
        )
        q = np.zeros(4)
        want = key_set(idx.brute_force(q, 20.0))
        assert want == [(0, 0), (0, 1)]
        assert key_set(idx.range_query_reference(q, 20.0)) == want
        for probe in ("auto", "multipiece", "prefix"):
            assert key_set(idx.range_query(q, 20.0, probe=probe)) == want
        assert key_set(idx.knn_query(q, 2)) == want

    def test_knn_permuted_window_boundary_tie(self):
        # Found by Hypothesis: two overlapping windows sharing the same
        # value multiset (a lone 3.0 inside a constant run) tie exactly
        # under np.linalg.norm but differ by an ulp under the blockwise
        # early-abandon sum, so k=1 may legitimately pick either offset.
        # The pinned property is distance-level: one answer, optimal
        # distance, key within the tie class.
        x1 = np.full(19, 2e-3)
        x1[16] = 3.0
        idx = build_stindex(
            [np.zeros(6), x1],
            dict(window=6, k=1, grouping="fixed", chunk=3, build="bulk"),
        )
        q = np.zeros(18)
        fast = idx.knn_query(q, 1)
        brute = idx.brute_force_knn(q, 1)
        assert len(fast) == len(brute) == 1
        assert (fast[0].series_id, fast[0].offset) in {(1, 0), (1, 1)}
        assert fast[0].distance == pytest.approx(brute[0].distance, abs=1e-9)

    def test_knn_plan_on_single_window_series(self):
        # Series exactly one window long: a single offset, k beyond it.
        idx = build_stindex(
            [np.arange(4.0)],
            dict(window=4, k=2, grouping="adaptive", chunk=4, build="bulk"),
        )
        res = idx.plan(
            QuerySpec(kind="subseq_knn", series=np.arange(4.0) + 0.25, k=9)
        ).execute()
        assert keys(res) == [(0, 0)]
